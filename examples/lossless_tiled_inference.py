#!/usr/bin/env python
"""Demonstrate that VSM's fused-tile parallelism is lossless.

A small VGG-style convolutional prefix is placed on the edge tier, VSM splits
it into 2x2 fused tile stacks, and the stacks are executed independently on
real numpy tensors (exactly what the four edge nodes would each compute).  The
merged result is compared element-by-element against untiled execution, and
contrasted with a DeepThings-style naive tiling that mishandles padding and
therefore *does* change the output.

Run with:  python examples/lossless_tiled_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deepthings import FusedTilePartition
from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import VerticalSeparationModule
from repro.graph.builder import GraphBuilder
from repro.tensors.executor import GraphExecutor
from repro.tensors.tiling import run_untiled, run_vsm_plan


def build_edge_prefix():
    """A convolutional prefix typical of what HPA assigns to the edge tier."""
    builder = GraphBuilder("edge_prefix", input_shape=(3, 64, 64))
    builder.conv("conv1", 16, kernel=3, stride=1, padding=1)
    builder.relu("relu1")
    builder.conv("conv2", 16, kernel=3, stride=1, padding=1)
    builder.maxpool("pool1", kernel=2, stride=2)
    builder.conv("conv3", 32, kernel=3, stride=2, padding=1)
    return builder.build()


def main() -> None:
    graph = build_edge_prefix()
    plan = PlacementPlan.single_tier(graph, Tier.EDGE)
    vsm = VerticalSeparationModule(grid_rows=2, grid_cols=2)
    runs = vsm.find_tileable_runs(graph, plan, Tier.EDGE)
    run_plan = vsm.plan_run(graph, runs[0])
    print(f"Fused run: {[v.name for v in run_plan.vertices]}")
    print(f"Grid {run_plan.grid}, {run_plan.num_tiles} tiles, "
          f"redundancy {run_plan.redundancy_factor():.3f}x")

    rng = np.random.default_rng(7)
    frame = rng.standard_normal(graph.input_shape)
    executor = GraphExecutor(graph)

    reference = run_untiled(executor, run_plan, frame)
    tiled = run_vsm_plan(executor, run_plan, frame)
    lossless = "LOSSLESS" if np.array_equal(reference, tiled) else "lossy"
    print(f"\nVSM tiled vs untiled:      max |error| = {np.abs(reference - tiled).max():.3e}  ({lossless})")

    naive = FusedTilePartition(2, 2)
    stats = naive.compare_with_untiled(executor, run_plan, frame)
    print(f"Naive (DeepThings-style):  max |error| = {stats.max_abs_error:.3e}  "
          f"({'LOSSLESS' if stats.is_lossless else 'lossy'})")
    print("\nThe naive scheme pads interior tile borders with zeros where the real "
          "network sees neighbouring activations, which is exactly the accuracy "
          "loss the paper's reverse tile calculation avoids.")


if __name__ == "__main__":
    main()
