#!/usr/bin/env python
"""Serving through failures: an edge node crashes and recovers mid-workload.

The fault-free serving example answers "what happens under traffic?"; this one
answers "what happens when the hardware misbehaves under traffic?".  It drives
a Poisson VGG-16 stream through :meth:`repro.core.d3.D3System.serve` under a
declarative :class:`~repro.network.faults.FaultSchedule`:

* two seconds in, edge node ``edge-0`` — the rack's primary, carrying the
  gather step of every VSM fused run — crashes.  Work in flight on it is cut
  short, and every request with unfinished work bound to it is aborted and
  *retried*: the strategy re-plans against the degraded topology (the plan is
  keyed separately in the plan cache by the masked-topology fingerprint, so it
  never poisons the healthy cache) and the retry restarts on the surviving
  three-node rack;
* requests arriving during the outage are planned against the degraded
  deployment from the start;
* at six seconds the node returns.  Recovery is treated as drift — the
  degraded stream's repartitioner observes the restored planning view and
  retires the degraded plan — and the stream fails back to the healthy plan;
* the report's availability metrics show the cost: failed/retried counts,
  failover replans, and the p99 conditioned on retried requests.

The same machinery runs from the command line::

    repro serve --model vgg16 --faults schedule.json
    repro serve --model vgg16 --faults chaos:7

Run with:  python examples/serving_through_failures.py
"""

from __future__ import annotations

from repro.core.d3 import D3Config, D3System
from repro.network.faults import FaultSchedule, NodeDown, NodeUp
from repro.runtime.workload import Workload

#: When the edge node dies and when it comes back (seconds into the stream).
CRASH_AT_S = 2.5
RECOVER_AT_S = 6.5


def main() -> None:
    system = D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    workload = Workload.poisson("vgg16", num_requests=40, rate_rps=8.0, seed=0)
    schedule = FaultSchedule(
        [NodeDown(CRASH_AT_S, "edge-0"), NodeUp(RECOVER_AT_S, "edge-0")],
        name="edge-crash",
    )

    print("Fault schedule (JSON round-trippable, repro serve --faults <file>):")
    print(schedule.to_json())
    print()

    baseline = system.serve(workload)
    print("Fault-free reference:")
    print(baseline.summary())
    print()

    faulted_system = D3System(system.config)
    report = faulted_system.serve(workload, faults=schedule)
    print(f"Under the schedule (edge-0 down {CRASH_AT_S:g}s..{RECOVER_AT_S:g}s):")
    print(report.summary())
    print()

    retried = [r for r in report.records if r.retries > 0]
    failed = [r for r in report.records if not r.completed]
    print(
        f"availability {report.availability:.1%}: "
        f"{len(retried)} request(s) survived via failover "
        f"({report.failover_replans} degraded replans), {len(failed)} failed"
    )
    for record in retried[:5]:
        print(
            f"  {record.request_id}: {record.retries} retry(ies), "
            f"latency {record.latency_s * 1e3:.1f} ms"
        )

    chaos_system = D3System(system.config)
    chaos = FaultSchedule.chaos(
        chaos_system.topology,
        seed=7,
        horizon_s=workload.duration_s,
        tier_mtbf_s={"edge": 4.0},
        mttr_s=2.0,
    )
    chaos_report = chaos_system.serve(workload, faults=chaos)
    print()
    print(f"Seeded chaos ({len(chaos)} events, reproducible from chaos:7):")
    print(chaos_report.summary())


if __name__ == "__main__":
    main()
