#!/usr/bin/env python
"""Mission-critical camera pipeline: pick a deployment per network condition.

The paper motivates D3 with latency-sensitive, privacy-sensitive applications
such as autopilot: a vehicle camera produces frames that must be classified
within a latency budget, without streaming raw frames across the Internet
backbone.  This example sweeps the paper's four network conditions for a
Darknet-53 detector backbone and reports, for each condition:

* which deployment D3 chooses (how many layers per tier),
* whether a 150 ms per-frame latency budget is met, and
* how many megabits per frame leave the LAN (the privacy/backbone metric).

Run with:  python examples/autopilot_camera_pipeline.py
"""

from __future__ import annotations

from repro.baselines.single_tier import SingleTierBaseline
from repro.core.d3 import D3Config, D3System
from repro.core.placement import Tier
from repro.models.zoo import build_model
from repro.network.conditions import list_conditions

LATENCY_BUDGET_S = 0.150
MODEL = "darknet53"


def main() -> None:
    graph = build_model(MODEL)
    print(f"Workload: {MODEL} backbone, one 3x224x224 frame per inference, "
          f"budget {LATENCY_BUDGET_S * 1e3:.0f} ms/frame\n")

    header = f"{'network':<10} {'deployment (d/e/c)':<20} {'latency':>10} {'budget':>8} {'to cloud':>10}"
    print(header)
    print("-" * len(header))

    for network in list_conditions():
        system = D3System(D3Config(network=network, num_edge_nodes=4))
        result = system.run(graph)
        counts = result.placement.tier_counts()
        deployment = f"{counts[Tier.DEVICE]}/{counts[Tier.EDGE]}/{counts[Tier.CLOUD]}"
        latency = result.end_to_end_latency_s
        meets = "ok" if latency <= LATENCY_BUDGET_S else "MISS"
        to_cloud = result.report.megabits_to_cloud
        print(f"{network:<10} {deployment:<20} {latency * 1e3:8.1f} ms {meets:>8} {to_cloud:8.2f} Mb")

    print("\nFor reference, the cloud-offloading alternative ships the raw frame:")
    baseline_system = D3System(D3Config(network="wifi", num_edge_nodes=1))
    profile = baseline_system.build_profile(graph)
    single = SingleTierBaseline(profile, baseline_system.network)
    cloud_metrics = single.metrics(graph, Tier.CLOUD)
    print(f"  cloud-only under Wi-Fi: {cloud_metrics.end_to_end_latency_s * 1e3:.1f} ms, "
          f"{cloud_metrics.megabits_to_cloud:.2f} Mb of raw pixels per frame over the backbone")


if __name__ == "__main__":
    main()
