#!/usr/bin/env python
"""Dynamic adaptation: local re-partitioning under bandwidth and load drift.

The paper's HPA adjusts the partition *locally* (a changed vertex, its SIS
vertices, its direct successors and their SIS vertices) instead of re-running
the whole algorithm whenever the profiler reports drift outside a threshold
band.  This example replays a backbone-congestion plus edge-load trace against
Inception-v4 and reports, for every epoch, whether an adaptation was triggered,
how many vertices it re-evaluated (versus the whole graph for a full
re-partition) and the latency of the adapted plan.

Run with:  python examples/dynamic_network_adaptation.py
"""

from __future__ import annotations

from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.placement import PlanEvaluator, Tier
from repro.models.zoo import build_model
from repro.network.conditions import BandwidthTrace, get_condition
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster

#: (time s, backbone multiplier, edge slowdown factor) — a congestion episode
#: followed by an edge load spike and recovery.
TRACE = [
    (0.0, 1.00, 1.0),
    (10.0, 0.40, 1.0),
    (20.0, 0.40, 2.5),
    (30.0, 1.00, 2.5),
    (40.0, 1.00, 1.0),
]


def main() -> None:
    graph = build_model("inception_v4")
    cluster = Cluster.build(network="wifi", num_edge_nodes=1)
    profiler = Profiler(noise_std=0.0, seed=0)
    base_profile = profiler.build_profile_from_measurements(graph, cluster.tier_hardware(), repeats=1)
    base_network = get_condition("wifi")
    trace = BandwidthTrace(base_network, [(t, m) for t, m, _ in TRACE])

    repartitioner = DynamicRepartitioner(
        graph, base_profile, base_network, thresholds=RepartitionThresholds(lower=0.8, upper=1.25)
    )
    print(f"Initial plan: {repartitioner.plan.describe()}\n")
    header = (
        f"{'t (s)':>6} {'backbone':>9} {'edge load':>10} {'triggered':>10} "
        f"{'re-evaluated':>13} {'moved':>6} {'latency (ms)':>13}"
    )
    print(header)
    print("-" * len(header))

    for time_s, backbone_multiplier, edge_slowdown in TRACE:
        network = trace.condition_at(time_s)
        profile = base_profile.scaled(Tier.EDGE, edge_slowdown)
        event = repartitioner.observe(profile=profile, network=network)
        latency = PlanEvaluator(profile, network).objective(repartitioner.plan)
        print(
            f"{time_s:6.0f} {backbone_multiplier:9.2f} {edge_slowdown:10.1f} "
            f"{str(event.triggered):>10} {event.reevaluated_vertices:13d} "
            f"{len(event.changed_vertices):6d} {latency * 1e3:13.1f}"
        )

    full = repartitioner.full_repartition()
    print(
        f"\nFull re-partition for comparison: re-evaluated {full.reevaluated_vertices} vertices "
        f"(local updates touched at most a fraction of that), latency "
        f"{full.latency_after_s * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
