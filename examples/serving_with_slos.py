#!/usr/bin/env python
"""Serving with SLOs: micro-batching, deadline scheduling and load shedding.

The plain serving example answers "what happens under traffic?"; this one
answers "what do the scheduling levers buy when traffic *exceeds capacity*?".
The same overloaded AlexNet stream — every request carrying a latency SLO,
premium (class 0) and background (class 1) traffic interleaved — is served
three times:

* **fifo** — the default engine: arrival order, no shedding.  Past
  saturation every request queues behind every other; attainment collapses.
* **batch** — dynamic micro-batching on a compute-bound on-device
  deployment: same-layer work from concurrent requests coalesces into
  batches priced by the hardware's sublinear batch-cost curve, raising
  throughput above FIFO's.
* **edf** — earliest-deadline-first with admission control: requests whose
  SLO is already unreachable at arrival are shed at the door, and the saved
  capacity serves the rest within their deadlines — goodput instead of
  uniform lateness, with class 0 protected ahead of class 1.

Run with:  python examples/serving_with_slos.py
"""

from __future__ import annotations

from repro.core.d3 import D3Config, D3System
from repro.runtime.workload import Workload

#: Offered load (req/s) — far beyond what one device sustains for AlexNet.
RATE_RPS = 20.0
NUM_REQUESTS = 60
SLO_MS = 500.0


def build_system() -> D3System:
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


def main() -> None:
    workload = Workload.poisson(
        "alexnet",
        num_requests=NUM_REQUESTS,
        rate_rps=RATE_RPS,
        seed=7,
        slo_ms=SLO_MS,
        priorities=(0, 1),  # premium and background traffic, interleaved 1:1
    )
    print(
        f"offering {NUM_REQUESTS} requests at {RATE_RPS:g} req/s, "
        f"SLO {SLO_MS:g} ms, classes 0 (premium) / 1 (background)\n"
    )
    for scheduler in ("fifo", "batch", "edf"):
        # A fresh system per scheduler: identical plans, clean plan cache —
        # only the dispatch policy differs between runs.
        report = build_system().serve(
            workload, method="device_only", scheduler=scheduler
        )
        print(f"--- scheduler: {scheduler} ---")
        print(report.summary())
        print(
            f"  goodput {report.goodput_rps:.2f} req/s, "
            f"attainment {report.slo_attainment:.1%}, "
            f"{report.num_rejected} shed, "
            f"mean batch occupancy {report.mean_batch_occupancy:.2f}\n"
        )


if __name__ == "__main__":
    main()
