#!/usr/bin/env python
"""Quickstart: partition one DNN with D3 and inspect the result.

Builds ResNet-18, runs the full D3 pipeline (profile -> regression -> HPA ->
VSM -> simulated execution) under Wi-Fi with four edge nodes, and prints the
placement, the end-to-end latency and the comparison against the three
single-tier baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines.single_tier import SingleTierBaseline
from repro.core.d3 import D3Config, D3System
from repro.core.placement import Tier
from repro.models.zoo import build_model


def main() -> None:
    graph = build_model("resnet18")
    print(f"Model: {graph.name} — {len(graph)} layers, "
          f"{graph.total_flops() / 1e9:.2f} GFLOPs, "
          f"{graph.total_weights() / 1e6:.1f}M parameters")

    system = D3System(D3Config(network="wifi", num_edge_nodes=4, tile_grid=(2, 2)))
    result = system.run(graph)

    print("\n=== D3 placement ===")
    print(result.placement.describe())
    counts = result.placement.tier_counts()
    for tier in Tier:
        names = [v.name for v in result.placement.vertices_on(tier)][:6]
        suffix = " ..." if counts[tier] > 6 else ""
        print(f"  {tier.value:>6}: {counts[tier]:3d} layers  {names}{suffix}")

    if result.vsm_plan is not None and result.vsm_plan.runs:
        run = result.vsm_plan.runs[0]
        print(f"\n=== VSM === {result.vsm_plan.num_runs} fused run(s); first run: "
              f"{run.num_layers} layers x {run.num_tiles} tiles, "
              f"redundancy {run.redundancy_factor():.3f}x")

    print("\n=== Simulated end-to-end latency ===")
    print(result.report.summary())

    print("\n=== Against the single-tier baselines ===")
    baseline = SingleTierBaseline(result.profile, result.network)
    for tier in Tier:
        latency = baseline.latency_s(graph, tier)
        speedup = latency / result.end_to_end_latency_s
        print(f"  {tier.value:>6}-only: {latency * 1e3:8.1f} ms   (D3 is {speedup:4.1f}x faster)")


if __name__ == "__main__":
    main()
