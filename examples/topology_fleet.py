"""Describe arbitrary deployments with the topology-first API.

Three scenes:

1. a multi-device fleet — three cameras sharing one edge rack, each on its
   own uplink, streaming inferences pinned round-robin across the fleet;
2. a heterogeneous edge rack — one full-speed desktop plus throttled
   machines, with VSM tile stacks stretched on the slow nodes;
3. a hand-written JSON deployment with a *trace-driven* link — the LAN wire
   degrades mid-stream and requests planned after the drift pay for it.

Run with ``PYTHONPATH=src python examples/topology_fleet.py``.
"""

from repro.core.d3 import D3Config, D3System
from repro.network.topology import Topology, get_topology
from repro.runtime.workload import Workload


def fleet_scene() -> None:
    print("=== multi-device fleet: 3 cameras, 4 edge nodes, 1 cloud ===")
    system = D3System(
        D3Config(
            topology=get_topology("multi_device", num_devices=3, num_edge_nodes=4),
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    sources = [node.name for node in system.cluster.devices]
    workload = Workload.poisson(
        "alexnet", num_requests=30, rate_rps=6.0, seed=0, sources=sources
    )
    print(system.serve(workload).summary())
    print()


def hetero_scene() -> None:
    print("=== heterogeneous edge rack: 1.0x / 0.75x / 0.5x / 0.25x machines ===")
    system = D3System(
        D3Config(
            topology=get_topology("hetero_edge", speed_factors=(1.0, 0.75, 0.5, 0.25)),
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    result = system.run(system.graph_for("resnet18"))
    print(result.report.summary())
    print()


def traced_json_scene() -> None:
    print("=== JSON deployment with a drifting LAN wire ===")
    document = """
    {
      "name": "degrading-lan",
      "network": "wifi",
      "nodes": [
        {"name": "cam-0", "tier": "device", "hardware": "raspberry_pi_4"},
        {"name": "rack-0", "tier": "edge", "hardware": "edge_desktop"},
        {"name": "dc-0", "tier": "cloud", "hardware": "cloud_server"}
      ],
      "links": [
        {"name": "lan", "between": ["cam-0", "rack-0"],
         "trace": [[0.0, 84.95], [5.0, 12.0]]},
        {"name": "backbone", "between": ["rack-0", "dc-0"]},
        {"name": "uplink", "between": ["cam-0", "dc-0"]}
      ]
    }
    """
    topology = Topology.from_json(document)
    system = D3System(
        D3Config(topology=topology, use_regression=False, profiler_noise_std=0.0)
    )
    for at_s in (0.0, 6.0):
        report = system.serve(Workload.single("alexnet", at_s=at_s), method="edge_only")
        print(
            f"  request at t={at_s:.0f}s: "
            f"latency {report.latencies_s[0] * 1e3:.1f} ms "
            f"(LAN at {topology.links['lan'].mbps_at(at_s):.1f} Mbps)"
        )
    print()
    print("round-trip: Topology.from_json(topology.to_json()) ==", end=" ")
    print(Topology.from_json(topology.to_json()) == topology)


if __name__ == "__main__":
    fleet_scene()
    hetero_scene()
    traced_json_scene()
