#!/usr/bin/env python
"""Multi-model serving under a memory budget: weights are not free.

An edge box that serves several models cannot keep them all resident: model
weights compete for the node's memory, and a request for a non-resident
model pays a *cold start* — the compressed weights travel from the cloud
artifact store over the real wires and are decompressed before the first
layer may run.  This example serves a two-model stream (VGG-16 + AlexNet,
~800 MB of float32 weights together) three ways:

* memory off — the pre-memory simulator: weights are free, no cold starts;
* roomy budget — both models fit: one cold start each, then warm hits;
* tight budget — the cache can hold only one model at a time, so the two
  models evict each other and the stream keeps paying reloads.

It then shows why the codec choice matters: at the *same* compression
ratio, the asymmetric "zxc" codec (slow one-time compression, very fast
decompression) beats the symmetric codec on every cold start, because the
serving path only ever decompresses.

Run with:  python examples/multimodel_serving.py
"""

from __future__ import annotations

from repro.core.d3 import D3Config, D3System
from repro.runtime.artifacts import MemoryModel, get_codec
from repro.runtime.workload import Workload

MODELS = ("vgg16", "alexnet")
REQUESTS = 20
RATE_RPS = 2.0


def build_system() -> D3System:
    return D3System(
        D3Config(network="wifi", num_edge_nodes=2, use_regression=False,
                 profiler_noise_std=0.0)
    )


def main() -> None:
    workload = Workload.poisson(list(MODELS), num_requests=REQUESTS,
                                rate_rps=RATE_RPS, seed=7)
    print(f"Workload: {REQUESTS} requests over {'+'.join(MODELS)} "
          f"at {RATE_RPS:g} req/s\n")

    configs = (
        ("memory off", None),
        ("roomy 2 GiB", MemoryModel(budget_gb=2.0, codec="zxc")),
        ("tight 0.7 GiB", MemoryModel(budget_gb=0.7, codec="zxc")),
    )
    header = (f"{'config':<14} {'p50 ms':>10} {'p99 ms':>10} {'colds':>6} "
              f"{'hit %':>7} {'evicts':>7}")
    print(header)
    print("-" * len(header))
    for label, memory in configs:
        report = build_system().serve(workload, memory=memory)
        pct = report.latency_percentiles()
        print(f"{label:<14} {pct['p50'] * 1e3:>10.1f} {pct['p99'] * 1e3:>10.1f} "
              f"{report.cold_starts:>6d} "
              f"{report.weight_cache_hit_rate * 100:>6.1f} "
              f"{report.weight_evictions:>7d}")

    print("\nCold-start anatomy for one VGG-16 load (~553 MB of weights):")
    for name in ("symmetric", "zxc"):
        codec = get_codec(name)
        raw = 553_000_000
        print(f"  {name:<10} ratio {codec.ratio:g}: ships "
              f"{codec.compressed_bytes(raw) / 1e6:.0f} MB, decompresses in "
              f"{codec.decompress_seconds(raw) * 1e3:.0f} ms")
    print("\nSame bytes on the wire — zxc wins every reload on decompression "
          "alone.")


if __name__ == "__main__":
    main()
