#!/usr/bin/env python
"""Serving under load: a Poisson request stream with a mid-stream bandwidth drop.

The one-shot pipeline answers "how fast is one inference?"; this example
answers "what happens under traffic?".  It drives a 100-request Poisson
workload of VGG-16 through :meth:`repro.core.d3.D3System.serve`:

* all requests share the cluster — they queue FIFO at every compute node and
  serialize on the inter-tier links, so latency grows with load;
* HPA + VSM partitioning runs **once** and is amortized over the stream by the
  plan cache;
* halfway through, the backbone bandwidth collapses to 30 % of nominal.  The
  drift leaves the threshold band of section III-E, the plan cache invalidates
  the cached plan through its hook into the dynamic re-partitioner, and the
  locally adapted plan serves the rest of the stream.

Run with:  python examples/serving_under_load.py
"""

from __future__ import annotations

from repro.core.d3 import D3Config, D3System
from repro.network.conditions import BandwidthTrace, get_condition
from repro.runtime.workload import Workload

#: When the backbone congestion episode starts (seconds into the stream) and
#: the bandwidth multiplier applied from then on.
CONGESTION_START_S = 25.0
CONGESTION_MULTIPLIER = 0.3


def main() -> None:
    system = D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    workload = Workload.poisson("vgg16", num_requests=100, rate_rps=2.0, seed=7)
    trace = BandwidthTrace(
        base=get_condition("wifi"),
        samples=[(0.0, 1.0), (CONGESTION_START_S, CONGESTION_MULTIPLIER)],
    )

    print(f"serving {len(workload)} requests ({workload.name}) on 1 device / 4 edge / 1 cloud")
    print(
        f"backbone drops to {CONGESTION_MULTIPLIER:.0%} of nominal "
        f"at t={CONGESTION_START_S:.0f}s\n"
    )

    report = system.serve(workload, trace=trace)
    print(report.summary())

    before = [r for r in report.records if r.arrival_s < CONGESTION_START_S]
    after = [r for r in report.records if r.arrival_s >= CONGESTION_START_S]
    if before and after:
        mean = lambda records: sum(r.latency_s for r in records) / len(records)
        print(
            f"\nmean latency before the drop {mean(before) * 1e3:.1f} ms, "
            f"after the drop {mean(after) * 1e3:.1f} ms"
        )
    print(f"plan cache: {system.plan_cache.stats()}")
    if report.repartitions:
        print(
            f"the bandwidth drift triggered {report.repartitions} local "
            "re-partitioning(s) mid-stream; every other request reused a cached plan"
        )


if __name__ == "__main__":
    main()
