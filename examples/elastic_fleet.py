#!/usr/bin/env python
"""Elastic fleets: an autoscaler tracks a diurnal load curve under traffic.

The failure example answers "what happens when capacity is *taken* from you?";
this one answers "what happens when capacity is a dial you control?".  It
serves a day-night (raised-cosine) VGG-16 arrival curve three ways:

* a **static fleet** — all four edge replicas up for the whole run, the
  baseline every earlier example uses;
* an **explicit schedule** — declarative :class:`NodeJoin` / :class:`NodeDrain`
  events (JSON round-trippable, like fault schedules): a replica provisions
  and joins for the peak, another drains gracefully — finishing the work it
  holds — on the way down;
* a **reactive autoscaler** — the engine ticks a target-utilisation policy
  that watches the edge replica group's busy fraction and spawns or drains
  replicas itself, paying a provisioning delay for every join.

In every elastic run the plans bind their edge stages to the *replica group*
and a load balancer (join-shortest-queue here) resolves each request to a live
replica at dispatch time.  The report prices the outcome: ``node_hours`` is
the capacity the fleet kept up (parked and drained time is free), so the
static-vs-elastic comparison is a capacity-vs-latency trade-off read straight
off two summaries.

The same machinery runs from the command line::

    repro serve --model vgg16 --autoscale target-util --balancer p2c
    repro serve --model vgg16 --elasticity fleet.json --balancer jsq
    repro scenario autoscale

Run with:  python examples/elastic_fleet.py
"""

from __future__ import annotations

from repro.core.d3 import D3Config, D3System
from repro.runtime.elasticity import (
    Autoscaler,
    ElasticitySchedule,
    NodeDrain,
    NodeJoin,
)
from repro.runtime.workload import Workload

#: Seconds a spun-up replica spends provisioning before it serves traffic.
PROVISION_S = 0.5


def build_workload() -> Workload:
    """One diurnal cycle: climb out of the trough, peak midway, fall back."""
    return Workload.diurnal(
        "vgg16", duration_s=60.0, peak_rps=10.0, trough_rps=1.0, seed=0
    )


def main() -> None:
    config = D3Config(
        network="wifi",
        num_edge_nodes=4,
        use_regression=False,
        profiler_noise_std=0.0,
    )
    workload = build_workload()

    static_report = D3System(config).serve(workload)
    print("Static fleet (four replicas up all day):")
    print(static_report.summary())
    print()

    schedule = ElasticitySchedule(
        [
            NodeJoin(10.0, "edge-1", provision_s=PROVISION_S),
            NodeJoin(15.0, "edge-2", provision_s=PROVISION_S),
            NodeDrain(45.0, "edge-2"),
            NodeDrain(50.0, "edge-1"),
        ],
        name="day-shift",
    )
    print("Explicit schedule (JSON round-trippable, repro serve --elasticity <file>):")
    print(schedule.to_json())
    print()
    scheduled_report = D3System(config).serve(
        workload, elasticity=schedule, balancer="jsq"
    )
    print("Under the schedule:")
    print(scheduled_report.summary())
    print()

    autoscaler = Autoscaler(
        policy="target-util",
        min_replicas=1,
        max_replicas=4,
        provision_s=PROVISION_S,
    )
    elastic_report = D3System(config).serve(
        workload, autoscaler=autoscaler, balancer="jsq"
    )
    print("Reactive autoscaler (target-util over the replica group):")
    print(elastic_report.summary())
    print()

    saved = static_report.node_hours - elastic_report.node_hours
    print(
        f"capacity: static {static_report.node_hours:.4f} node-hours, "
        f"elastic {elastic_report.node_hours:.4f} "
        f"({saved / static_report.node_hours:.1%} saved, "
        f"{elastic_report.scale_up_events} scale-up(s) / "
        f"{elastic_report.scale_down_events} scale-down(s))"
    )
    print(
        "p99: static "
        f"{static_report.latency_percentiles()['p99'] * 1e3:.1f} ms, elastic "
        f"{elastic_report.latency_percentiles()['p99'] * 1e3:.1f} ms"
    )
    busiest = sorted(
        elastic_report.replica_utilisation().items(),
        key=lambda kv: kv[1],
        reverse=True,
    )
    print(
        "replica utilisation while active: "
        + ", ".join(f"{name} {value:.0%}" for name, value in busiest)
    )


if __name__ == "__main__":
    main()
