"""Ablation A1 — HPA design choices (look-ahead mode, SIS update).

DESIGN.md calls out two heuristic ingredients worth ablating: the look-ahead
used when a vertex's output is not smaller than its input ("none" = pure
Equation 2, "successor" = the paper's Table-I rule, "cumulative" = the
remaining-network extension this reproduction defaults to) and the
Proposition-2 SIS update.
"""

from dataclasses import dataclass
from typing import Dict

import pytest

from benchmarks.conftest import run_once
from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlanEvaluator
from repro.experiments.reporting import format_table
from repro.models.zoo import PAPER_MODELS, build_model
from repro.network.conditions import get_condition
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster


def _ablate(network: str = "wifi") -> Dict[str, Dict[str, float]]:
    condition = get_condition(network)
    cluster = Cluster.build(network=condition, num_edge_nodes=1)
    profiler = Profiler(noise_std=0.0)
    results: Dict[str, Dict[str, float]] = {}
    for model in PAPER_MODELS:
        graph = build_model(model)
        profile = profiler.build_profile_from_measurements(graph, cluster.tier_hardware(), repeats=1)
        evaluator = PlanEvaluator(profile, condition)
        row = {}
        for label, config in (
            ("eq2_only", HPAConfig(lookahead="none")),
            ("successor", HPAConfig(lookahead="successor")),
            ("cumulative", HPAConfig(lookahead="cumulative")),
            ("cumulative_no_sis", HPAConfig(lookahead="cumulative", enable_sis_update=False)),
        ):
            plan = HorizontalPartitioner(profile, condition, config).partition(graph)
            row[label] = evaluator.objective(plan)
        results[model] = row
    return results


def test_ablation_hpa_lookahead_and_sis(benchmark):
    results = run_once(benchmark, _ablate)

    # For the compute-heavy models the myopic rules strand long runs of layers
    # on the device; the cumulative look-ahead must dominate them there (for
    # the small AlexNet the variants are within a few tens of milliseconds of
    # each other and their ordering is not meaningful).
    for model in ("vgg16", "resnet18", "darknet53", "inception_v4"):
        row = results[model]
        assert row["cumulative"] <= row["successor"] * 1.01
        assert row["cumulative"] <= row["eq2_only"] * 1.01
    gains = [row["eq2_only"] / row["cumulative"] for row in results.values()]
    assert max(gains) > 2.0

    rows = [
        (model, *(row[k] * 1e3 for k in ("eq2_only", "successor", "cumulative", "cumulative_no_sis")))
        for model, row in results.items()
    ]
    print()
    print(
        format_table(
            ["model", "Eq.2 only (ms)", "successor (ms)", "cumulative (ms)", "cumulative, no SIS (ms)"],
            rows,
            title="Ablation A1 — HPA heuristic variants (Wi-Fi)",
        )
    )
