"""Benchmark E6 — regenerate Fig. 9 (HPA speedup over single-tier execution)."""

from benchmarks.conftest import run_once
from repro.experiments import fig09_hpa_speedup


def test_fig09_hpa_speedup(benchmark, paper_config, paper_runner):
    cells = run_once(
        benchmark, fig09_hpa_speedup.run_hpa_speedup, paper_config, paper_runner
    )
    assert len(cells) == 20  # 5 models x 4 network conditions

    # Paper shapes: HPA is never slower than any single-tier deployment, the
    # largest gains are against device-only execution of the compute-heavy
    # models, and the overall maximum speedup is an order of magnitude.
    for cell in cells:
        assert cell.speedups["hpa"] >= 0.99 * max(
            1.0, cell.speedups["edge_only"] or 0.0, cell.speedups["cloud_only"] or 0.0
        )
    heavy = [c for c in cells if c.model in ("vgg16", "darknet53")]
    assert all(c.speedups["hpa"] > 5.0 for c in heavy)
    assert fig09_hpa_speedup.max_speedup(cells, "hpa") > 10.0

    print()
    print(fig09_hpa_speedup.format_hpa_speedup(cells))
