"""Ablation A3 — local re-partitioning vs full re-partitioning under drift.

The paper argues that HPA can absorb resource and network fluctuation with
*local* updates (the changed vertex, its SIS vertices, its direct successors
and their SIS vertices) instead of re-running the whole algorithm.  This
ablation replays a drift trace and compares the work done (vertices
re-evaluated) and the resulting latency regret of the two strategies.
"""

from typing import Dict

from benchmarks.conftest import run_once
from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.placement import PlanEvaluator, Tier
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model
from repro.network.conditions import get_condition
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster

#: (edge slowdown, backbone multiplier) drift episodes.
DRIFT_TRACE = ((1.0, 1.0), (2.0, 1.0), (2.0, 0.4), (1.0, 0.4), (1.0, 1.0), (4.0, 1.0))


def _replay(model: str = "resnet18") -> Dict[str, float]:
    graph = build_model(model)
    cluster = Cluster.build(network="wifi", num_edge_nodes=1)
    base_profile = Profiler(noise_std=0.0).build_profile_from_measurements(
        graph, cluster.tier_hardware(), repeats=1
    )
    base_network = get_condition("wifi")

    local = DynamicRepartitioner(graph, base_profile, base_network,
                                 thresholds=RepartitionThresholds(0.8, 1.25))
    full = DynamicRepartitioner(graph, base_profile, base_network,
                                thresholds=RepartitionThresholds(0.8, 1.25))

    local_work = full_work = 0
    local_latency = full_latency = 0.0
    for edge_slowdown, backbone in DRIFT_TRACE:
        profile = base_profile.scaled(Tier.EDGE, edge_slowdown)
        network = base_network.scaled_backbone(backbone)

        event = local.observe(profile=profile, network=network)
        local_work += event.reevaluated_vertices
        local_latency += PlanEvaluator(profile, network).objective(local.plan)

        full.current_profile, full.current_network = profile, network
        full_event = full.full_repartition()
        full_work += full_event.reevaluated_vertices
        full_latency += PlanEvaluator(profile, network).objective(full.plan)

    return {
        "local_reevaluated": local_work,
        "full_reevaluated": full_work,
        "local_latency_s": local_latency,
        "full_latency_s": full_latency,
        "epochs": len(DRIFT_TRACE),
    }


def test_ablation_dynamic_local_vs_full(benchmark):
    results = run_once(benchmark, _replay)

    # Local adaptation does strictly less work than full re-partitioning...
    assert results["local_reevaluated"] < results["full_reevaluated"]
    # ...while giving up only a bounded amount of plan quality (regret < 25%).
    assert results["local_latency_s"] <= results["full_latency_s"] * 1.25

    print()
    print(
        format_table(
            ["strategy", "vertices re-evaluated", "summed latency (ms)"],
            [
                ("local updates", results["local_reevaluated"], results["local_latency_s"] * 1e3),
                ("full re-partition", results["full_reevaluated"], results["full_latency_s"] * 1e3),
            ],
            title=f"Ablation A3 — adaptation over {results['epochs']} drift epochs (ResNet-18)",
        )
    )
