"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper using the *full*
evaluation configuration (all five models, all four network conditions).  The
scenario runner is session-scoped so the underlying partitioning work is done
once and the individual benchmarks measure their own harness on top of it.

Run with:  pytest benchmarks/ --benchmark-only
Add ``-s`` to also print the regenerated tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runners import ScenarioRunner


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    """The full evaluation matrix of the paper."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def paper_runner(paper_config) -> ScenarioRunner:
    return ScenarioRunner(paper_config)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a harness with a single measured round.

    The harnesses are deterministic and moderately expensive (they partition
    every model under every network condition), so one round keeps the full
    benchmark suite fast while still recording a wall-clock figure per
    table/figure.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
