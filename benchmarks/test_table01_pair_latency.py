"""Benchmark E3 — regenerate Table I (pairwise placement latencies)."""

from benchmarks.conftest import run_once
from repro.core.placement import Tier
from repro.experiments import table01_pair_latency


def test_table01_pair_latency(benchmark):
    rows = run_once(benchmark, table01_pair_latency.run_pair_latency)
    assert len(rows) == 6

    by_pair = {(r.tier_i, r.tier_j): r.total_latency_s for r in rows}
    # Paper shape: crossing the backbone (anything involving the cloud) costs
    # far more than staying inside the LAN for an early convolutional layer.
    lan_best = min(
        by_pair[(Tier.DEVICE, Tier.DEVICE)],
        by_pair[(Tier.DEVICE, Tier.EDGE)],
        by_pair[(Tier.EDGE, Tier.EDGE)],
    )
    assert by_pair[(Tier.CLOUD, Tier.CLOUD)] > lan_best
    assert by_pair[(Tier.DEVICE, Tier.CLOUD)] > by_pair[(Tier.DEVICE, Tier.DEVICE)]

    print()
    print(table01_pair_latency.format_pair_latency(rows))
