"""Benchmark E8 — regenerate Fig. 11 (Inception-v4 speedup vs backbone rate)."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_bandwidth_sweep


def test_fig11_bandwidth_sweep(benchmark):
    points = run_once(benchmark, fig11_bandwidth_sweep.run_bandwidth_sweep)
    assert len(points) == 10  # 10 .. 100 Mbps

    # Paper shapes: cloud-only improves monotonically (in trend) with the
    # backbone bandwidth; HPA stays at or above every baseline across the whole
    # sweep; device-only is flat.
    cloud = [p.latency_s["cloud_only"] for p in points]
    assert cloud[0] > cloud[-1]
    device = [p.latency_s["device_only"] for p in points]
    assert max(device) - min(device) < 1e-9
    for point in points:
        best_other = min(
            point.latency_s["device_only"],
            point.latency_s["edge_only"],
            point.latency_s["cloud_only"],
            point.latency_s["dads"],
        )
        assert point.latency_s["hpa"] <= best_other * 1.01

    print()
    print(fig11_bandwidth_sweep.format_bandwidth_sweep(points))
