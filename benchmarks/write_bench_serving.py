"""Write ``BENCH_serving.json``: the headline serving numbers CI tracks.

Runs the canonical serving scenario — vgg16, Poisson arrivals, the paper's
four-edge-node testbed topology — with fully deterministic settings (no
profiler noise, fixed seed), and dumps p50/p95/p99 latency, throughput and
plan-cache effectiveness as JSON.  CI uploads the file as an artifact so the
performance trajectory of the serving engine is recorded per commit.

Usage::

    PYTHONPATH=src python benchmarks/write_bench_serving.py [output.json]
"""

from __future__ import annotations

import json
import sys

from repro.core.d3 import D3Config, D3System
from repro.network.topology import Topology
from repro.runtime.workload import Workload

MODEL = "vgg16"
NUM_REQUESTS = 50
RATE_RPS = 2.0
NUM_EDGE_NODES = 4


def run_benchmark() -> dict:
    system = D3System(
        D3Config(
            topology=Topology.three_tier(num_edge_nodes=NUM_EDGE_NODES, network="wifi"),
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    workload = Workload.poisson(MODEL, num_requests=NUM_REQUESTS, rate_rps=RATE_RPS, seed=0)
    report = system.serve(workload)
    percentiles = report.latency_percentiles()
    return {
        "model": MODEL,
        "topology": "three_tier",
        "num_edge_nodes": NUM_EDGE_NODES,
        "requests": report.num_requests,
        "rate_rps": RATE_RPS,
        "p50_ms": percentiles["p50"] * 1e3,
        "p95_ms": percentiles["p95"] * 1e3,
        "p99_ms": percentiles["p99"] * 1e3,
        "mean_ms": report.mean_latency_s * 1e3,
        "throughput_rps": report.throughput_rps,
        "mean_queueing_ms": max(0.0, (report.mean_queueing_delay_s() or 0.0)) * 1e3,
        "plans_computed": report.plans_computed,
        "cache_hits": report.cache_hits,
    }


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serving.json"
    payload = run_benchmark()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}: p95 {payload['p95_ms']:.1f} ms, "
          f"{payload['throughput_rps']:.2f} req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
