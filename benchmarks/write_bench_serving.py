"""Write ``BENCH_serving.json``: the headline serving numbers CI tracks.

Runs the canonical serving scenario — vgg16, Poisson arrivals, the paper's
four-edge-node testbed topology — with fully deterministic settings (no
profiler noise, fixed seed), and dumps p50/p95/p99 latency, throughput and
plan-cache effectiveness as JSON.  A second, *batched-mode* episode serves an
overloaded compute-bound stream (``device_only``, the regime micro-batching
exists for) under an SLO through the batching scheduler and records its
p95/goodput/occupancy next to a FIFO reference, so the performance trajectory
tracks scheduling wins as well as raw engine speed.

The default output is the *committed* ``BENCH_serving.json`` at the repository
root (updated in place — the trajectory is tracked in git, not just as a CI
artifact); pass a path to write elsewhere.

Usage::

    PYTHONPATH=src python benchmarks/write_bench_serving.py [output.json]
"""

from __future__ import annotations

import json
import os
import sys

from repro.core.d3 import D3Config, D3System
from repro.network.topology import Topology
from repro.runtime.workload import Workload

MODEL = "vgg16"
NUM_REQUESTS = 50
RATE_RPS = 2.0
NUM_EDGE_NODES = 4

#: Batched-mode episode: deep overload on a compute-bound deployment.
BATCH_MODEL = "alexnet"
BATCH_METHOD = "device_only"
BATCH_RATE_RPS = 20.0
BATCH_NUM_REQUESTS = 40
BATCH_SLO_MS = 500.0


def build_system() -> D3System:
    return D3System(
        D3Config(
            topology=Topology.three_tier(num_edge_nodes=NUM_EDGE_NODES, network="wifi"),
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


def run_benchmark() -> dict:
    system = build_system()
    workload = Workload.poisson(MODEL, num_requests=NUM_REQUESTS, rate_rps=RATE_RPS, seed=0)
    report = system.serve(workload)
    percentiles = report.latency_percentiles()
    payload = {
        "model": MODEL,
        "topology": "three_tier",
        "num_edge_nodes": NUM_EDGE_NODES,
        "requests": report.num_requests,
        "rate_rps": RATE_RPS,
        "p50_ms": percentiles["p50"] * 1e3,
        "p95_ms": percentiles["p95"] * 1e3,
        "p99_ms": percentiles["p99"] * 1e3,
        "mean_ms": report.mean_latency_s * 1e3,
        "throughput_rps": report.throughput_rps,
        "mean_queueing_ms": max(0.0, (report.mean_queueing_delay_s() or 0.0)) * 1e3,
        "plans_computed": report.plans_computed,
        "cache_hits": report.cache_hits,
    }
    payload["batched"] = run_batched_episode()
    return payload


def run_batched_episode() -> dict:
    """FIFO vs batching on the same overloaded compute-bound stream."""
    workload = Workload.poisson(
        BATCH_MODEL,
        num_requests=BATCH_NUM_REQUESTS,
        rate_rps=BATCH_RATE_RPS,
        seed=0,
        slo_ms=BATCH_SLO_MS,
    )
    episode = {
        "model": BATCH_MODEL,
        "method": BATCH_METHOD,
        "rate_rps": BATCH_RATE_RPS,
        "requests": BATCH_NUM_REQUESTS,
        "slo_ms": BATCH_SLO_MS,
    }
    for scheduler in ("fifo", "batch"):
        report = build_system().serve(workload, method=BATCH_METHOD, scheduler=scheduler)
        episode[scheduler] = {
            "p95_ms": report.latency_percentiles()["p95"] * 1e3,
            "throughput_rps": report.throughput_rps,
            "goodput_rps": report.goodput_rps,
            "slo_attainment": report.slo_attainment,
            "mean_batch_occupancy": report.mean_batch_occupancy,
        }
    return episode


#: The committed trajectory file this script maintains.
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_serving.json"
)


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_OUTPUT
    payload = run_benchmark()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    batched = payload["batched"]
    print(f"wrote {output}: p95 {payload['p95_ms']:.1f} ms, "
          f"{payload['throughput_rps']:.2f} req/s; "
          f"batched-mode {batched['batch']['throughput_rps']:.2f} req/s "
          f"vs fifo {batched['fifo']['throughput_rps']:.2f} req/s "
          f"(occupancy {batched['batch']['mean_batch_occupancy']:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
