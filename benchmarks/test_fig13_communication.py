"""Benchmark E10 — regenerate Fig. 13 (per-image backbone traffic to the cloud)."""

from benchmarks.conftest import run_once
from repro.experiments import fig13_communication


def test_fig13_communication(benchmark, paper_config, paper_runner):
    cells = run_once(benchmark, fig13_communication.run_communication, paper_config, paper_runner)
    assert len(cells) == 20

    # Paper shapes: cloud-only always ships the full raw input (~4.8 Mb for a
    # 3x224x224 float tensor); D3 never ships more than DADS, and DADS never
    # more than cloud-only.
    for cell in cells:
        cloud_only = cell.megabits_to_cloud["cloud_only"]
        dads = cell.megabits_to_cloud["dads"]
        d3 = cell.megabits_to_cloud["hpa_vsm"]
        assert cloud_only > 4.0
        assert dads <= cloud_only + 1e-9
        assert d3 <= dads + 1e-9
        fraction = cell.d3_fraction_of("cloud_only")
        assert fraction is not None and fraction <= 1.0

    print()
    print(fig13_communication.format_communication(cells))
