"""Ablation A2 — VSM tile grid vs overlap redundancy and latency.

Finer grids expose more parallelism but enlarge the halo overlap between fused
tile stacks, so the useful speedup saturates below the node count (the effect
the paper describes for Fig. 12).
"""

from typing import Dict, Tuple

from benchmarks.conftest import run_once
from repro.core.d3 import D3Config, D3System
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model

GRIDS = ((1, 2), (2, 2), (3, 3))


def _sweep_grids(model: str = "darknet53") -> Dict[Tuple[int, int], Dict[str, float]]:
    graph = build_model(model)
    results: Dict[Tuple[int, int], Dict[str, float]] = {}
    baseline = D3System(
        D3Config(network="wifi", num_edge_nodes=1, enable_vsm=False, use_regression=False,
                 profiler_noise_std=0.0)
    ).run(graph)
    for grid in GRIDS:
        nodes = grid[0] * grid[1]
        result = D3System(
            D3Config(network="wifi", num_edge_nodes=nodes, tile_grid=grid, use_regression=False,
                     profiler_noise_std=0.0)
        ).run(graph)
        redundancy = 1.0
        if result.vsm_plan is not None and result.vsm_plan.runs:
            factors = [run.redundancy_factor() for run in result.vsm_plan.runs]
            redundancy = sum(factors) / len(factors)
        results[grid] = {
            "latency_s": result.end_to_end_latency_s,
            "speedup_vs_hpa": baseline.end_to_end_latency_s / result.end_to_end_latency_s,
            "redundancy": redundancy,
            "nodes": nodes,
        }
    return results


def test_ablation_vsm_grid(benchmark):
    results = run_once(benchmark, _sweep_grids)

    # Finer grids increase the overlap redundancy monotonically...
    redundancies = [results[g]["redundancy"] for g in GRIDS]
    assert redundancies == sorted(redundancies)
    # ...and the achieved speedup always stays below the node count.
    for grid in GRIDS:
        assert results[grid]["speedup_vs_hpa"] < results[grid]["nodes"]
        assert results[grid]["speedup_vs_hpa"] >= 0.99
    # More nodes still help overall (2x2 beats 1x2).
    assert results[(2, 2)]["speedup_vs_hpa"] > results[(1, 2)]["speedup_vs_hpa"]

    rows = [
        (f"{g[0]}x{g[1]}", results[g]["nodes"], results[g]["latency_s"] * 1e3,
         results[g]["speedup_vs_hpa"], results[g]["redundancy"])
        for g in GRIDS
    ]
    print()
    print(
        format_table(
            ["grid", "edge nodes", "latency (ms)", "speedup vs HPA", "tile redundancy"],
            rows,
            title="Ablation A2 — VSM tile grid (Darknet-53, Wi-Fi)",
        )
    )
