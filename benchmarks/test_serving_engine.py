"""Benchmarks for the serving engine and the memoized cost model.

Two wall-clock figures: (1) serving a 100-request Poisson stream of VGG-16
through the discrete-event engine (the acceptance scenario), and (2) repeated
whole-graph latency evaluation, which the cost-model memoization turns from
O(runs x vertices) roofline arithmetic into dictionary lookups.
"""

from benchmarks.conftest import run_once
from repro.core.d3 import D3Config, D3System
from repro.experiments.serving import (
    ServingScenario,
    format_serving_report,
    run_serving_scenario,
)
from repro.models.zoo import build_model
from repro.profiling.cost_model import AnalyticCostModel
from repro.profiling.hardware import EDGE_DESKTOP
from repro.runtime.workload import Workload


def test_serving_100_requests_vgg16(benchmark):
    """The acceptance scenario: 100 Poisson arrivals of VGG-16 over Wi-Fi."""
    scenario = ServingScenario(
        models=("vgg16",), network="wifi", num_edge_nodes=4, rate_rps=5.0, num_requests=100
    )
    report = run_once(benchmark, run_serving_scenario, scenario)

    assert report.num_requests == 100
    assert report.plans_computed == 1  # one HPA+VSM partitioning, 99 cache hits
    assert report.cache_hits == 99
    queueing = report.mean_queueing_delay_s()
    assert queueing is not None and queueing > 0

    print()
    print(format_serving_report(report))


def test_serving_mixed_models(benchmark):
    """A two-model mix exercises per-model plan-cache entries under load."""
    system = D3System(
        D3Config(network="wifi", num_edge_nodes=4, use_regression=False, profiler_noise_std=0.0)
    )
    workload = Workload.poisson(
        ["alexnet", "resnet18"], num_requests=60, rate_rps=6.0, seed=0
    )
    report = run_once(benchmark, system.serve, workload)

    assert report.num_requests == 60
    assert report.plans_computed == 2  # one partitioning per model
    assert report.cache_hits == 58


def test_cost_model_memoized_graph_latencies(benchmark):
    """Repeated plan evaluation hits the memoized per-vertex cost table."""
    graph = build_model("vgg16")
    model = AnalyticCostModel(EDGE_DESKTOP)
    model.graph_latencies(graph)  # warm the cache

    def evaluate_200_times():
        for _ in range(200):
            model.graph_latencies(graph)
        return model.total_latency(graph)

    total = run_once(benchmark, evaluate_200_times)
    assert total > 0
