"""Benchmark E4 — regenerate Table II (per-tier processing time after HPA)."""

from benchmarks.conftest import run_once
from repro.core.placement import Tier
from repro.experiments import table02_tier_times


def test_table02_tier_times(benchmark):
    rows = run_once(benchmark, table02_tier_times.run_tier_times)
    assert len(rows) == 5

    # Paper shape: the edge node carries the largest per-image processing time
    # of the three tiers for every model, which is what motivates VSM.
    for row in rows:
        assert row.bottleneck_tier == Tier.EDGE
        assert row.edge_ms >= row.device_ms
        assert row.edge_ms >= row.cloud_ms
    # VGG-16 stresses the edge hardest (as in the paper: 46.7 ms vs 3.6-48 ms).
    vgg = next(r for r in rows if r.model == "vgg16")
    assert vgg.edge_ms == max(r.edge_ms for r in rows)

    print()
    print(table02_tier_times.format_tier_times(rows))
