"""Benchmark E9 — regenerate Fig. 12 (HPA + VSM under Wi-Fi, four edge nodes)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_hpa_vsm


def test_fig12_hpa_vsm(benchmark, paper_config, paper_runner):
    cells = run_once(benchmark, fig12_hpa_vsm.run_hpa_vsm, "wifi", paper_config, paper_runner)
    assert len(cells) == 5

    # Paper shapes: adding VSM never hurts, it helps most for the conv-heavy
    # models, and the gain stays below the 4x node count because the fused tile
    # stacks overlap (redundancy factor > 1).
    for cell in cells:
        assert cell.hpa_vsm_vs_hpa is not None and cell.hpa_vsm_vs_hpa >= 0.999
        assert cell.hpa_vsm_vs_hpa < 4.0
        if cell.vsm_redundancy_factor is not None:
            # A 2x2 grid can at most quadruple the work (every tile covering the
            # whole input); late, small feature maps push the average up.
            assert 1.0 <= cell.vsm_redundancy_factor < 4.0
    best_gain = max(c.hpa_vsm_vs_hpa for c in cells)
    assert best_gain > 1.3

    print()
    print(fig12_hpa_vsm.format_hpa_vsm(cells))
