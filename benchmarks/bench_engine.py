"""Thin wrapper: run the serving-engine benchmark from the benchmarks/ tree.

Equivalent to ``repro bench engine`` / ``python -m repro.benchmarks.engine``;
kept next to the other bench scripts so the whole performance surface lives in
one directory.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --requests 10000
    PYTHONPATH=src python benchmarks/bench_engine.py --write BENCH_engine.json
"""

from __future__ import annotations

import sys

from repro.benchmarks.engine import main

if __name__ == "__main__":
    sys.exit(main())
