"""Benchmark E2 — regenerate Fig. 4 (actual vs predicted layer latency)."""

from benchmarks.conftest import run_once
from repro.experiments import fig04_regression


def test_fig04_regression(benchmark):
    results = run_once(benchmark, fig04_regression.run_regression_experiment)

    # Paper shape: the regression model's per-layer predictions track the
    # measured latencies on both the CPU (edge) and GPU (cloud) machines.
    cpu, gpu = results
    assert cpu.mape < 0.25
    assert cpu.r_squared > 0.9
    assert gpu.r_squared > 0.5

    print()
    print(fig04_regression.format_regression(results))
