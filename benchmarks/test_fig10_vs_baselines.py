"""Benchmark E7 — regenerate Fig. 10 (HPA vs Neurosurgeon and DADS)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_vs_baselines


def test_fig10_vs_baselines(benchmark, paper_config, paper_runner):
    cells = run_once(
        benchmark, fig10_vs_baselines.run_vs_baselines, paper_config, paper_runner
    )

    # Paper shapes: Neurosurgeon only applies to the chain networks; HPA is at
    # least as fast as DADS everywhere and strictly faster than Neurosurgeon on
    # the chain networks under every condition.
    for cell in cells:
        if cell.model in ("alexnet", "vgg16"):
            assert cell.latency_s["neurosurgeon"] is not None
            assert cell.hpa_speedup_over("neurosurgeon") >= 1.0
        else:
            assert cell.latency_s["neurosurgeon"] is None
        assert cell.hpa_speedup_over("dads") >= 0.99
    assert fig10_vs_baselines.max_speedup_over(cells, "neurosurgeon") > 1.2

    print()
    print(fig10_vs_baselines.format_vs_baselines(cells))
