"""Benchmark E1 — regenerate Fig. 1 (per-layer latency and output size)."""

from benchmarks.conftest import run_once
from repro.experiments import fig01_layer_profile


def test_fig01_layer_profile(benchmark):
    rows = run_once(benchmark, fig01_layer_profile.run_layer_profile)
    summary = fig01_layer_profile.summarise(rows)

    # Paper shape: convolutions dominate the latency of all three profiled
    # networks on the device, and early layers produce multi-MB activations.
    for model in ("vgg16", "resnet18", "darknet53"):
        assert summary[model]["conv_latency_s"] / summary[model]["total_latency_s"] > 0.75
        assert summary[model]["max_output_mb"] > 1.0
    # VGG-16 is by far the slowest of the three on the device (Fig. 1a vs 1b).
    assert summary["vgg16"]["total_latency_s"] > summary["resnet18"]["total_latency_s"] * 3

    print()
    print(fig01_layer_profile.format_layer_profile(rows))
