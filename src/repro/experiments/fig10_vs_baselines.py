"""Fig. 10 — end-to-end latency speedup of HPA over Neurosurgeon and DADS.

Four sub-figures (one per network condition); Neurosurgeon is only applicable
to the chain-topology networks (AlexNet, VGG-16), exactly as in the paper.
Speedups are normalised to Neurosurgeon where available, otherwise to DADS, so
the relative ordering of the three partitioning systems is directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runners import ScenarioRunner

FIG10_METHODS = ("neurosurgeon", "dads", "hpa")


@dataclass
class BaselineComparisonCell:
    """Latencies and relative speedups for one (network, model) cell."""

    network: str
    model: str
    latency_s: Dict[str, Optional[float]]

    def hpa_speedup_over(self, method: str) -> Optional[float]:
        base = self.latency_s.get(method)
        hpa = self.latency_s.get("hpa")
        if base is None or hpa is None or hpa == 0:
            return None
        return base / hpa


def run_vs_baselines(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ScenarioRunner] = None,
) -> List[BaselineComparisonCell]:
    """Compute the Fig. 10 comparison matrix."""
    config = config or ExperimentConfig()
    runner = runner or ScenarioRunner(config)
    cells: List[BaselineComparisonCell] = []
    for network in config.networks:
        for model in config.models:
            scenario = runner.run(model, network)
            cells.append(
                BaselineComparisonCell(
                    network=network,
                    model=model,
                    latency_s={m: scenario.latency_s.get(m) for m in FIG10_METHODS},
                )
            )
    return cells


def max_speedup_over(cells: Sequence[BaselineComparisonCell], method: str) -> float:
    """Largest HPA speedup over ``method`` across the matrix."""
    values = [c.hpa_speedup_over(method) for c in cells]
    values = [v for v in values if v is not None]
    return max(values) if values else 0.0


def format_vs_baselines(cells: Sequence[BaselineComparisonCell]) -> str:
    """Render Fig. 10 as one table per network condition."""
    blocks = []
    networks = []
    for cell in cells:
        if cell.network not in networks:
            networks.append(cell.network)
    for network in networks:
        rows = []
        for cell in cells:
            if cell.network != network:
                continue
            rows.append(
                (
                    cell.model,
                    *[
                        None if cell.latency_s.get(m) is None else cell.latency_s[m] * 1e3
                        for m in FIG10_METHODS
                    ],
                    cell.hpa_speedup_over("neurosurgeon"),
                    cell.hpa_speedup_over("dads"),
                )
            )
        blocks.append(
            format_table(
                headers=[
                    "model",
                    "neurosurgeon (ms)",
                    "dads (ms)",
                    "hpa (ms)",
                    "hpa vs neurosurgeon",
                    "hpa vs dads",
                ],
                rows=rows,
                title=f"Fig. 10 — HPA vs Neurosurgeon and DADS ({network})",
            )
        )
    return "\n\n".join(blocks)
