"""Shared scenario runner used by the figure/table harnesses.

A *scenario* is one (model, network condition) cell of the evaluation matrix.
The runner computes every method's latency and backbone traffic for the cell
and caches the results so that the Fig. 9/10/12/13 harnesses do not repeat the
same partitioning work.

Methods are obtained exclusively through the strategy registry
(:mod:`repro.core.strategy`): the runner is a thin loop over
:data:`METHODS`, with no per-method glue.  A method that declines a graph via
``supports()`` (Neurosurgeon on branchy DAGs) gets ``None`` cells, exactly as
the paper leaves those bars out of Fig. 10.  Each strategy also declares how
its headline number is measured: D3's methods are read off the discrete-event
executor (VSM tile parallelism is invisible to the analytic objective), the
one-shot baselines off the analytic :class:`~repro.core.placement.PlanEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.strategy import ClusterSpec, PartitionPlan, get_strategy
from repro.experiments.config import ExperimentConfig
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition, get_condition
from repro.profiling.profiler import LatencyProfile, Profiler
from repro.runtime.simulator import ExecutionReport

#: Method identifiers used in result dictionaries, in display order.  Every
#: entry must name a registered :class:`~repro.core.strategy.PartitionStrategy`.
METHODS = (
    "device_only",
    "edge_only",
    "cloud_only",
    "neurosurgeon",
    "dads",
    "hpa",
    "hpa_vsm",
)


@dataclass
class ScenarioResult:
    """All methods evaluated for one (model, network) cell."""

    model: str
    network: str
    latency_s: Dict[str, Optional[float]]
    bytes_to_cloud: Dict[str, Optional[int]]
    tier_counts: Dict[str, int]
    tier_busy_s: Dict[str, float]

    def speedup_over(self, baseline: str, method: str) -> Optional[float]:
        """Latency speedup of ``method`` relative to ``baseline``."""
        base = self.latency_s.get(baseline)
        value = self.latency_s.get(method)
        if base is None or value is None or value == 0:
            return None
        return base / value


class ScenarioRunner:
    """Compute and cache per-(model, network) results for every method."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._graphs: Dict[str, DnnGraph] = {}
        self._profiles: Dict[str, LatencyProfile] = {}
        self._results: Dict[Tuple[str, str], ScenarioResult] = {}
        self._profiler = Profiler(noise_std=self.config.profiler_noise_std, seed=self.config.seed)

    # ------------------------------------------------------------------ #
    def graph(self, model: str) -> DnnGraph:
        if model in self.config.models:
            # Configured models share the config's memo, so every harness
            # holding the same config reuses one set of graphs.
            return self.config.build_graphs()[model]
        if model not in self._graphs:
            from repro.models.zoo import build_model

            self._graphs[model] = build_model(model, input_shape=self.config.input_shape)
        return self._graphs[model]

    def profile(self, model: str) -> LatencyProfile:
        """Per-tier latency profile of a model (independent of the network)."""
        if model not in self._profiles:
            from repro.runtime.cluster import Cluster

            cluster = Cluster.build(network="wifi", num_edge_nodes=self.config.num_edge_nodes)
            self._profiles[model] = self._profiler.build_profile_from_measurements(
                self.graph(model), cluster.tier_hardware(), repeats=1
            )
        return self._profiles[model]

    # ------------------------------------------------------------------ #
    def run(self, model: str, network: str | NetworkCondition) -> ScenarioResult:
        """Evaluate every method for one (model, network) cell (cached)."""
        condition = get_condition(network) if isinstance(network, str) else network
        key = (model, condition.name)
        if key in self._results:
            return self._results[key]

        from repro.runtime.cluster import Cluster

        graph = self.graph(model)
        profile = self.profile(model)
        cluster = Cluster.build(network=condition, num_edge_nodes=self.config.num_edge_nodes)
        spec = ClusterSpec.from_cluster(cluster, tile_grid=tuple(self.config.tile_grid))

        latency: Dict[str, Optional[float]] = {}
        traffic: Dict[str, Optional[int]] = {}
        plans: Dict[str, PartitionPlan] = {}
        reports: Dict[str, ExecutionReport] = {}

        for method in METHODS:
            strategy = get_strategy(method)
            if not strategy.supports(graph):
                latency[method] = None
                traffic[method] = None
                continue
            plan = strategy.plan(graph, profile, condition, spec)
            plans[method] = plan
            if strategy.measure_by_simulation:
                report = self._simulate(plan, profile, cluster)
                reports[method] = report
                latency[method] = report.end_to_end_latency_s
                traffic[method] = report.bytes_to_cloud
            else:
                latency[method] = plan.metrics.end_to_end_latency_s
                traffic[method] = plan.metrics.bytes_to_cloud

        result = ScenarioResult(
            model=model,
            network=condition.name,
            latency_s=latency,
            bytes_to_cloud=traffic,
            tier_counts=self._tier_counts(plans.get("hpa")),
            tier_busy_s=self._tier_busy(reports.get("hpa")),
        )
        self._results[key] = result
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _simulate(plan: PartitionPlan, profile: LatencyProfile, cluster) -> ExecutionReport:
        """One-shot discrete-event execution of a strategy's plan."""
        from repro.runtime.executor import DistributedExecutor

        return DistributedExecutor.from_partition_plan(plan, profile, cluster).execute()

    @staticmethod
    def _tier_counts(plan: Optional[PartitionPlan]) -> Dict[str, int]:
        """Vertex-per-tier counts of the HPA plan (Table II companion data)."""
        if plan is None:
            return {}
        return {t.value: c for t, c in plan.placement.tier_counts().items()}

    @staticmethod
    def _tier_busy(report: Optional[ExecutionReport]) -> Dict[str, float]:
        """Per-tier busy seconds of the simulated HPA run (Table II)."""
        if report is None:
            return {}
        return {t.value: s for t, s in report.tier_busy_seconds().items()}
