"""Shared scenario runner used by the figure/table harnesses.

A *scenario* is one (model, network condition) cell of the evaluation matrix.
The runner computes every method's latency and backbone traffic for the cell —
D3 (HPA and HPA+VSM), the three single-tier baselines, Neurosurgeon and DADS —
and caches the results so that the Fig. 9/10/12/13 harnesses do not repeat the
same partitioning work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.baselines.dads import DadsPartitioner
from repro.baselines.neurosurgeon import NeurosurgeonPartitioner
from repro.baselines.single_tier import SingleTierBaseline
from repro.core.d3 import D3Config, D3System
from repro.core.placement import PlanEvaluator, Tier
from repro.experiments.config import ExperimentConfig
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition, get_condition
from repro.profiling.profiler import LatencyProfile, Profiler

#: Method identifiers used in result dictionaries, in display order.
METHODS = (
    "device_only",
    "edge_only",
    "cloud_only",
    "neurosurgeon",
    "dads",
    "hpa",
    "hpa_vsm",
)


@dataclass
class ScenarioResult:
    """All methods evaluated for one (model, network) cell."""

    model: str
    network: str
    latency_s: Dict[str, Optional[float]]
    bytes_to_cloud: Dict[str, Optional[int]]
    tier_counts: Dict[str, int]
    tier_busy_s: Dict[str, float]

    def speedup_over(self, baseline: str, method: str) -> Optional[float]:
        """Latency speedup of ``method`` relative to ``baseline``."""
        base = self.latency_s.get(baseline)
        value = self.latency_s.get(method)
        if base is None or value is None or value == 0:
            return None
        return base / value


class ScenarioRunner:
    """Compute and cache per-(model, network) results for every method."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._graphs: Dict[str, DnnGraph] = {}
        self._profiles: Dict[str, LatencyProfile] = {}
        self._results: Dict[Tuple[str, str], ScenarioResult] = {}
        self._profiler = Profiler(noise_std=self.config.profiler_noise_std, seed=self.config.seed)

    # ------------------------------------------------------------------ #
    def graph(self, model: str) -> DnnGraph:
        if model not in self._graphs:
            from repro.models.zoo import build_model

            self._graphs[model] = build_model(model, input_shape=self.config.input_shape)
        return self._graphs[model]

    def profile(self, model: str) -> LatencyProfile:
        """Per-tier latency profile of a model (independent of the network)."""
        if model not in self._profiles:
            from repro.runtime.cluster import Cluster

            cluster = Cluster.build(network="wifi", num_edge_nodes=self.config.num_edge_nodes)
            self._profiles[model] = self._profiler.build_profile_from_measurements(
                self.graph(model), cluster.tier_hardware(), repeats=1
            )
        return self._profiles[model]

    # ------------------------------------------------------------------ #
    def run(self, model: str, network: str | NetworkCondition) -> ScenarioResult:
        """Evaluate every method for one (model, network) cell (cached)."""
        condition = get_condition(network) if isinstance(network, str) else network
        key = (model, condition.name)
        if key in self._results:
            return self._results[key]

        graph = self.graph(model)
        profile = self.profile(model)
        evaluator = PlanEvaluator(profile, condition)
        latency: Dict[str, Optional[float]] = {}
        traffic: Dict[str, Optional[int]] = {}

        # Single-tier baselines.
        single = SingleTierBaseline(profile, condition)
        for tier, name in ((Tier.DEVICE, "device_only"), (Tier.EDGE, "edge_only"), (Tier.CLOUD, "cloud_only")):
            metrics = single.metrics(graph, tier)
            latency[name] = metrics.end_to_end_latency_s
            traffic[name] = metrics.bytes_to_cloud

        # Neurosurgeon (chain topologies only).
        if graph.is_chain():
            neurosurgeon = NeurosurgeonPartitioner(profile, condition).partition(graph)
            latency["neurosurgeon"] = neurosurgeon.latency_s
            traffic["neurosurgeon"] = neurosurgeon.metrics.bytes_to_cloud
        else:
            latency["neurosurgeon"] = None
            traffic["neurosurgeon"] = None

        # DADS.
        dads = DadsPartitioner(profile, condition).partition(graph)
        latency["dads"] = dads.latency_s
        traffic["dads"] = dads.metrics.bytes_to_cloud

        # HPA only (one edge node, no VSM).
        hpa_system = D3System(
            D3Config(
                network=condition,
                num_edge_nodes=1,
                enable_vsm=False,
                use_regression=False,
                profiler_noise_std=self.config.profiler_noise_std,
                seed=self.config.seed,
            )
        )
        hpa_result = hpa_system.run(graph)
        latency["hpa"] = hpa_result.end_to_end_latency_s
        traffic["hpa"] = hpa_result.bytes_to_cloud
        tier_counts = {t.value: c for t, c in hpa_result.placement.tier_counts().items()}
        tier_busy = {t.value: s for t, s in hpa_result.report.tier_busy_seconds().items()}

        # Full D3: HPA + VSM over the configured edge nodes.
        vsm_system = D3System(
            D3Config(
                network=condition,
                num_edge_nodes=self.config.num_edge_nodes,
                tile_grid=self.config.tile_grid,
                enable_vsm=True,
                use_regression=False,
                profiler_noise_std=self.config.profiler_noise_std,
                seed=self.config.seed,
            )
        )
        vsm_result = vsm_system.run(graph)
        latency["hpa_vsm"] = vsm_result.end_to_end_latency_s
        traffic["hpa_vsm"] = vsm_result.bytes_to_cloud

        result = ScenarioResult(
            model=model,
            network=condition.name,
            latency_s=latency,
            bytes_to_cloud=traffic,
            tier_counts=tier_counts,
            tier_busy_s=tier_busy,
        )
        self._results[key] = result
        return result
