"""Shared experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.dag import DnnGraph
from repro.models.zoo import PAPER_MODELS as _PAPER_MODELS
from repro.models.zoo import build_model

#: Evaluation models, in the paper's order.
PAPER_MODELS: List[str] = list(_PAPER_MODELS)

#: Network conditions, in the order of the paper's sub-figures.
PAPER_NETWORKS: List[str] = ["wifi", "4g", "5g", "optical"]


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment harness.

    ``small`` trims the model list and the Inception depth so the full suite
    runs in seconds — used by the unit tests; the benchmarks use the full
    configuration.
    """

    models: List[str] = field(default_factory=lambda: list(PAPER_MODELS))
    networks: List[str] = field(default_factory=lambda: list(PAPER_NETWORKS))
    num_edge_nodes: int = 4
    tile_grid: Tuple[int, int] = (2, 2)
    profiler_noise_std: float = 0.0
    seed: int = 0
    input_shape: Tuple[int, int, int] = (3, 224, 224)
    #: Per-instance graph memo filled by :meth:`build_graphs`; ``init=False``
    #: keeps it out of ``__init__``/``dataclasses.replace`` (a copied config
    #: rebuilds its own memo) and ``compare=False`` out of equality.
    _graph_cache: Optional[Dict[str, DnnGraph]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _graph_cache_key: Optional[Tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Reduced configuration for fast tests."""
        return cls(models=["alexnet", "resnet18"], networks=["wifi", "4g"])

    def build_graphs(self) -> Dict[str, DnnGraph]:
        """Instantiate (and cache) the configured model graphs.

        Graph construction is the one repeated cost left in the figure
        harnesses (partitioning results are cached by the scenario runner),
        so the first call builds every configured model and later calls
        return the same memo.  The memo is keyed by the knobs that shape a
        graph (``models``, ``input_shape``), so mutating either rebuilds it.
        """
        key = (tuple(self.models), tuple(self.input_shape))
        if self._graph_cache is None or self._graph_cache_key != key:
            self._graph_cache = {
                name: build_model(name, input_shape=self.input_shape) for name in self.models
            }
            self._graph_cache_key = key
        return self._graph_cache
