"""Shared experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.dag import DnnGraph
from repro.models.zoo import PAPER_MODELS as _PAPER_MODELS
from repro.models.zoo import build_model

#: Evaluation models, in the paper's order.
PAPER_MODELS: List[str] = list(_PAPER_MODELS)

#: Network conditions, in the order of the paper's sub-figures.
PAPER_NETWORKS: List[str] = ["wifi", "4g", "5g", "optical"]


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment harness.

    ``small`` trims the model list and the Inception depth so the full suite
    runs in seconds — used by the unit tests; the benchmarks use the full
    configuration.
    """

    models: List[str] = field(default_factory=lambda: list(PAPER_MODELS))
    networks: List[str] = field(default_factory=lambda: list(PAPER_NETWORKS))
    num_edge_nodes: int = 4
    tile_grid: Tuple[int, int] = (2, 2)
    profiler_noise_std: float = 0.0
    seed: int = 0
    input_shape: Tuple[int, int, int] = (3, 224, 224)

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Reduced configuration for fast tests."""
        return cls(models=["alexnet", "resnet18"], networks=["wifi", "4g"])

    def build_graphs(self) -> Dict[str, DnnGraph]:
        """Instantiate (and cache) the configured model graphs."""
        return {name: build_model(name, input_shape=self.input_shape) for name in self.models}
