"""Table I — total latency of processing two adjacent layers on tier pairs.

The paper enumerates, for a vertex ``v_i`` whose inputs arrive from the device
tier and its largest direct successor ``v_j``, the total latency of every
admissible placement pair.  This harness computes the same six rows for any
adjacent pair of vertices, and by default for the pair HPA's look-ahead cares
about most in AlexNet (the first convolution and its successor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.placement import Tier
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.graph.dag import DnnGraph
from repro.models.zoo import build_model
from repro.network.conditions import NetworkCondition, get_condition
from repro.profiling.profiler import LatencyProfile, Profiler
from repro.runtime.cluster import Cluster

#: The six placement combinations of Table I, in the paper's row order.
TABLE_I_COMBINATIONS: List[Tuple[Tier, Tier]] = [
    (Tier.DEVICE, Tier.DEVICE),
    (Tier.DEVICE, Tier.EDGE),
    (Tier.EDGE, Tier.EDGE),
    (Tier.EDGE, Tier.CLOUD),
    (Tier.CLOUD, Tier.CLOUD),
    (Tier.DEVICE, Tier.CLOUD),
]


@dataclass
class PairLatencyRow:
    """One row of Table I."""

    tier_i: Tier
    tier_j: Tier
    total_latency_s: float


def pair_latencies(
    graph: DnnGraph,
    vertex_name: str,
    successor_name: str,
    profile: LatencyProfile,
    network: NetworkCondition,
) -> List[PairLatencyRow]:
    """Compute Table I for one adjacent vertex pair.

    ``v_i``'s inputs are assumed to reside on the device tier, exactly as in
    the paper's table: placing ``v_i`` on a later tier therefore pays the
    transfer of its input ``λ^in_i``, and placing ``v_j`` on a different tier
    than ``v_i`` pays the transfer of ``λ^out_i``.
    """
    vertex = graph.vertex(vertex_name)
    successor = graph.vertex(successor_name)
    if vertex.index not in {p.index for p in graph.predecessors(successor.index)}:
        raise ValueError(f"{successor_name!r} is not a direct successor of {vertex_name!r}")
    input_bytes = sum(p.output_bytes for p in graph.predecessors(vertex.index))

    rows = []
    for tier_i, tier_j in TABLE_I_COMBINATIONS:
        total = profile.get(vertex.index, tier_i) + profile.get(successor.index, tier_j)
        total += network.transfer_seconds(input_bytes, Tier.DEVICE.value, tier_i.value)
        total += network.transfer_seconds(vertex.output_bytes, tier_i.value, tier_j.value)
        rows.append(PairLatencyRow(tier_i=tier_i, tier_j=tier_j, total_latency_s=total))
    return rows


def run_pair_latency(
    model: str = "alexnet",
    vertex_name: str = "conv1",
    successor_name: str = "maxpool1",
    network: str = "wifi",
    config: Optional[ExperimentConfig] = None,
) -> List[PairLatencyRow]:
    """Table I for the default AlexNet pair under a named network condition."""
    config = config or ExperimentConfig()
    graph = build_model(model, input_shape=config.input_shape)
    condition = get_condition(network)
    cluster = Cluster.build(network=condition, num_edge_nodes=1)
    profiler = Profiler(noise_std=config.profiler_noise_std, seed=config.seed)
    profile = profiler.build_profile_from_measurements(graph, cluster.tier_hardware(), repeats=1)
    return pair_latencies(graph, vertex_name, successor_name, profile, condition)


def format_pair_latency(rows: List[PairLatencyRow]) -> str:
    """Render Table I."""
    return format_table(
        headers=["location of v_i", "location of v_j", "total latency (ms)"],
        rows=[(r.tier_i.value, r.tier_j.value, r.total_latency_s * 1e3) for r in rows],
        title="Table I — total latencies of processing v_i and v_j",
    )
