"""Serving-under-load scenario harness.

The paper's figures are one-shot: a single inference on an idle testbed.  This
harness is the multi-request counterpart — it drives a request stream through
:meth:`repro.core.d3.D3System.serve` and reports the quantities a serving
system is judged on: percentile latency (p50/p95/p99), throughput, queueing
delay relative to the idle one-shot latency, per-node utilisation, backbone
traffic, and plan-cache effectiveness.

``run_rate_sweep`` sweeps the arrival rate over one scenario, which is the
serving analogue of the paper's bandwidth sweep (Fig. 11): it locates the load
level at which queueing delay departs from zero, i.e. where the partitioned
deployment saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.d3 import D3Config, D3System
from repro.core.dynamic import RepartitionThresholds
from repro.core.strategy import get_strategy
from repro.experiments.reporting import format_table
from repro.network.conditions import BandwidthTrace
from repro.runtime.serving import ServingReport
from repro.runtime.workload import Workload

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "constant")


@dataclass(frozen=True)
class ServingScenario:
    """One serving experiment: a workload shape over a deployed system."""

    models: Tuple[str, ...] = ("vgg16",)
    network: str = "wifi"
    num_edge_nodes: int = 4
    tile_grid: Tuple[int, int] = (2, 2)
    arrival: str = "poisson"
    rate_rps: float = 2.0
    num_requests: int = 100
    seed: int = 0
    use_regression: bool = False
    profiler_noise_std: float = 0.0
    link_contention: str = "fifo"
    #: Registry name of the partitioning method to serve with (``None`` uses
    #: the system's configured D3 method) — this is what makes the harness a
    #: serving-under-load comparison of *every* paper baseline, not just D3.
    method: Optional[str] = None
    #: Deployment topology: a preset name or JSON path (``None`` keeps the
    #: canonical testbed described by ``network``/``num_edge_nodes``).
    topology: Optional[str] = None
    #: Device nodes requests are pinned to, round-robin; empty means the
    #: primary device.  ``("@devices",)`` expands to every device of the
    #: deployed topology (how multi-device fleets are exercised by name).
    sources: Tuple[str, ...] = ()
    #: Latency SLO applied to every request (``None`` = best-effort).
    slo_ms: Optional[float] = None
    #: Priority classes cycled round-robin over the stream (empty = all 0).
    priorities: Tuple[int, ...] = ()
    #: Dispatch policy registry name (``None`` = the default FIFO).
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}"
            )
        if self.rate_rps <= 0:
            raise ValueError("rate must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")

    # ------------------------------------------------------------------ #
    def build_system(self) -> D3System:
        return D3System(
            D3Config(
                topology=self.topology,
                network=self.network,
                num_edge_nodes=self.num_edge_nodes,
                tile_grid=self.tile_grid,
                use_regression=self.use_regression,
                profiler_noise_std=self.profiler_noise_std,
                seed=self.seed,
            )
        )

    def resolve_sources(self, system: D3System) -> Optional[List[str]]:
        """Expand the ``sources`` field against the deployed cluster.

        The ``"@devices"`` sentinel — whether the whole field or one element
        of it — expands to every device of the topology, in declaration order.
        """
        if not self.sources:
            return None
        raw = [self.sources] if isinstance(self.sources, str) else list(self.sources)
        expanded: List[str] = []
        for source in raw:
            if source == "@devices":
                expanded.extend(node.name for node in system.cluster.devices)
            else:
                expanded.append(source)
        return expanded

    def build_workload(self, system: Optional[D3System] = None) -> Workload:
        models = list(self.models)
        sources = self.resolve_sources(system) if system is not None else None
        priorities = list(self.priorities) or None
        if self.arrival == "constant":
            return Workload.constant_rate(
                models,
                num_requests=self.num_requests,
                interval_s=1.0 / self.rate_rps,
                sources=sources,
                slo_ms=self.slo_ms,
                priorities=priorities,
            )
        return Workload.poisson(
            models,
            num_requests=self.num_requests,
            rate_rps=self.rate_rps,
            seed=self.seed,
            sources=sources,
            slo_ms=self.slo_ms,
            priorities=priorities,
        )


def run_serving_scenario(
    scenario: Optional[ServingScenario] = None,
    system: Optional[D3System] = None,
    trace: Optional[BandwidthTrace] = None,
    thresholds: Optional[RepartitionThresholds] = None,
) -> ServingReport:
    """Serve one scenario's workload and return the aggregate report.

    Passing an existing ``system`` reuses its plan cache across scenarios
    (the realistic deployment: one resident system, many workload episodes).
    """
    scenario = scenario or ServingScenario()
    system = system or scenario.build_system()
    return system.serve(
        scenario.build_workload(system),
        trace=trace,
        thresholds=thresholds,
        link_contention=scenario.link_contention,
        method=scenario.method,
        scheduler=scenario.scheduler,
    )


def run_rate_sweep(
    rates_rps: Sequence[float],
    scenario: Optional[ServingScenario] = None,
) -> List[Tuple[float, ServingReport]]:
    """Serve the same scenario at several arrival rates (shared plan cache)."""
    if not rates_rps:
        raise ValueError("need at least one rate")
    scenario = scenario or ServingScenario()
    system = scenario.build_system()
    results: List[Tuple[float, ServingReport]] = []
    for rate in rates_rps:
        episode = replace(scenario, rate_rps=rate)
        results.append((rate, run_serving_scenario(episode, system=system)))
    return results


def run_method_comparison(
    methods: Sequence[str],
    scenario: Optional[ServingScenario] = None,
) -> List[Tuple[str, Optional[ServingReport]]]:
    """Serve the same workload once per partitioning method.

    This is the capability the strategy registry unlocks: the identical
    request stream is driven through Neurosurgeon, DADS, the single-tier
    baselines and D3 on the same cluster, so their latency percentiles and
    queueing behaviour under load are directly comparable.  Methods that
    decline the scenario's model graphs (``supports()`` is false) report
    ``None`` instead of raising.
    """
    if not methods:
        raise ValueError("need at least one method")
    scenario = scenario or ServingScenario()
    results: List[Tuple[str, Optional[ServingReport]]] = []
    for method in methods:
        system = scenario.build_system()
        strategy = get_strategy(method)
        graphs = [system.graph_for(model) for model in scenario.models]
        if not all(strategy.supports(graph) for graph in graphs):
            results.append((method, None))
            continue
        episode = replace(scenario, method=method)
        results.append((method, run_serving_scenario(episode, system=system)))
    return results


def format_method_comparison(results: Sequence[Tuple[str, Optional[ServingReport]]]) -> str:
    """Render a method comparison: one row per partitioning method."""
    rows = []
    for method, report in results:
        if report is None:
            rows.append((method, None, None, None, None, None, None))
            continue
        pct = report.latency_percentiles()
        queueing = report.mean_queueing_delay_s()
        rows.append(
            (
                method,
                report.throughput_rps,
                pct["p50"] * 1e3,
                pct["p95"] * 1e3,
                pct["p99"] * 1e3,
                (queueing or 0.0) * 1e3,
                report.bytes_to_cloud * 8.0 / 1e6,
            )
        )
    return format_table(
        headers=("method", "req/s", "p50 ms", "p95 ms", "p99 ms", "queue ms", "cloud Mb"),
        rows=rows,
        title="Serving under load — method comparison",
    )


def format_serving_report(report: ServingReport) -> str:
    """Render one serving report as an aligned table plus the summary lines."""
    pct = report.latency_percentiles()
    queueing = report.mean_queueing_delay_s()
    rows = [
        (
            report.workload_name,
            report.num_requests,
            report.throughput_rps,
            pct["p50"] * 1e3,
            pct["p95"] * 1e3,
            pct["p99"] * 1e3,
            (queueing or 0.0) * 1e3,
            report.plans_computed,
        )
    ]
    return format_table(
        headers=(
            "workload",
            "requests",
            "req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "queue ms",
            "plans",
        ),
        rows=rows,
        title="Serving under load",
    )


def format_rate_sweep(results: Sequence[Tuple[float, ServingReport]]) -> str:
    """Render a rate sweep: one row per arrival rate."""
    rows = []
    for rate, report in results:
        pct = report.latency_percentiles()
        queueing = report.mean_queueing_delay_s()
        utilisation = report.node_utilisation()
        busiest = max(utilisation.values()) if utilisation else 0.0
        rows.append(
            (
                rate,
                report.throughput_rps,
                pct["p50"] * 1e3,
                pct["p95"] * 1e3,
                pct["p99"] * 1e3,
                (queueing or 0.0) * 1e3,
                busiest,
            )
        )
    return format_table(
        headers=("rate", "req/s", "p50 ms", "p95 ms", "p99 ms", "queue ms", "max util"),
        rows=rows,
        title="Arrival-rate sweep",
    )
