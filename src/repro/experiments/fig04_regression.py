"""Fig. 4 — actual vs. predicted per-layer processing time of AlexNet.

The paper trains a regression model on computation resources and layer
configurations, then shows that its per-layer predictions track the measured
latencies of AlexNet on an i7-8700 CPU (Fig. 4a) and an RTX 2080 Ti GPU
(Fig. 4b).  Here the regressor is trained on the *other* zoo models (so AlexNet
layers are unseen) and evaluated against the simulated measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, HardwareSpec
from repro.profiling.profiler import Profiler
from repro.profiling.regression import LatencyRegressionModel, RegressionReport

#: Models used to train the regressor (AlexNet itself is held out).
CALIBRATION_MODELS = ("vgg16", "resnet18")

#: Layer kinds reported in Fig. 4 (compute layers of AlexNet).
REPORTED_KINDS = ("conv", "maxpool", "linear")


@dataclass
class RegressionExperimentResult:
    """Fig. 4 result for one target machine."""

    hardware_name: str
    report: RegressionReport

    @property
    def mape(self) -> float:
        return self.report.mean_absolute_percentage_error

    @property
    def r_squared(self) -> float:
        return self.report.r_squared


def run_regression_experiment(
    target_model: str = "alexnet",
    hardware_specs: Sequence[HardwareSpec] = (EDGE_DESKTOP, CLOUD_SERVER),
    calibration_models: Sequence[str] = CALIBRATION_MODELS,
    noise_std: float = 0.05,
    seed: int = 0,
    config: Optional[ExperimentConfig] = None,
) -> List[RegressionExperimentResult]:
    """Train on the calibration models, predict the target model's layers."""
    config = config or ExperimentConfig()
    profiler = Profiler(noise_std=noise_std, seed=seed)
    calibration_graphs = [build_model(m, input_shape=config.input_shape) for m in calibration_models]
    samples = profiler.collect_training_samples(calibration_graphs, list(hardware_specs), repeats=3)
    regression = LatencyRegressionModel().fit(samples)

    target = build_model(target_model, input_shape=config.input_shape)
    results = []
    for hardware in hardware_specs:
        actual = profiler.measure_graph(target, hardware, repeats=3)
        report = regression.report(target, hardware, actual, kinds=REPORTED_KINDS)
        results.append(RegressionExperimentResult(hardware_name=hardware.name, report=report))
    return results


def format_regression(results: Sequence[RegressionExperimentResult]) -> str:
    """Render the Fig. 4 per-layer actual/predicted tables."""
    blocks = []
    for result in results:
        rows = [
            (layer, actual * 1e3, predicted * 1e3)
            for layer, actual, predicted in result.report.rows()
        ]
        rows.append(("MAPE", result.mape * 100.0, None))
        blocks.append(
            format_table(
                headers=["layer", "actual (ms)", "predicted (ms)"],
                rows=rows,
                title=f"Fig. 4 — {result.hardware_name}",
                precision=3,
            )
        )
    return "\n\n".join(blocks)
