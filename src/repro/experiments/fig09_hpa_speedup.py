"""Fig. 9 — end-to-end latency speedup of HPA over single-tier execution.

Four sub-figures (Wi-Fi, 4G, 5G, optical), five models each, four bars per
model: device-only (the baseline, speedup 1), edge-only, cloud-only and HPA,
all normalised to device-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runners import ScenarioRunner

#: Methods shown in Fig. 9, in bar order.
FIG9_METHODS = ("device_only", "edge_only", "cloud_only", "hpa")


@dataclass
class SpeedupCell:
    """Speedups over device-only for one (network, model) cell."""

    network: str
    model: str
    speedups: Dict[str, Optional[float]]


def run_hpa_speedup(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ScenarioRunner] = None,
) -> List[SpeedupCell]:
    """Compute the Fig. 9 speedup matrix."""
    config = config or ExperimentConfig()
    runner = runner or ScenarioRunner(config)
    cells: List[SpeedupCell] = []
    for network in config.networks:
        for model in config.models:
            scenario = runner.run(model, network)
            speedups = {
                method: scenario.speedup_over("device_only", method) for method in FIG9_METHODS
            }
            cells.append(SpeedupCell(network=network, model=model, speedups=speedups))
    return cells


def max_speedup(cells: Sequence[SpeedupCell], method: str = "hpa") -> float:
    """Largest speedup of ``method`` across the matrix (the paper quotes 28.2x)."""
    values = [c.speedups.get(method) for c in cells if c.speedups.get(method) is not None]
    return max(values) if values else 0.0


def format_hpa_speedup(cells: Sequence[SpeedupCell]) -> str:
    """Render Fig. 9 as one table per network condition."""
    blocks = []
    networks = sorted({c.network for c in cells}, key=lambda n: [c.network for c in cells].index(n))
    for network in networks:
        rows = [
            (c.model, *[c.speedups.get(m) for m in FIG9_METHODS])
            for c in cells
            if c.network == network
        ]
        blocks.append(
            format_table(
                headers=["model", *FIG9_METHODS],
                rows=rows,
                title=f"Fig. 9 — latency speedup over device-only ({network})",
            )
        )
    return "\n\n".join(blocks)
