"""Experiment harnesses — one module per table/figure of the paper.

Every harness exposes a ``run_*`` function returning plain dataclasses/dicts
(so benchmarks and tests can assert on them) and a ``format_*`` helper that
renders the same rows the paper reports.  The mapping to the paper:

===================  =====================================================
Module               Paper artefact
===================  =====================================================
``fig01_layer_profile``   Fig. 1 — per-layer latency and output size
``fig04_regression``      Fig. 4 — actual vs predicted layer latency
``table01_pair_latency``  Table I — pair placement latency enumeration
``table02_tier_times``    Table II — per-tier time after HPA
``fig09_hpa_speedup``     Fig. 9 — HPA vs device/edge/cloud-only
``fig10_vs_baselines``    Fig. 10 — HPA vs Neurosurgeon and DADS
``fig11_bandwidth_sweep`` Fig. 11 — Inception-v4 speedup vs backbone rate
``fig12_hpa_vsm``         Fig. 12 — HPA+VSM vs everything (Wi-Fi, 4 nodes)
``fig13_communication``   Fig. 13 — per-image traffic to the cloud
===================  =====================================================

Beyond the paper, ``serving`` drives multi-request workloads through the
discrete-event serving engine (percentile latency, throughput, queueing delay
and plan-cache effectiveness under load).
"""

from repro.experiments.config import ExperimentConfig, PAPER_MODELS, PAPER_NETWORKS
from repro.experiments.runners import ScenarioRunner, ScenarioResult
from repro.experiments import (
    availability,
    fig01_layer_profile,
    fig04_regression,
    fig09_hpa_speedup,
    fig10_vs_baselines,
    fig11_bandwidth_sweep,
    fig12_hpa_vsm,
    fig13_communication,
    serving,
    table01_pair_latency,
    table02_tier_times,
)
from repro.experiments.reporting import format_table, latency_percentiles, percentile

__all__ = [
    "ExperimentConfig",
    "PAPER_MODELS",
    "PAPER_NETWORKS",
    "ScenarioResult",
    "ScenarioRunner",
    "availability",
    "fig01_layer_profile",
    "fig04_regression",
    "fig09_hpa_speedup",
    "fig10_vs_baselines",
    "fig11_bandwidth_sweep",
    "fig12_hpa_vsm",
    "fig13_communication",
    "format_table",
    "latency_percentiles",
    "percentile",
    "serving",
    "table01_pair_latency",
    "table02_tier_times",
]
