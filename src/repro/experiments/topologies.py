"""Method × topology comparison harness.

The paper's evaluation is a matrix of methods crossed with models and network
conditions — always on the one canonical testbed shape.  With the deployment
description now a first-class :class:`~repro.network.topology.Topology`, this
harness adds the missing axis: the *same* request stream is served by every
partitioning method on every deployment shape (the canonical testbed, a
multi-device fleet, a heterogeneous edge rack, a multi-hop gateway chain), so
the table answers "which method degrades how, where".

``repro scenario topologies`` prints the result; the tests assert its shape
and that D3 stays competitive on every topology it supports.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategy import get_strategy
from repro.experiments.reporting import format_table
from repro.experiments.serving import ServingScenario, run_serving_scenario
from repro.runtime.serving import ServingReport

#: The deployment shapes compared by default (all preset names).
DEFAULT_TOPOLOGIES: Tuple[str, ...] = (
    "three_tier",
    "multi_device",
    "hetero_edge",
    "device_gateway",
)

#: The methods compared by default (one per family: single-tier, chain-split,
#: DAG-cut, D3 without and with VSM).
DEFAULT_METHODS: Tuple[str, ...] = ("cloud_only", "neurosurgeon", "dads", "hpa", "hpa_vsm")


def run_topology_comparison(
    methods: Sequence[str] = DEFAULT_METHODS,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    scenario: Optional[ServingScenario] = None,
) -> List[Tuple[str, Dict[str, Optional[ServingReport]]]]:
    """Serve one workload per (topology, method) pair.

    Returns one row per topology: ``(topology_name, {method: report})``.
    Requests are pinned round-robin across every device of each deployment;
    methods that decline the scenario's model report ``None``.
    """
    if not methods:
        raise ValueError("need at least one method")
    if not topologies:
        raise ValueError("need at least one topology")
    scenario = scenario or ServingScenario(
        models=("alexnet",), num_requests=30, rate_rps=4.0, sources=("@devices",)
    )
    results: List[Tuple[str, Dict[str, Optional[ServingReport]]]] = []
    for topology in topologies:
        # One resident system per deployment: its profiles and plan cache
        # (keyed by strategy) are shared across all compared methods.
        system = replace(scenario, topology=topology).build_system()
        graphs = [system.graph_for(model) for model in scenario.models]
        per_method: Dict[str, Optional[ServingReport]] = {}
        for method in methods:
            strategy = get_strategy(method)
            if not all(strategy.supports(graph) for graph in graphs):
                per_method[method] = None
                continue
            episode = replace(scenario, topology=topology, method=method)
            per_method[method] = run_serving_scenario(episode, system=system)
        results.append((topology, per_method))
    return results


def format_topology_comparison(
    results: Sequence[Tuple[str, Dict[str, Optional[ServingReport]]]],
) -> str:
    """Render the comparison: rows are topologies, columns are method p95s."""
    if not results:
        return "no topology results"
    methods = list(results[0][1])
    rows = []
    for topology, per_method in results:
        row: List[object] = [topology]
        for method in methods:
            report = per_method.get(method)
            row.append(
                None if report is None else report.latency_percentiles()["p95"] * 1e3
            )
        rows.append(tuple(row))
    return format_table(
        headers=("topology", *(f"{m} p95 ms" for m in methods)),
        rows=rows,
        title="Serving under load — method × topology (p95 latency)",
    )
