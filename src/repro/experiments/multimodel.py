"""Memory-constrained multi-model serving: budget × eviction × codec.

Every other harness serves as if weights were free; this one prices them.
A mixed stream over the paper's five-model zoo is served repeatedly while
three memory knobs vary:

* **budget** — the per-node weight-cache capacity for device/edge tiers
  (the cloud keeps its hardware capacity: it is the artifact store).  An
  ``off`` row serves memory-free as the baseline; a roomy budget admits the
  whole zoo once and then runs warm; a tight budget cannot hold the working
  set, so models evict each other and every reload pays a cold start.
* **eviction** — ``lru`` (recency) vs ``priority`` (fewest hits first), the
  two :class:`~repro.runtime.artifacts.WeightCache` policies.
* **codec** — ``symmetric`` vs ``zxc`` at the *same* compression ratio.
  ZXC is write-once/read-many: compressing is slow (done once, off the
  serving path) but decompression is ~4x faster than the symmetric codec,
  so every cold start — which only ever decompresses — is cheaper.

Beyond the table, the harness demonstrates the planning-side consequence:
:func:`run_partition_flip` plans the same model under an unconstrained and
a tight memory model and shows the chosen placement *change* — tight memory
makes the strategy's preferred split infeasible and the repair moves the
stages to the tier that can actually hold the weights.

``repro serve --model a,b --memory-budget G --codec C --eviction P`` runs
any single cell; ``repro scenario multimodel`` prints this report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.d3 import D3Config, D3System
from repro.experiments.reporting import format_table
from repro.models.zoo import PAPER_MODELS
from repro.runtime.artifacts import MemoryModel
from repro.runtime.serving import ServingReport
from repro.runtime.workload import Workload

#: One table row: (budget label, eviction, codec, report).
MultimodelResult = Tuple[str, str, str, ServingReport]

#: The full harness output: the serving grid plus the two headline demos.
MultimodelComparison = Dict[str, object]


@dataclass(frozen=True)
class MultimodelScenario:
    """One memory experiment: the five-model zoo over a small edge fleet."""

    #: The paper's zoo, mixed round-robin by the Poisson superposition —
    #: ~1.2 GB of float32 weights in total, far more than a tight cache.
    models: Tuple[str, ...] = tuple(PAPER_MODELS)
    network: str = "wifi"
    num_edge_nodes: int = 2
    num_requests: int = 50
    rate_rps: float = 5.0
    seed: int = 0
    #: Roomy: the whole zoo fits resident after one cold start each.
    #: Tight: well under the zoo's working set — the cache must thrash.
    roomy_budget_gb: float = 2.0
    tight_budget_gb: float = 0.7
    #: Budget used by the partition-flip demo: smaller than any single
    #: placement of the flip model outside the cloud.
    flip_budget_gb: float = 0.25
    flip_model: str = "vgg16"

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("scenario needs at least one model")
        if not 0 < self.tight_budget_gb < self.roomy_budget_gb:
            raise ValueError("budgets must satisfy 0 < tight < roomy")

    # ------------------------------------------------------------------ #
    def build_system(self) -> D3System:
        return D3System(
            D3Config(
                network=self.network,
                num_edge_nodes=self.num_edge_nodes,
                use_regression=False,
                profiler_noise_std=0.0,
                seed=self.seed,
            )
        )

    def build_workload(self) -> Workload:
        return Workload.poisson(
            list(self.models),
            num_requests=self.num_requests,
            rate_rps=self.rate_rps,
            seed=self.seed,
        )


def run_multimodel_comparison(
    scenario: Optional[MultimodelScenario] = None,
) -> MultimodelComparison:
    """Serve the mixed stream per (budget, eviction, codec) cell.

    Every cell is served on a *fresh* system so each starts from cold caches
    and an empty plan cache — the table compares steady configurations, not
    whatever residency the previous cell left behind.
    """
    scenario = scenario or MultimodelScenario()
    workload = scenario.build_workload()
    rows: List[MultimodelResult] = []

    baseline = scenario.build_system().serve(workload)
    rows.append(("off", "-", "-", baseline))

    budgets = (
        (f"{scenario.roomy_budget_gb:g}G", scenario.roomy_budget_gb),
        (f"{scenario.tight_budget_gb:g}G", scenario.tight_budget_gb),
    )
    for label, budget_gb in budgets:
        for eviction in ("lru", "priority"):
            for codec in ("symmetric", "zxc"):
                report = scenario.build_system().serve(
                    workload,
                    memory=MemoryModel(
                        budget_gb=budget_gb, codec=codec, eviction=eviction
                    ),
                )
                rows.append((label, eviction, codec, report))

    return {
        "rows": rows,
        "flip": run_partition_flip(scenario),
        "codecs": codec_cold_start_comparison(rows),
    }


def run_partition_flip(
    scenario: Optional[MultimodelScenario] = None,
) -> Tuple[str, str, bool]:
    """Plan the flip model loose vs tight; return both placements.

    Under an unconstrained memory model the strategy keeps its latency
    optimum; under the tight budget that placement overflows the device and
    edge caches, so the memory repair re-homes the stages — the returned
    flag records that the chosen partition actually changed.
    """
    scenario = scenario or MultimodelScenario()
    probe = Workload.constant_rate(scenario.flip_model, num_requests=1, interval_s=1.0)

    loose = scenario.build_system().plan_requests(probe)[0].plan
    tight = scenario.build_system().plan_requests(
        probe, memory=MemoryModel(budget_gb=scenario.flip_budget_gb, codec="zxc")
    )[0].plan
    return (
        loose.describe(),
        tight.describe(),
        loose.assignments != tight.assignments,
    )


def codec_cold_start_comparison(
    rows: Sequence[MultimodelResult],
) -> Dict[str, float]:
    """Total cold-start seconds per codec, summed over the tight-budget rows.

    Both codecs run at the same compression ratio, so the transfer legs are
    identical byte-for-byte — any gap is pure decompression throughput,
    which is exactly the asymmetry ZXC trades for its slow one-time
    compression.
    """
    totals: Dict[str, float] = {}
    for _, _, codec, report in rows:
        if codec in ("symmetric", "zxc"):
            totals[codec] = totals.get(codec, 0.0) + report.cold_start_s
    return totals


def format_multimodel_comparison(comparison: MultimodelComparison) -> str:
    """Render the budget × eviction × codec table plus the two demos."""
    rows = []
    for budget, eviction, codec, report in comparison["rows"]:
        pct = report.latency_percentiles()
        rows.append(
            (
                budget,
                eviction,
                codec,
                pct["p50"] * 1e3,
                pct["p99"] * 1e3,
                report.cold_starts,
                report.cold_start_s,
                report.weight_cache_hit_rate * 100.0,
                report.weight_evictions,
                report.peak_resident_bytes / 1e6,
            )
        )
    table = format_table(
        headers=(
            "budget",
            "evict",
            "codec",
            "p50 ms",
            "p99 ms",
            "colds",
            "cold s",
            "hit %",
            "evcts",
            "peak MB",
        ),
        rows=rows,
        title="Memory-constrained serving — five-model zoo × budget × eviction × codec",
    )

    lines = [table, ""]
    loose, tight, changed = comparison["flip"]
    lines.append("partition flip under tight memory:")
    lines.append(f"  unconstrained: {loose}")
    lines.append(f"  tight budget:  {tight}")
    lines.append(f"  placement changed: {'yes' if changed else 'no'}")

    codecs = comparison["codecs"]
    if "symmetric" in codecs and "zxc" in codecs:
        sym, zxc = codecs["symmetric"], codecs["zxc"]
        colds = sum(
            report.cold_starts
            for _, _, codec, report in comparison["rows"]
            if codec == "zxc"
        )
        per_load = (sym - zxc) / colds if colds else 0.0
        lines.append(
            f"cold-start loading: symmetric {sym:.1f} s vs zxc {zxc:.1f} s "
            f"total — zxc saves {per_load * 1e3:.0f} ms per load (equal "
            f"ratio, so the transfer legs are identical; the gap is pure "
            f"decompression throughput)"
        )
    return "\n".join(lines)
