"""Elastic-fleet scenario: diurnal load × static-vs-elastic fleet × balancer.

The serving, availability and SLO harnesses all hold the fleet fixed; this one
asks the capacity-planning question instead — *how many node-hours does it
take to serve a day of traffic well?*  A diurnal arrival curve (a raised
cosine with the classic 10:1 day/night swing, sampled exactly by thinning)
is driven through an edge replica group twice per load balancer:

* **static** — every edge replica stays up for the whole run: the
  peak-provisioned fleet, p99 as good as it gets, node-hours as bad.
* **elastic** — an :class:`~repro.runtime.elasticity.Autoscaler` watches
  replica utilisation and queue depth, parks the fleet down to one replica
  overnight and grows it back as the curve climbs, paying a provisioning
  delay on every scale-up.

The table reports the three numbers the trade lives on — p99 latency,
goodput against the scenario SLO, and fleet node-hours — plus the scale
events that produced them.  The headline result: the elastic fleet serves
the same curve at equal-or-better p99 for a fraction of the node-hours,
because the balancer (round-robin, join-shortest-queue or
power-of-two-choices) keeps the reduced fleet evenly loaded while the
autoscaler tracks the diurnal envelope.

``repro serve --autoscale POLICY --balancer NAME`` runs any single cell;
``repro scenario autoscale`` prints this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.d3 import D3Config, D3System
from repro.experiments.reporting import format_table
from repro.runtime.elasticity import BALANCER_NAMES, Autoscaler
from repro.runtime.serving import ServingReport
from repro.runtime.workload import Workload

#: One harness row: (fleet, balancer, report).
AutoscaleResult = Tuple[str, str, ServingReport]

#: Fleets compared: peak-provisioned vs autoscaled.
FLEETS: Tuple[str, ...] = ("static", "elastic")

#: Balancers compared (registry names).
DEFAULT_BALANCERS: Tuple[str, ...] = BALANCER_NAMES


@dataclass(frozen=True)
class AutoscaleScenario:
    """One elastic-fleet experiment: a diurnal curve over an edge group."""

    #: VGG-16 keeps the replica group compute-bound (~163 ms of edge work per
    #: request): one replica saturates near 6 req/s, so the diurnal peak
    #: genuinely needs the fleet and the trough genuinely doesn't.
    model: str = "vgg16"
    network: str = "wifi"
    num_edge_nodes: int = 4
    #: Diurnal curve: one full trough→peak→trough cycle over the run.
    duration_s: float = 60.0
    peak_rps: float = 10.0
    trough_rps: float = 1.0
    seed: int = 0
    #: SLO every request carries, so goodput/attainment are reportable.
    slo_ms: float = 1000.0
    #: Partitioning method — ``edge_only`` puts the whole model on the edge
    #: replica group, the regime replication and balancing actually govern.
    method: str = "edge_only"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.trough_rps <= self.peak_rps:
            raise ValueError("trough rate must lie in [0, peak_rps]")
        if self.num_edge_nodes < 2:
            raise ValueError("an elastic fleet needs at least two edge replicas")

    # ------------------------------------------------------------------ #
    def build_system(self) -> D3System:
        return D3System(
            D3Config(
                network=self.network,
                num_edge_nodes=self.num_edge_nodes,
                use_regression=False,
                profiler_noise_std=0.0,
                seed=self.seed,
            )
        )

    def build_workload(self) -> Workload:
        return Workload.diurnal(
            self.model,
            duration_s=self.duration_s,
            peak_rps=self.peak_rps,
            trough_rps=self.trough_rps,
            seed=self.seed,
            slo_ms=self.slo_ms,
        )

    def build_autoscaler(self) -> Autoscaler:
        """The elastic fleet's policy: start from one replica, track the curve.

        The thresholds are deliberately asymmetric — scale up early (35%
        utilisation, well before a replica saturates) and down late (10%),
        with a cooldown long enough that the slow diurnal envelope, not tick
        noise, drives the decisions.  That asymmetry is what buys p99 parity
        with the static fleet: capacity is already there when the peak
        arrives, and drains only happen deep in the trough where they cannot
        create queueing.  The provisioning delay is the cost every scale-up
        pays before the new replica takes work.
        """
        return Autoscaler(
            policy="target-util",
            interval_s=0.5,
            window=2,
            scale_up_at=0.35,
            scale_down_at=0.10,
            cooldown_s=3.0,
            min_replicas=1,
            max_replicas=self.num_edge_nodes,
            initial_replicas=1,
            provision_s=0.5,
        )


def run_autoscale_comparison(
    balancers: Sequence[str] = DEFAULT_BALANCERS,
    scenario: Optional[AutoscaleScenario] = None,
) -> List[AutoscaleResult]:
    """Serve the same diurnal workload per (fleet, balancer) cell.

    One resident system serves every cell (its plan cache is shared — the
    membership-masked fingerprints are what make that sound), and every cell
    sees the *identical* request stream, so static and elastic rows differ
    only in fleet policy.
    """
    if not balancers:
        raise ValueError("need at least one balancer")
    scenario = scenario or AutoscaleScenario()
    system = scenario.build_system()
    workload = scenario.build_workload()
    results: List[AutoscaleResult] = []
    for balancer in balancers:
        static = system.serve(workload, method=scenario.method, balancer=balancer)
        results.append(("static", balancer, static))
        elastic = system.serve(
            workload,
            method=scenario.method,
            autoscaler=scenario.build_autoscaler(),
            balancer=balancer,
        )
        results.append(("elastic", balancer, elastic))
    return results


def format_autoscale_comparison(results: Sequence[AutoscaleResult]) -> str:
    """Render the fleet × balancer p99/goodput/node-hours table."""
    rows = []
    for fleet, balancer, report in results:
        pct = report.latency_percentiles()
        rows.append(
            (
                fleet,
                balancer,
                report.throughput_rps,
                pct["p50"] * 1e3,
                pct["p99"] * 1e3,
                report.goodput_rps,
                report.slo_attainment * 100.0,
                report.node_hours,
                report.scale_up_events,
                report.scale_down_events,
            )
        )
    return format_table(
        headers=(
            "fleet",
            "balancer",
            "req/s",
            "p50 ms",
            "p99 ms",
            "goodput",
            "attain %",
            "node-hrs",
            "ups",
            "downs",
        ),
        rows=rows,
        title="Elastic fleets — diurnal load × fleet policy × balancer",
    )


def node_hour_savings(results: Sequence[AutoscaleResult]) -> float:
    """Fraction of fleet node-hours the elastic rows save over the static
    rows (a quick check that autoscaling actually paid for itself)."""
    static = [r.node_hours for fleet, _, r in results if fleet == "static"]
    elastic = [r.node_hours for fleet, _, r in results if fleet == "elastic"]
    if not static or not elastic:
        raise ValueError("need both static and elastic rows")
    total_static = sum(static)
    if total_static <= 0:
        return 0.0
    return 1.0 - sum(elastic) / total_static
