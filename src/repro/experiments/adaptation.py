"""Predictive-adaptation scenario: reactive vs forecast-driven repartitioning.

Every other harness reacts to bandwidth drift after the fact — the plan cache
waits for a trace sample to leave the reactive band, then repartitions.  This
one asks what look-ahead buys: the same drifting trace is served twice per
aggressiveness level, once with the :class:`~repro.runtime.calibration`
machinery held purely reactive (``horizon_s = 0``) and once with the
:class:`~repro.runtime.calibration.BandwidthForecaster` projecting the trend a
configurable horizon forward so the :class:`~repro.core.dynamic.DynamicRepartitioner`
can move the split *before* the band is breached.

The table reports the three quantities the trade lives on:

* **adaptation lag** — seconds between drift onset and the first repartition
  (proactive or reactive).  Prediction should shrink this: the forecaster
  fires while the sampled multiplier is still inside the band.
* **mid-drift p99** — tail latency over the requests that arrive while the
  bandwidth is actively decaying, the window where a stale split hurts most.
* **churn** — total repartitions plus forecast mispredicts (proactive calls
  whose predicted breach never materialised).  This is the cost axis:
  prediction is only worth it if the lag/p99 win is not bought with
  speculative replans the reactive rule would have skipped.

Both cells of a row run a *fresh* :class:`~repro.core.d3.D3System` over the
identical seeded workload, so the comparison isolates the trigger rule.

``repro scenario adaptation`` prints the table; ``repro serve --calibrate
--forecast-horizon S`` runs any single cell by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.d3 import D3Config, D3System
from repro.experiments.reporting import format_table
from repro.network.conditions import BandwidthTrace, get_condition
from repro.runtime.calibration import CalibrationConfig
from repro.runtime.serving import ServingReport
from repro.runtime.workload import Workload

#: One harness row: (aggressiveness, mode, report, adaptation_lag_s, mid_drift_p99_ms).
AdaptationResult = Tuple[str, str, ServingReport, Optional[float], float]

#: Trigger rules compared per aggressiveness level.
MODES: Tuple[str, ...] = ("reactive", "predictive")

#: Drift floors swept: how far the backbone multiplier decays.  ``mild``
#: bottoms out just below the reactive band edge (0.75); ``steep`` halves
#: again beyond it, so the stale plan's penalty — and the value of moving
#: early — grows with the row.
AGGRESSIVENESS: Tuple[Tuple[str, float], ...] = (("mild", 0.6), ("steep", 0.35))


@dataclass(frozen=True)
class AdaptationScenario:
    """One predictive-adaptation experiment: a decaying trace over a testbed.

    AlexNet over the optical backbone is the regime where the trigger rule,
    not raw capacity, decides the tail: at full bandwidth the optimal split
    offloads the classifier head to the cloud, and once the backbone decays
    past the band the optimum pulls those layers back to the edge — so a
    stale plan keeps paying inflated transfers for exactly as long as the
    adaptation lag.
    """

    model: str = "alexnet"
    network: str = "optical"
    num_edge_nodes: int = 2
    num_requests: int = 40
    rate_rps: float = 5.0
    seed: int = 17
    #: When the backbone starts decaying (the trace holds 1.0 before this).
    drift_onset_s: float = 1.0
    #: When the decay bottoms out at the aggressiveness floor.
    drift_end_s: float = 2.5
    #: Forecast look-ahead for the predictive cell (reactive uses 0).
    horizon_s: float = 0.8
    #: Holt filter gains for the calibrator/forecaster.  The defaults in
    #: :class:`~repro.runtime.calibration.CalibrationConfig` favour stable
    #: cost estimates; a drift study wants the trend to lock on within a few
    #: samples, so both cells run with snappier smoothing (identical gains —
    #: only the horizon differs between the columns).
    alpha: float = 0.6
    trend_beta: float = 0.6

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.drift_onset_s < self.drift_end_s:
            raise ValueError("drift window must be ordered and non-negative")
        if self.horizon_s <= 0:
            raise ValueError("the predictive cell needs a positive horizon")

    # ------------------------------------------------------------------ #
    def build_system(self) -> D3System:
        return D3System(
            D3Config(
                network=self.network,
                num_edge_nodes=self.num_edge_nodes,
                use_regression=False,
                profiler_noise_std=0.0,
                seed=self.seed,
            )
        )

    def build_workload(self) -> Workload:
        """Deterministic arrivals, so the table isolates the trigger rule.

        Poisson bursts queue identically under either trigger and their
        spikes would set the window p99; a metronome stream makes every
        latency a clean read of (plan in effect) × (bandwidth at arrival).
        """
        return Workload.constant_rate(
            self.model,
            num_requests=self.num_requests,
            interval_s=1.0 / self.rate_rps,
        )

    def build_trace(self, floor: float) -> BandwidthTrace:
        """A linear backbone decay from 1.0 at onset to ``floor`` at the end.

        Sampled every 0.25 s so the forecaster sees the trend as a sequence
        of small steps — the regime Holt smoothing extrapolates well — rather
        than one cliff it could only ever chase.
        """
        if not 0.0 < floor < 1.0:
            raise ValueError("drift floor must lie in (0, 1)")
        samples: List[Tuple[float, float]] = [(0.0, 1.0)]
        step = 0.25
        span = self.drift_end_s - self.drift_onset_s
        t = self.drift_onset_s
        while t < self.drift_end_s:
            frac = (t - self.drift_onset_s) / span
            samples.append((round(t, 6), round(1.0 - (1.0 - floor) * frac, 6)))
            t += step
        samples.append((self.drift_end_s, floor))
        return BandwidthTrace(get_condition(self.network), samples)


# --------------------------------------------------------------------------- #
def _mid_drift_p99_ms(report: ServingReport, scenario: AdaptationScenario) -> float:
    """p99 latency (ms) over requests arriving while the decay is active."""
    window = [
        record.latency_s * 1e3
        for record in report.records
        if record.completed
        and scenario.drift_onset_s <= record.arrival_s <= scenario.drift_end_s
    ]
    if not window:
        return 0.0
    ordered = sorted(window)
    index = min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))
    return ordered[index]


def _adaptation_lag_s(
    report: ServingReport, scenario: AdaptationScenario
) -> Optional[float]:
    """Seconds from drift onset to the first repartition (``None`` = never)."""
    if report.first_adaptation_s is None:
        return None
    return max(0.0, report.first_adaptation_s - scenario.drift_onset_s)


def run_adaptation_cell(
    scenario: AdaptationScenario, floor: float, mode: str
) -> ServingReport:
    """Serve one (aggressiveness, trigger-rule) cell on a fresh system."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    horizon = scenario.horizon_s if mode == "predictive" else 0.0
    system = scenario.build_system()
    return system.serve(
        scenario.build_workload(),
        trace=scenario.build_trace(floor),
        calibration=CalibrationConfig(
            alpha=scenario.alpha,
            trend_beta=scenario.trend_beta,
            horizon_s=horizon,
        ),
    )


def run_adaptation_comparison(
    scenario: Optional[AdaptationScenario] = None,
) -> List[AdaptationResult]:
    """Reactive vs predictive over every drift aggressiveness level."""
    scenario = scenario or AdaptationScenario()
    results: List[AdaptationResult] = []
    for label, floor in AGGRESSIVENESS:
        for mode in MODES:
            report = run_adaptation_cell(scenario, floor, mode)
            results.append(
                (
                    label,
                    mode,
                    report,
                    _adaptation_lag_s(report, scenario),
                    _mid_drift_p99_ms(report, scenario),
                )
            )
    return results


def format_adaptation_comparison(results: Sequence[AdaptationResult]) -> str:
    """Render the reactive-vs-predictive table ``repro scenario adaptation`` prints."""
    if not results:
        raise ValueError("no adaptation results to format")
    rows = []
    for label, mode, report, lag, p99 in results:
        churn = report.repartitions + report.forecast_mispredicts
        rows.append(
            [
                label,
                mode,
                "-" if lag is None else f"{lag:.2f}",
                f"{p99:.1f}",
                f"{report.latency_percentiles()['p99'] * 1e3:.1f}",
                report.proactive_repartitions,
                report.reactive_repartitions,
                report.forecast_mispredicts,
                churn,
            ]
        )
    return format_table(
        [
            "drift",
            "mode",
            "lag (s)",
            "mid-drift p99 (ms)",
            "p99 (ms)",
            "proactive",
            "reactive",
            "mispredicts",
            "churn",
        ],
        rows,
        title="Predictive adaptation: reactive vs forecast-driven repartitioning",
    )
