"""Table II — per-tier processing time of the synergistic inference after HPA.

The paper's Table II lists, for each of the five DNNs, how many milliseconds of
processing the device (Jetson Nano), edge (i7-8700) and cloud (RTX 2080 Ti)
node each contribute after HPA has split the model; the edge being the largest
of the three is what motivates VSM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.d3 import D3Config, D3System
from repro.core.placement import Tier
from repro.experiments.config import ExperimentConfig, PAPER_MODELS
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model
from repro.profiling.hardware import JETSON_NANO
from repro.runtime.cluster import Cluster


@dataclass
class TierTimeRow:
    """One row of Table II: the per-tier busy time for one model."""

    model: str
    device_ms: float
    edge_ms: float
    cloud_ms: float

    @property
    def bottleneck_tier(self) -> Tier:
        values = {Tier.DEVICE: self.device_ms, Tier.EDGE: self.edge_ms, Tier.CLOUD: self.cloud_ms}
        return max(values, key=values.get)


def run_tier_times(
    models: Optional[Sequence[str]] = None,
    network: str = "wifi",
    config: Optional[ExperimentConfig] = None,
) -> List[TierTimeRow]:
    """Run HPA on the Table II testbed (Jetson Nano device) for every model."""
    config = config or ExperimentConfig()
    models = list(models or PAPER_MODELS)
    rows: List[TierTimeRow] = []
    for model in models:
        graph = build_model(model, input_shape=config.input_shape)
        system = D3System(
            D3Config(
                network=network,
                num_edge_nodes=1,
                enable_vsm=False,
                use_regression=False,
                profiler_noise_std=config.profiler_noise_std,
                seed=config.seed,
            )
        )
        # Table II uses the Jetson Nano as the device node (section III-F).
        system.cluster = Cluster.build(
            network=system.network, num_edge_nodes=1, device_hardware=JETSON_NANO
        )
        result = system.run(graph)
        times = result.tier_times_ms()
        rows.append(
            TierTimeRow(
                model=model,
                device_ms=times[Tier.DEVICE],
                edge_ms=times[Tier.EDGE],
                cloud_ms=times[Tier.CLOUD],
            )
        )
    return rows


def format_tier_times(rows: Sequence[TierTimeRow]) -> str:
    """Render Table II."""
    return format_table(
        headers=["DNN", "device node (ms)", "edge node (ms)", "cloud node (ms)"],
        rows=[(r.model, r.device_ms, r.edge_ms, r.cloud_ms) for r in rows],
        title="Table II — synergistic inference time at the three nodes",
    )
