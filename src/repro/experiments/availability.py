"""Serving-through-failures scenario harness.

The serving harness of :mod:`repro.experiments.serving` assumes every machine
stays healthy for the whole workload.  This harness is the fault-tolerance
counterpart: the same request stream is driven through
:meth:`repro.core.d3.D3System.serve` under seeded chaos schedules of
increasing aggressiveness (edge mean-time-between-failures sweeping down),
once per partitioning method, and reports the quantities a *fault-tolerant*
serving system is judged on: availability (completed fraction), tail latency
among the survivors (p95), failover replans, and outright failures.

The comparison surfaces a trade-off the one-shot figures cannot show: methods
that concentrate work on one tier (``cloud_only``) ride out edge chaos
untouched, while methods that exploit edge parallelism (``hpa_vsm``) buy their
lower healthy-path latency with failover churn when the rack misbehaves.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.core.strategy import get_strategy
from repro.experiments.reporting import format_table
from repro.experiments.serving import ServingScenario
from repro.network.faults import FaultSchedule
from repro.runtime.serving import ServingReport

#: One harness row: method, edge MTBF (None = no faults), the serving report
#: (None when the method declines the scenario's models).
AvailabilityResult = Tuple[str, Optional[float], Optional[ServingReport]]

#: Default methods compared: D3's full pipeline, the classic offloading
#: baseline, and the tier that edge chaos cannot touch.
DEFAULT_METHODS = ("hpa_vsm", "neurosurgeon", "cloud_only")

#: Default edge mean-time-between-failures sweep (seconds); ``None`` is the
#: fault-free reference row.
DEFAULT_EDGE_MTBF_S = (None, 10.0, 4.0)


def default_availability_scenario() -> ServingScenario:
    """The canonical availability workload: a steady VGG-16 stream.

    VGG-16 requests are long enough (hundreds of milliseconds on the edge
    rack) that a crashing node reliably catches work in flight, which is the
    regime the failover machinery exists for.
    """
    return ServingScenario(
        models=("vgg16",),
        num_requests=60,
        rate_rps=6.0,
        num_edge_nodes=4,
    )


def run_availability_comparison(
    methods: Sequence[str] = DEFAULT_METHODS,
    mtbfs_s: Sequence[Optional[float]] = DEFAULT_EDGE_MTBF_S,
    scenario: Optional[ServingScenario] = None,
    seed: int = 7,
    mttr_s: float = 3.0,
    max_retries: int = 3,
) -> List[AvailabilityResult]:
    """Serve one workload per (method, fault rate) cell.

    Every cell gets a *fresh* system (so plan caches don't leak between
    methods) but the identical workload and — for a given MTBF — the
    identical chaos schedule, making the cells directly comparable.  Methods
    that decline the scenario's models report ``None``.
    """
    if not methods:
        raise ValueError("need at least one method")
    if not mtbfs_s:
        raise ValueError("need at least one fault rate")
    scenario = scenario or default_availability_scenario()
    results: List[AvailabilityResult] = []
    for method in methods:
        strategy = get_strategy(method)
        for mtbf in mtbfs_s:
            system = scenario.build_system()
            graphs = [system.graph_for(model) for model in scenario.models]
            if not all(strategy.supports(graph) for graph in graphs):
                results.append((method, mtbf, None))
                continue
            episode = replace(scenario, method=method)
            workload = episode.build_workload(system)
            faults = None
            if mtbf is not None:
                faults = FaultSchedule.chaos(
                    system.topology,
                    seed=seed,
                    horizon_s=max(workload.duration_s, 1.0),
                    tier_mtbf_s={"edge": mtbf},
                    mttr_s=mttr_s,
                )
            report = system.serve(
                workload,
                link_contention=episode.link_contention,
                method=episode.method,
                faults=faults,
                max_retries=max_retries,
            )
            results.append((method, mtbf, report))
    return results


def format_availability_comparison(results: Sequence[AvailabilityResult]) -> str:
    """Render the method × fault-rate table (availability + p95 tail)."""
    rows = []
    for method, mtbf, report in results:
        mtbf_label = "none" if mtbf is None else f"{mtbf:g}s"
        if report is None:
            rows.append((method, mtbf_label, None, None, None, None, None))
            continue
        pct = report.latency_percentiles()
        rows.append(
            (
                method,
                mtbf_label,
                report.availability * 100.0,
                pct["p95"] * 1e3,
                report.num_failed,
                report.num_retried,
                report.failover_replans,
            )
        )
    return format_table(
        headers=("method", "edge mtbf", "avail %", "p95 ms", "failed", "retried", "replans"),
        rows=rows,
        title="Serving through failures — method × fault-rate",
    )
