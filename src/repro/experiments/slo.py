"""SLO-aware serving harness: method × arrival-rate × scheduler.

The serving and availability harnesses judge deployments on latency and
survival; this one judges them on the metrics an *overloaded* serving system
is actually operated by — goodput (SLO-meeting completions per second) and
SLO attainment (fraction of offered requests served within their deadline) —
and shows what each scheduling lever buys:

* **FIFO** (the default engine) degrades ungracefully: past saturation every
  request queues behind every other and attainment collapses toward zero.
* **Dynamic micro-batching** raises the capacity of *compute-bound* methods
  (``device_only`` here: all work on one accelerator, the regime real
  inference servers batch for) — strictly higher throughput at high arrival
  rates, at the price of a bounded batching wait at low ones.  Methods
  bottlenecked on a wire (``hpa_vsm`` shipping camera frames over the
  device–edge uplink) gain nothing from compute batching, which the table
  makes visible rather than hiding.
* **EDF + admission control** cannot create capacity, but spends it on
  requests that can still make their deadline and sheds the rest at the
  door: under overload its attainment and goodput dominate FIFO's even
  though raw throughput is the same.

``repro serve --scheduler batch|edf --slo-ms N`` runs any single cell;
``repro scenario slo`` prints this table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategy import get_strategy
from repro.experiments.reporting import format_table
from repro.experiments.serving import ServingScenario, run_serving_scenario
from repro.runtime.serving import ServingReport

#: One harness row: (method, arrival rate, scheduler, report or None when the
#: method declines the scenario's models).
SloResult = Tuple[str, float, str, Optional[ServingReport]]

#: Default methods: the uplink-bound D3 pipeline and the compute-bound
#: on-device baseline — the two regimes the schedulers split on.
DEFAULT_METHODS: Tuple[str, ...] = ("hpa_vsm", "device_only")

#: Default arrival rates: comfortable, near saturation, deep overload.
DEFAULT_RATES_RPS: Tuple[float, ...] = (2.0, 8.0, 40.0)

#: Schedulers compared (registry names).
DEFAULT_SCHEDULERS: Tuple[str, ...] = ("fifo", "batch", "edf")


def default_slo_scenario() -> ServingScenario:
    """The canonical SLO workload: an AlexNet stream with a 500 ms deadline.

    500 ms comfortably covers both methods' idle latencies (so admission
    control sheds for *load*, not infeasibility) while being far below the
    multi-second queueing delays FIFO accumulates past saturation.
    """
    return ServingScenario(
        models=("alexnet",),
        num_requests=60,
        num_edge_nodes=4,
        slo_ms=500.0,
    )


def run_slo_comparison(
    methods: Sequence[str] = DEFAULT_METHODS,
    rates_rps: Sequence[float] = DEFAULT_RATES_RPS,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    scenario: Optional[ServingScenario] = None,
) -> List[SloResult]:
    """Serve one workload per (method, rate, scheduler) cell.

    One resident system per method (its plan cache is shared across rates and
    schedulers — the plans are identical, only dispatch differs), and for a
    given rate every scheduler sees the *same* workload, so cells in one rate
    block are directly comparable.  Methods that decline the scenario's
    models report ``None``.
    """
    if not methods:
        raise ValueError("need at least one method")
    if not rates_rps:
        raise ValueError("need at least one rate")
    if not schedulers:
        raise ValueError("need at least one scheduler")
    scenario = scenario or default_slo_scenario()
    results: List[SloResult] = []
    for method in methods:
        strategy = get_strategy(method)
        system = replace(scenario, method=method).build_system()
        graphs = [system.graph_for(model) for model in scenario.models]
        supported = all(strategy.supports(graph) for graph in graphs)
        for rate in rates_rps:
            for scheduler in schedulers:
                if not supported:
                    results.append((method, rate, scheduler, None))
                    continue
                episode = replace(
                    scenario, method=method, rate_rps=rate, scheduler=scheduler
                )
                results.append(
                    (method, rate, scheduler, run_serving_scenario(episode, system=system))
                )
    return results


def format_slo_comparison(results: Sequence[SloResult]) -> str:
    """Render the method × rate × scheduler goodput/attainment table."""
    rows = []
    for method, rate, scheduler, report in results:
        if report is None:
            rows.append((method, rate, scheduler, None, None, None, None, None, None))
            continue
        rows.append(
            (
                method,
                rate,
                scheduler,
                report.throughput_rps,
                report.goodput_rps,
                report.slo_attainment * 100.0,
                report.latency_percentiles()["p95"] * 1e3,
                report.mean_batch_occupancy,
                report.num_rejected,
            )
        )
    return format_table(
        headers=(
            "method",
            "rate",
            "sched",
            "req/s",
            "goodput",
            "attain %",
            "p95 ms",
            "occupancy",
            "shed",
        ),
        rows=rows,
        title="SLO-aware serving — method × arrival rate × scheduler",
    )


def occupancy_summary(results: Sequence[SloResult]) -> Dict[str, float]:
    """Mean batch occupancy per scheduler across all served cells (a quick
    check that the batching scheduler actually engaged)."""
    sums: Dict[str, List[float]] = {}
    for _, _, scheduler, report in results:
        if report is not None:
            sums.setdefault(scheduler, []).append(report.mean_batch_occupancy)
    return {
        scheduler: sum(values) / len(values) for scheduler, values in sums.items()
    }
