"""Fig. 13 — per-image data transmission to the cloud over the backbone.

Five sub-figures (one per model), each comparing cloud-only, DADS and D3 under
the four network conditions.  The metric is megabits shipped from the LAN to
the cloud per inference; lower is better because it relieves the Internet
backbone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runners import ScenarioRunner

FIG13_METHODS = ("cloud_only", "dads", "hpa_vsm")


@dataclass
class CommunicationCell:
    """Backbone traffic (megabits per image) for one (model, network) cell."""

    model: str
    network: str
    megabits_to_cloud: Dict[str, Optional[float]]

    def d3_fraction_of(self, method: str) -> Optional[float]:
        """D3's traffic as a fraction of ``method``'s traffic."""
        base = self.megabits_to_cloud.get(method)
        d3 = self.megabits_to_cloud.get("hpa_vsm")
        if base is None or d3 is None or base == 0:
            return None
        return d3 / base


def run_communication(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ScenarioRunner] = None,
) -> List[CommunicationCell]:
    """Compute the Fig. 13 traffic matrix."""
    config = config or ExperimentConfig()
    runner = runner or ScenarioRunner(config)
    cells: List[CommunicationCell] = []
    for model in config.models:
        for network in config.networks:
            scenario = runner.run(model, network)
            megabits = {}
            for method in FIG13_METHODS:
                value = scenario.bytes_to_cloud.get(method)
                megabits[method] = None if value is None else value * 8.0 / 1e6
            cells.append(
                CommunicationCell(model=model, network=network, megabits_to_cloud=megabits)
            )
    return cells


def format_communication(cells: Sequence[CommunicationCell]) -> str:
    """Render Fig. 13 as one table per model."""
    blocks = []
    models = []
    for cell in cells:
        if cell.model not in models:
            models.append(cell.model)
    for model in models:
        rows = [
            (
                c.network,
                *[c.megabits_to_cloud.get(m) for m in FIG13_METHODS],
                c.d3_fraction_of("cloud_only"),
            )
            for c in cells
            if c.model == model
        ]
        blocks.append(
            format_table(
                headers=["network", "cloud-only (Mb)", "DADS (Mb)", "D3 (Mb)", "D3 / cloud-only"],
                rows=rows,
                title=f"Fig. 13 — per-image transmission to the cloud ({model})",
            )
        )
    return "\n\n".join(blocks)
