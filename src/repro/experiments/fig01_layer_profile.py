"""Fig. 1 — layer-wise inference latency and per-layer output size.

The paper profiles VGG-16, ResNet-18 and Darknet-53 on a Raspberry Pi 4 with a
3 x 224 x 224 input and observes that (a) convolutional layers dominate the
latency and (b) early layers produce multi-megabyte activations.  Both
observations motivate partitioning; this harness reproduces the two bar series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model
from repro.profiling.cost_model import AnalyticCostModel
from repro.profiling.hardware import FIG1_DEVICE, HardwareSpec

#: Models shown in Fig. 1 of the paper.
FIG1_MODELS = ("vgg16", "resnet18", "darknet53")

#: Layer kinds plotted by the paper (compute layers only).
REPORTED_KINDS = ("conv", "maxpool", "avgpool", "globalavgpool", "linear")


@dataclass
class LayerProfileRow:
    """One bar of Fig. 1: a layer's latency and output size."""

    model: str
    layer: str
    kind: str
    latency_s: float
    output_mb: float


def run_layer_profile(
    models: Sequence[str] = FIG1_MODELS,
    hardware: HardwareSpec = FIG1_DEVICE,
    config: Optional[ExperimentConfig] = None,
) -> List[LayerProfileRow]:
    """Compute the Fig. 1 series for the requested models."""
    config = config or ExperimentConfig()
    rows: List[LayerProfileRow] = []
    for model in models:
        graph = build_model(model, input_shape=config.input_shape)
        cost_model = AnalyticCostModel(hardware)
        for vertex in graph:
            if vertex.kind not in REPORTED_KINDS:
                continue
            rows.append(
                LayerProfileRow(
                    model=model,
                    layer=vertex.name,
                    kind=vertex.kind,
                    latency_s=cost_model.layer_latency(graph, vertex),
                    output_mb=vertex.output_bytes / 1e6,
                )
            )
    return rows


def summarise(rows: Sequence[LayerProfileRow]) -> Dict[str, Dict[str, float]]:
    """Aggregate checks used by the tests: totals and conv share per model."""
    summary: Dict[str, Dict[str, float]] = {}
    for row in rows:
        entry = summary.setdefault(
            row.model, {"total_latency_s": 0.0, "conv_latency_s": 0.0, "max_output_mb": 0.0}
        )
        entry["total_latency_s"] += row.latency_s
        if row.kind == "conv":
            entry["conv_latency_s"] += row.latency_s
        entry["max_output_mb"] = max(entry["max_output_mb"], row.output_mb)
    return summary


def format_layer_profile(rows: Sequence[LayerProfileRow]) -> str:
    """Render the Fig. 1 table."""
    return format_table(
        headers=["model", "layer", "kind", "latency (ms)", "output (MB)"],
        rows=[(r.model, r.layer, r.kind, r.latency_s * 1e3, r.output_mb) for r in rows],
        title="Fig. 1 — per-layer latency and output size (device-class hardware)",
    )
