"""Multi-objective frontier scenario: latency vs energy vs dollar cost.

Every other harness judges a placement on one axis — end-to-end latency.
This one sweeps the :class:`~repro.core.economics.ObjectiveWeights` vector
across labeled operating points (pure latency, pure energy, pure dollars,
and a balanced blend) and serves the identical request stream once per
(weights, method) cell with economics metering enabled, so the table reads
as a discrete Pareto frontier: what each planner gives up on the other two
axes when told to optimise one.

The weights are exchange rates, not normalised shares — a latency second,
a joule and a dollar live on very different scales (an AlexNet inference is
~10⁻¹ s, ~1 J, ~10⁻⁶ $), so the ``balanced`` vector scales each axis into
the same currency rather than using (1, 1, 1).

Three caveats the table's readers need:

* The planner's energy axis is *marginal* joules per inference (compute +
  device radio).  The metered ``J/request`` column also amortises idle draw
  over the run's makespan, so a slower energy-optimal plan can meter higher
  than it planned — the frontier is honest about that gap.
* Dollar cost is billed per powered-on node-second (cloud VMs bill while
  idle), so ``device_only`` still pays for the provisioned backbone.
* Single-tier baselines have no placement freedom: their rows are flat
  across weight vectors and serve as the frontier's anchors.

``repro scenario pareto`` prints the table.  The stream is a deterministic
metronome (no Poisson sampling), so the table is bit-identical across seeds
— pinned by ``tests/experiments/test_tables.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.d3 import D3Config, D3System
from repro.core.strategy import get_strategy
from repro.experiments.reporting import format_table
from repro.runtime.serving import ServingReport
from repro.runtime.workload import Workload

#: One frontier cell: (weights label, weights vector, method, report).
#: ``report`` is ``None`` when the method declines the scenario's graph.
ParetoResult = Tuple[str, Tuple[float, float, float], str, Optional[ServingReport]]

#: Labeled (w_latency, w_energy, w_cost) sweep.  The single-axis vectors
#: recover each pure optimum; ``balanced`` prices the axes into a common
#: currency (1 s ≡ 10 J ≡ 0.5 m$) so no term dominates by units alone.
WEIGHT_VECTORS: Tuple[Tuple[str, Tuple[float, float, float]], ...] = (
    ("latency", (1.0, 0.0, 0.0)),
    ("energy", (0.0, 1.0, 0.0)),
    ("cost", (0.0, 0.0, 1.0)),
    ("balanced", (1.0, 0.1, 2000.0)),
)

#: Methods swept per weight vector: both adaptive planners plus the two
#: single-tier anchors of the frontier.
METHODS: Tuple[str, ...] = ("hpa_vsm", "neurosurgeon", "cloud_only", "device_only")


@dataclass(frozen=True)
class ParetoScenario:
    """One frontier experiment: a metronome stream over the canonical testbed.

    AlexNet over WiFi is the regime where the three objectives genuinely
    disagree: the latency optimum splits across tiers, the energy optimum
    pushes FLOPs off the Raspberry-Pi-class device (worst J/FLOP) onto the
    cloud (best), and the dollar optimum pulls work back onto the free
    device radio-side — so the weight sweep moves the split.
    """

    model: str = "alexnet"
    network: str = "wifi"
    num_edge_nodes: int = 2
    num_requests: int = 16
    #: Deterministic inter-arrival gap (a metronome, not Poisson): the table
    #: must be bit-identical across seeds, so nothing here samples.
    interval_s: float = 0.25
    #: Only consumed by ``D3Config`` bookkeeping — with the profiler noise
    #: pinned to zero and a deterministic workload it cannot move a number,
    #: which is exactly what the cross-seed determinism test asserts.
    seed: int = 0
    methods: Tuple[str, ...] = METHODS
    weight_vectors: Tuple[Tuple[str, Tuple[float, float, float]], ...] = WEIGHT_VECTORS

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not self.methods:
            raise ValueError("need at least one method")
        if not self.weight_vectors:
            raise ValueError("need at least one weight vector")

    # ------------------------------------------------------------------ #
    def build_system(self, weights: Tuple[float, float, float]) -> D3System:
        return D3System(
            D3Config(
                network=self.network,
                num_edge_nodes=self.num_edge_nodes,
                use_regression=False,
                profiler_noise_std=0.0,
                seed=self.seed,
                objective_weights=weights,
            )
        )

    def build_workload(self) -> Workload:
        return Workload.constant_rate(
            self.model,
            num_requests=self.num_requests,
            interval_s=self.interval_s,
        )


# --------------------------------------------------------------------------- #
def run_pareto_cell(
    scenario: ParetoScenario, weights: Tuple[float, float, float], method: str
) -> Optional[ServingReport]:
    """Serve one (weights, method) cell on a fresh system, economics metered.

    Returns ``None`` when the method's strategy declines the model graph,
    mirroring :func:`repro.experiments.serving.run_method_comparison`.
    """
    system = scenario.build_system(weights)
    strategy = get_strategy(method)
    if not strategy.supports(system.graph_for(scenario.model)):
        return None
    return system.serve(
        scenario.build_workload(),
        method=method,
        economics=True,
    )


def run_pareto_comparison(
    scenario: Optional[ParetoScenario] = None,
) -> List[ParetoResult]:
    """Sweep every weight vector over every method."""
    scenario = scenario or ParetoScenario()
    results: List[ParetoResult] = []
    for label, weights in scenario.weight_vectors:
        for method in scenario.methods:
            report = run_pareto_cell(scenario, weights, method)
            results.append((label, weights, method, report))
    return results


def format_pareto_comparison(results: Sequence[ParetoResult]) -> str:
    """Render the frontier table ``repro scenario pareto`` prints."""
    if not results:
        raise ValueError("no pareto results to format")
    rows = []
    for label, weights, method, report in results:
        vector = "({:g}, {:g}, {:g})".format(*weights)
        if report is None:
            rows.append([label, vector, method, None, None, None, None])
            continue
        pct = report.latency_percentiles()
        rows.append(
            [
                label,
                vector,
                method,
                f"{pct['p50'] * 1e3:.1f}",
                f"{pct['p95'] * 1e3:.1f}",
                f"{report.energy_per_request_j:.3f}",
                f"{report.dollars_per_1k_requests:.4f}",
            ]
        )
    return format_table(
        [
            "objective",
            "(w_lat, w_J, w_$)",
            "method",
            "p50 ms",
            "p95 ms",
            "J/request",
            "$/1k req",
        ],
        rows,
        title="Multi-objective frontier: latency / energy / dollar cost",
    )
