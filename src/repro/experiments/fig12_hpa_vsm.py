"""Fig. 12 — latency speedup when both HPA and VSM are applied.

The full D3 system (HPA + VSM over four edge nodes, every node connected to the
cloud via Wi-Fi) is compared against device-only, edge-only, cloud-only,
Neurosurgeon and DADS.  The paper reports that the processing time of the
edge-resident convolutional layers does not shrink by the full 4x because the
fused tile stacks overlap — the harness exposes that redundancy factor too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.d3 import D3Config, D3System
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runners import ScenarioRunner

FIG12_METHODS = ("device_only", "edge_only", "cloud_only", "neurosurgeon", "dads", "hpa", "hpa_vsm")


@dataclass
class VsmSpeedupCell:
    """Fig. 12 data for one model."""

    model: str
    speedups_over_device: Dict[str, Optional[float]]
    vsm_redundancy_factor: Optional[float]

    @property
    def hpa_vsm_vs_hpa(self) -> Optional[float]:
        hpa = self.speedups_over_device.get("hpa")
        vsm = self.speedups_over_device.get("hpa_vsm")
        if hpa is None or vsm is None or hpa == 0:
            return None
        return vsm / hpa


def run_hpa_vsm(
    network: str = "wifi",
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ScenarioRunner] = None,
) -> List[VsmSpeedupCell]:
    """Compute the Fig. 12 comparison for every model under Wi-Fi."""
    config = config or ExperimentConfig()
    runner = runner or ScenarioRunner(config)
    cells: List[VsmSpeedupCell] = []
    for model in config.models:
        scenario = runner.run(model, network)
        speedups = {m: scenario.speedup_over("device_only", m) for m in FIG12_METHODS}

        # Recover the tiling redundancy of the D3 plan for this model.
        graph = runner.graph(model)
        system = D3System(
            D3Config(
                network=network,
                num_edge_nodes=config.num_edge_nodes,
                tile_grid=config.tile_grid,
                use_regression=False,
                profiler_noise_std=config.profiler_noise_std,
                seed=config.seed,
            )
        )
        result = system.run(graph)
        redundancy = None
        if result.vsm_plan is not None and result.vsm_plan.runs:
            factors = [run.redundancy_factor() for run in result.vsm_plan.runs]
            redundancy = sum(factors) / len(factors)
        cells.append(
            VsmSpeedupCell(
                model=model,
                speedups_over_device=speedups,
                vsm_redundancy_factor=redundancy,
            )
        )
    return cells


def format_hpa_vsm(cells: Sequence[VsmSpeedupCell]) -> str:
    """Render Fig. 12."""
    rows = [
        (
            c.model,
            *[c.speedups_over_device.get(m) for m in FIG12_METHODS],
            c.hpa_vsm_vs_hpa,
            c.vsm_redundancy_factor,
        )
        for c in cells
    ]
    return format_table(
        headers=["model", *FIG12_METHODS, "vsm gain", "tile redundancy"],
        rows=rows,
        title="Fig. 12 — speedup over device-only with HPA+VSM (Wi-Fi, 4 edge nodes)",
    )
