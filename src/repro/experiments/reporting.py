"""Plain-text table rendering and summary statistics for the harnesses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


# --------------------------------------------------------------------------- #
# Percentile math (used by the serving reports)
# --------------------------------------------------------------------------- #
#: Percentile estimators understood by :func:`percentile`.
PERCENTILE_INTERPOLATIONS = ("linear", "nearest")


def percentile(values: Sequence[float], q: float, interpolation: str = "linear") -> float:
    """The ``q``-th percentile of ``values``.

    ``interpolation="linear"`` (the default, and the behaviour every golden
    trace and paper table is pinned to) matches numpy's default
    (``method="linear"``): the percentile rank is mapped onto the fractional
    index ``(n - 1) * q / 100`` of the sorted sample and neighbouring order
    statistics are interpolated.  ``interpolation="nearest"`` is the classic
    nearest-rank definition — the smallest sample value at or above the
    ``ceil(q / 100 * n)``-th order statistic — which always returns an
    actually observed value (some SLO auditors insist on that).  Implemented
    here without numpy so the reporting layer stays dependency-free and the
    arithmetic is easy to audit in tests (a numpy cross-check test pins the
    linear branch).
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    return _percentile_sorted(sorted(values), q, interpolation)


def _percentile_sorted(ordered: Sequence[float], q: float, interpolation: str) -> float:
    """:func:`percentile` over an already-sorted non-empty sample.

    Split out so multi-quantile summaries sort once, not once per quantile —
    the arithmetic is byte-for-byte the historical single-shot path.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if interpolation not in PERCENTILE_INTERPOLATIONS:
        raise ValueError(
            f"unknown interpolation {interpolation!r}; "
            f"expected one of {PERCENTILE_INTERPOLATIONS}"
        )
    if len(ordered) == 1:
        return float(ordered[0])
    if interpolation == "nearest":
        if q == 0.0:
            return float(ordered[0])
        rank = math.ceil(q / 100.0 * len(ordered))
        return float(ordered[rank - 1])
    rank = (len(ordered) - 1) * q / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    fraction = rank - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


def latency_percentiles(
    values: Sequence[float],
    quantiles: Sequence[float] = (50.0, 95.0, 99.0),
    interpolation: str = "linear",
) -> Dict[str, float]:
    """Named percentile summary (``{"p50": ..., "p95": ..., "p99": ...}``)."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    ordered = sorted(values)
    return {
        f"p{q:g}": _percentile_sorted(ordered, q, interpolation) for q in quantiles
    }


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input, like :func:`percentile`)."""
    if not values:
        raise ValueError("cannot take the mean of an empty sequence")
    return float(sum(values) / len(values))


def _format_cell(value, precision: int) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a simple aligned text table (the benches print these)."""
    rendered_rows: List[List[str]] = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_speedup(value: Optional[float]) -> str:
    """Render a speedup factor like the paper ("3.4x")."""
    if value is None:
        return "n/a"
    return f"{value:.2f}x"
