"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value, precision: int) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a simple aligned text table (the benches print these)."""
    rendered_rows: List[List[str]] = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_speedup(value: Optional[float]) -> str:
    """Render a speedup factor like the paper ("3.4x")."""
    if value is None:
        return "n/a"
    return f"{value:.2f}x"
