"""Fig. 11 — Inception-v4 latency speedup vs LAN-to-cloud bandwidth.

The backbone bandwidth between the LAN and the cloud is swept from 10 to 100
Mbps; the paper observes that cloud-only improves rapidly with bandwidth and
that HPA offloads more layers to the cloud as the backbone gets faster, staying
at or above every baseline throughout the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.dads import DadsPartitioner
from repro.baselines.single_tier import SingleTierBaseline
from repro.core.d3 import D3Config, D3System
from repro.core.placement import PlanEvaluator, Tier
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.models.zoo import build_model
from repro.network.conditions import get_condition
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster

#: Backbone rates swept by the paper (Mbps).
DEFAULT_BANDWIDTHS = tuple(range(10, 101, 10))


@dataclass
class BandwidthSweepPoint:
    """All methods evaluated at one backbone bandwidth."""

    bandwidth_mbps: float
    latency_s: Dict[str, float]
    hpa_cloud_vertices: int
    hpa_bytes_to_cloud: int

    def speedup_over_device(self, method: str) -> Optional[float]:
        base = self.latency_s.get("device_only")
        value = self.latency_s.get(method)
        if base is None or value is None or value == 0:
            return None
        return base / value


def run_bandwidth_sweep(
    model: str = "inception_v4",
    bandwidths_mbps: Sequence[float] = DEFAULT_BANDWIDTHS,
    config: Optional[ExperimentConfig] = None,
) -> List[BandwidthSweepPoint]:
    """Sweep the LAN-to-cloud bandwidth and evaluate every method."""
    config = config or ExperimentConfig()
    graph = build_model(model, input_shape=config.input_shape)
    cluster = Cluster.build(network="wifi", num_edge_nodes=1)
    profiler = Profiler(noise_std=config.profiler_noise_std, seed=config.seed)
    profile = profiler.build_profile_from_measurements(graph, cluster.tier_hardware(), repeats=1)

    points: List[BandwidthSweepPoint] = []
    for bandwidth in bandwidths_mbps:
        condition = get_condition("wifi").with_backbone_mbps(bandwidth)
        latency: Dict[str, float] = {}
        single = SingleTierBaseline(profile, condition)
        latency["device_only"] = single.latency_s(graph, Tier.DEVICE)
        latency["edge_only"] = single.latency_s(graph, Tier.EDGE)
        latency["cloud_only"] = single.latency_s(graph, Tier.CLOUD)
        latency["dads"] = DadsPartitioner(profile, condition).partition(graph).latency_s

        system = D3System(
            D3Config(
                network=condition,
                num_edge_nodes=1,
                enable_vsm=False,
                use_regression=False,
                profiler_noise_std=config.profiler_noise_std,
                seed=config.seed,
            )
        )
        result = system.run(graph)
        latency["hpa"] = result.end_to_end_latency_s
        points.append(
            BandwidthSweepPoint(
                bandwidth_mbps=bandwidth,
                latency_s=latency,
                hpa_cloud_vertices=result.placement.tier_counts()[Tier.CLOUD],
                hpa_bytes_to_cloud=result.bytes_to_cloud,
            )
        )
    return points


def format_bandwidth_sweep(points: Sequence[BandwidthSweepPoint]) -> str:
    """Render the Fig. 11 series as a table."""
    methods = ("device_only", "edge_only", "cloud_only", "dads", "hpa")
    rows = [
        (
            p.bandwidth_mbps,
            *[p.speedup_over_device(m) for m in methods],
            p.hpa_cloud_vertices,
            p.hpa_bytes_to_cloud * 8 / 1e6,
        )
        for p in points
    ]
    return format_table(
        headers=["Mbps", *methods, "hpa cloud layers", "hpa to-cloud (Mb)"],
        rows=rows,
        title="Fig. 11 — Inception-v4 speedup vs LAN-to-cloud bandwidth",
    )
