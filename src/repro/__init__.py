"""D3: Dynamic DNN Decomposition for Lossless Synergistic Inference.

Reproduction of the ICDCS 2021 paper.  The public API re-exports the most
commonly used entry points; see the subpackages for the full surface:

* :mod:`repro.graph` — DNN DAG substrate
* :mod:`repro.models` — AlexNet / VGG-16 / ResNet-18 / Darknet-53 / Inception-v4
* :mod:`repro.profiling` — hardware specs, cost model, latency regression, profiler
* :mod:`repro.network` — inter-tier links and the paper's network conditions
* :mod:`repro.tensors` — functional numpy inference (losslessness verification)
* :mod:`repro.core` — HPA, VSM, dynamic re-partitioning and the D3 facade
* :mod:`repro.runtime` — simulated device/edge/cloud cluster and execution engine
* :mod:`repro.baselines` — Neurosurgeon, DADS, single-tier, DeepThings-style FTP
* :mod:`repro.experiments` — one harness per paper table/figure
"""

from repro.version import __version__

__all__ = ["__version__"]
