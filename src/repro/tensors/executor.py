"""Execute a :class:`repro.graph.dag.DnnGraph` on concrete numpy arrays.

Weights are irrelevant to partitioning, so graphs carry only layer
configurations; when actual activations are needed (losslessness verification,
the end-to-end examples) the :class:`WeightStore` materialises deterministic
pseudo-random weights per layer, keyed by the layer name, so that repeated runs
and distributed runs (device / edge / cloud partitions executed separately)
see exactly the same parameters.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.graph.dag import DnnGraph, Vertex
from repro.graph.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    InputLayer,
    LeakyReLU,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.tensors import ops


class WeightStore:
    """Deterministic per-layer weight provider.

    Weights for layer ``name`` are drawn from a generator seeded by
    ``(seed, hash(name))`` so that any process — or any simulated node holding
    only a partition of the graph — reconstructs identical parameters.
    """

    def __init__(self, seed: int = 0, scale: float = 0.1) -> None:
        self.seed = seed
        self.scale = scale
        self._cache: Dict[str, Dict[str, np.ndarray]] = {}

    def _rng(self, name: str) -> np.random.Generator:
        name_seed = abs(hash(name)) % (2**31)
        return np.random.default_rng((self.seed, name_seed))

    def conv_weights(self, name: str, spec: Conv2d, in_channels: int) -> Dict[str, np.ndarray]:
        """Filters and bias for a convolution layer."""
        if name not in self._cache:
            rng = self._rng(name)
            kernel_h, kernel_w = spec.kernel
            weight = rng.standard_normal(
                (spec.out_channels, in_channels // spec.groups, kernel_h, kernel_w)
            ) * self.scale
            bias = rng.standard_normal(spec.out_channels) * self.scale if spec.bias else None
            self._cache[name] = {"weight": weight, "bias": bias}
        return self._cache[name]

    def linear_weights(self, name: str, spec: Linear, in_features: int) -> Dict[str, np.ndarray]:
        """Weight matrix and bias for a fully connected layer."""
        if name not in self._cache:
            rng = self._rng(name)
            weight = rng.standard_normal((spec.out_features, in_features)) * self.scale
            bias = rng.standard_normal(spec.out_features) * self.scale if spec.bias else None
            self._cache[name] = {"weight": weight, "bias": bias}
        return self._cache[name]

    def batchnorm_weights(self, name: str, channels: int) -> Dict[str, np.ndarray]:
        """Scale/shift/statistics for a batch-norm layer."""
        if name not in self._cache:
            rng = self._rng(name)
            self._cache[name] = {
                "gamma": 1.0 + 0.1 * rng.standard_normal(channels),
                "beta": 0.1 * rng.standard_normal(channels),
                "mean": 0.1 * rng.standard_normal(channels),
                "var": 1.0 + 0.1 * np.abs(rng.standard_normal(channels)),
            }
        return self._cache[name]


class GraphExecutor:
    """Run a DNN graph (or a subset of it) on real arrays.

    Parameters
    ----------
    graph:
        The annotated DNN DAG.
    weights:
        Weight provider; pass the same store to every partition executor to
        guarantee identical parameters across simulated nodes.
    """

    def __init__(self, graph: DnnGraph, weights: Optional[WeightStore] = None) -> None:
        self.graph = graph
        self.weights = weights or WeightStore()

    # ------------------------------------------------------------------ #
    def run(self, input_array: np.ndarray) -> Dict[int, np.ndarray]:
        """Execute the whole graph; returns every vertex's output by index."""
        expected = self.graph.input_shape
        if tuple(input_array.shape) != tuple(expected):
            raise ValueError(f"input shape {input_array.shape} does not match graph input {expected}")
        activations: Dict[int, np.ndarray] = {}
        for vertex in self.graph.topological_order():
            inputs = [activations[p.index] for p in self.graph.predecessors(vertex.index)]
            activations[vertex.index] = self.run_vertex(vertex, inputs, input_array)
        return activations

    def output(self, input_array: np.ndarray) -> np.ndarray:
        """Execute the graph and return the final output vertex's activation."""
        activations = self.run(input_array)
        outputs = self.graph.output_vertices()
        return activations[outputs[-1].index]

    def run_subgraph(
        self,
        vertex_indices: Sequence[int],
        boundary_inputs: Dict[int, np.ndarray],
    ) -> Dict[int, np.ndarray]:
        """Execute only ``vertex_indices``, given activations for their inputs.

        ``boundary_inputs`` must contain the activation of every vertex outside
        the subset that feeds a vertex inside it.  This is how the simulated
        device/edge/cloud nodes each run their own partition.
        """
        subset = set(vertex_indices)
        activations: Dict[int, np.ndarray] = dict(boundary_inputs)
        for vertex in self.graph.topological_order():
            if vertex.index not in subset:
                continue
            if vertex.index in boundary_inputs:
                # Already supplied by the caller (e.g. the virtual input).
                continue
            inputs = []
            for pred in self.graph.predecessors(vertex.index):
                if pred.index not in activations:
                    raise KeyError(
                        f"missing activation for predecessor {pred.name!r} of {vertex.name!r}"
                    )
                inputs.append(activations[pred.index])
            activations[vertex.index] = self.run_vertex(vertex, inputs, None)
        return {i: activations[i] for i in subset}

    # ------------------------------------------------------------------ #
    def run_vertex(
        self,
        vertex: Vertex,
        inputs: Sequence[np.ndarray],
        graph_input: Optional[np.ndarray],
    ) -> np.ndarray:
        """Execute one vertex given its input activations."""
        spec = vertex.spec
        if isinstance(spec, InputLayer):
            if graph_input is None:
                raise ValueError("the input vertex needs the graph input array")
            return np.asarray(graph_input, dtype=np.float64)
        if isinstance(spec, Conv2d):
            params = self.weights.conv_weights(vertex.name, spec, inputs[0].shape[0])
            return ops.conv2d(inputs[0], params["weight"], params["bias"], spec.stride, spec.padding)
        if isinstance(spec, MaxPool2d):
            return ops.max_pool2d(inputs[0], spec.kernel, spec.stride, spec.padding)
        if isinstance(spec, AvgPool2d):
            return ops.avg_pool2d(inputs[0], spec.kernel, spec.stride, spec.padding)
        if isinstance(spec, GlobalAvgPool2d):
            return ops.global_avg_pool2d(inputs[0])
        if isinstance(spec, Linear):
            params = self.weights.linear_weights(vertex.name, spec, inputs[0].shape[0])
            return ops.linear(inputs[0], params["weight"], params["bias"])
        if isinstance(spec, ReLU):
            return ops.relu(inputs[0])
        if isinstance(spec, LeakyReLU):
            return ops.leaky_relu(inputs[0], spec.negative_slope)
        if isinstance(spec, BatchNorm2d):
            params = self.weights.batchnorm_weights(vertex.name, inputs[0].shape[0])
            return ops.batch_norm(
                inputs[0], params["gamma"], params["beta"], params["mean"], params["var"]
            )
        if isinstance(spec, LocalResponseNorm):
            return ops.local_response_norm(inputs[0], spec.size)
        if isinstance(spec, Dropout):
            return inputs[0]
        if isinstance(spec, Flatten):
            return ops.flatten(inputs[0])
        if isinstance(spec, Softmax):
            return ops.softmax(inputs[0])
        if isinstance(spec, Concat):
            return ops.concat_channels(*inputs)
        if isinstance(spec, Add):
            return ops.add(*inputs)
        raise TypeError(f"no numpy implementation for layer kind {vertex.kind!r}")
