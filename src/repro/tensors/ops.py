"""Reference numpy implementations of the DNN operators.

These implementations favour clarity and exactness over speed: they are used to
*verify* algorithmic properties (in particular that VSM's fused-tile execution
is bit-identical to whole-model execution), not to run production inference.
All functions operate on channels-first arrays without a batch dimension:
feature maps are ``(C, H, W)`` and vectors are ``(F,)``.

Padding semantics match the conventions of mainstream frameworks:

* convolutions zero-pad,
* max pooling pads with ``-inf`` (padded entries never win the max),
* average pooling zero-pads and divides by the full kernel area
  (``count_include_pad=True``), which keeps the operator linear and therefore
  exactly tileable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

Pair = Tuple[int, int]


def _check_feature_map(x: np.ndarray, op: str) -> None:
    if x.ndim != 3:
        raise ValueError(f"{op} expects a (C, H, W) array, got shape {x.shape}")


def pad2d(x: np.ndarray, padding: Pair, value: float = 0.0) -> np.ndarray:
    """Pad the two spatial dimensions of a ``(C, H, W)`` array symmetrically."""
    _check_feature_map(x, "pad2d")
    pad_h, pad_w = padding
    if pad_h < 0 or pad_w < 0:
        raise ValueError("padding cannot be negative")
    if pad_h == 0 and pad_w == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
        constant_values=value,
    )


def pad2d_asymmetric(
    x: np.ndarray,
    top: int,
    bottom: int,
    left: int,
    right: int,
    value: float = 0.0,
) -> np.ndarray:
    """Pad the spatial dimensions with independent amounts per side.

    Needed by the tiled executor: an interior tile already carries its halo
    rows/columns and must only be padded on the sides that touch the original
    input border.
    """
    _check_feature_map(x, "pad2d_asymmetric")
    if min(top, bottom, left, right) < 0:
        raise ValueError("padding cannot be negative")
    if top == bottom == left == right == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (top, bottom), (left, right)),
        mode="constant",
        constant_values=value,
    )


def _windows(x: np.ndarray, kernel: Pair, stride: Pair) -> np.ndarray:
    """Return strided sliding windows of shape ``(C, OH, OW, KH, KW)``."""
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    channels, height, width = x.shape
    if height < kernel_h or width < kernel_w:
        raise ValueError(
            f"window {kernel} does not fit input of spatial size {(height, width)}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel_h, kernel_w), axis=(1, 2))
    return windows[:, ::stride_h, ::stride_w, :, :]


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: Pair = (1, 1),
    padding: Pair = (0, 0),
) -> np.ndarray:
    """2-D convolution (cross-correlation, as in every DL framework).

    Parameters
    ----------
    x:
        Input feature map ``(C_in, H, W)``.
    weight:
        Filters ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias ``(C_out,)``.
    """
    _check_feature_map(x, "conv2d")
    if weight.ndim != 4:
        raise ValueError(f"conv2d weight must be (O, C, KH, KW), got {weight.shape}")
    if weight.shape[1] != x.shape[0]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[0]} channels, weight expects {weight.shape[1]}"
        )
    padded = pad2d(x, padding)
    kernel = (weight.shape[2], weight.shape[3])
    windows = _windows(padded, kernel, stride)  # (C, OH, OW, KH, KW)
    # optimize=False keeps a fixed summation order regardless of operand
    # shapes, which is what makes tiled execution *bit-identical* to full
    # execution (BLAS-backed contractions reorder the reduction per shape).
    out = np.einsum("cxykl,ockl->oxy", windows, weight, optimize=False)
    if bias is not None:
        out = out + bias[:, None, None]
    return out


def max_pool2d(
    x: np.ndarray,
    kernel: Pair,
    stride: Pair | None = None,
    padding: Pair = (0, 0),
) -> np.ndarray:
    """Max pooling with ``-inf`` padding."""
    _check_feature_map(x, "max_pool2d")
    stride = stride or kernel
    padded = pad2d(x, padding, value=-np.inf)
    windows = _windows(padded, kernel, stride)
    return windows.max(axis=(3, 4))


def avg_pool2d(
    x: np.ndarray,
    kernel: Pair,
    stride: Pair | None = None,
    padding: Pair = (0, 0),
) -> np.ndarray:
    """Average pooling with zero padding, dividing by the full kernel area."""
    _check_feature_map(x, "avg_pool2d")
    stride = stride or kernel
    padded = pad2d(x, padding, value=0.0)
    windows = _windows(padded, kernel, stride)
    return windows.sum(axis=(3, 4)) / float(kernel[0] * kernel[1])


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Global average pooling producing a ``(C,)`` vector."""
    _check_feature_map(x, "global_avg_pool2d")
    return x.mean(axis=(1, 2))


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully connected layer: ``weight @ x + bias`` with weight ``(O, I)``."""
    if x.ndim != 1:
        raise ValueError(f"linear expects a flat vector, got shape {x.shape}")
    if weight.ndim != 2 or weight.shape[1] != x.shape[0]:
        raise ValueError(f"weight {weight.shape} incompatible with input {x.shape}")
    out = weight @ x
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.1) -> np.ndarray:
    """Leaky rectified linear unit."""
    return np.where(x >= 0, x, x * negative_slope)


def batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-time batch normalisation over the channel dimension."""
    _check_feature_map(x, "batch_norm")
    scale = gamma / np.sqrt(running_var + eps)
    shift = beta - running_mean * scale
    return x * scale[:, None, None] + shift[:, None, None]


def local_response_norm(
    x: np.ndarray,
    size: int = 5,
    alpha: float = 1e-4,
    beta: float = 0.75,
    k: float = 1.0,
) -> np.ndarray:
    """AlexNet-style local response normalisation across channels."""
    _check_feature_map(x, "local_response_norm")
    channels = x.shape[0]
    squared = x**2
    denom = np.empty_like(x)
    half = size // 2
    for c in range(channels):
        lo, hi = max(0, c - half), min(channels, c + half + 1)
        denom[c] = squared[lo:hi].sum(axis=0)
    return x / (k + (alpha / size) * denom) ** beta


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over a flat vector."""
    if x.ndim != 1:
        raise ValueError(f"softmax expects a flat vector, got shape {x.shape}")
    shifted = x - x.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def add(*tensors: np.ndarray) -> np.ndarray:
    """Element-wise addition of residual branches."""
    if len(tensors) < 2:
        raise ValueError("add expects at least two tensors")
    result = tensors[0].copy()
    for tensor in tensors[1:]:
        if tensor.shape != result.shape:
            raise ValueError(f"shape mismatch in add: {result.shape} vs {tensor.shape}")
        result = result + tensor
    return result


def concat_channels(*tensors: np.ndarray) -> np.ndarray:
    """Concatenate ``(C, H, W)`` feature maps along the channel dimension."""
    if len(tensors) < 2:
        raise ValueError("concat expects at least two tensors")
    for tensor in tensors:
        _check_feature_map(tensor, "concat_channels")
    spatial = tensors[0].shape[1:]
    for tensor in tensors[1:]:
        if tensor.shape[1:] != spatial:
            raise ValueError("concat inputs must share spatial dimensions")
    return np.concatenate(tensors, axis=0)


def flatten(x: np.ndarray) -> np.ndarray:
    """Flatten any tensor into a vector (C-order, matching the graph's Flatten)."""
    return x.reshape(-1)
