"""Execute VSM fused-tile plans on real numpy arrays.

This module is the "lossless" proof of the reproduction: it executes each
fused tile stack independently — exactly what the parallel edge nodes do in the
paper — and merges the per-tile outputs.  The result must be *identical* (up to
floating point associativity, which these reference kernels avoid by using the
same summation order) to running the unpartitioned run; the property-based
tests in ``tests/core/test_vsm_lossless.py`` assert elementwise equality.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.vsm import FusedRunPlan, FusedTileStack, TileRegion
from repro.graph.layers import AvgPool2d, Conv2d, MaxPool2d
from repro.tensors import ops
from repro.tensors.executor import GraphExecutor


def extract_tile(feature_map: np.ndarray, region: TileRegion) -> np.ndarray:
    """Slice the unpadded tile region out of a ``(C, H, W)`` feature map."""
    if feature_map.ndim != 3:
        raise ValueError(f"expected a (C, H, W) feature map, got shape {feature_map.shape}")
    return feature_map[:, region.row_start : region.row_end, region.col_start : region.col_end]


def merge_tiles(
    tiles: Sequence[Tuple[TileRegion, np.ndarray]],
    channels: int,
    height: int,
    width: int,
) -> np.ndarray:
    """Assemble per-tile outputs into the full output feature map.

    The output tiles are non-overlapping by construction
    (:meth:`repro.core.vsm.FusedRunPlan.validate_coverage`); overlapping or
    out-of-bounds tiles raise ``ValueError`` to surface geometry bugs early.
    """
    output = np.full((channels, height, width), np.nan)
    for region, tile in tiles:
        if tile.shape != (channels, region.height, region.width):
            raise ValueError(
                f"tile shape {tile.shape} does not match region "
                f"{(channels, region.height, region.width)}"
            )
        target = output[:, region.row_start : region.row_end, region.col_start : region.col_end]
        if not np.all(np.isnan(target)):
            raise ValueError("tiles overlap in the merged output")
        output[:, region.row_start : region.row_end, region.col_start : region.col_end] = tile
    if np.any(np.isnan(output)):
        raise ValueError("tiles do not cover the full output feature map")
    return output


def _run_layer_on_tile(
    executor: GraphExecutor,
    vertex,
    tile: np.ndarray,
    region: TileRegion,
) -> np.ndarray:
    """Run one layer of a fused run on a tile, applying only the border padding."""
    spec = vertex.spec
    if isinstance(spec, (Conv2d, MaxPool2d, AvgPool2d)):
        pad_value = -np.inf if isinstance(spec, MaxPool2d) else 0.0
        padded = ops.pad2d_asymmetric(
            tile,
            top=region.pad_top,
            bottom=region.pad_bottom,
            left=region.pad_left,
            right=region.pad_right,
            value=pad_value,
        )
        if isinstance(spec, Conv2d):
            params = executor.weights.conv_weights(vertex.name, spec, padded.shape[0])
            return ops.conv2d(padded, params["weight"], params["bias"], spec.stride, (0, 0))
        if isinstance(spec, MaxPool2d):
            return ops.max_pool2d(padded, spec.kernel, spec.stride, (0, 0))
        return ops.avg_pool2d(padded, spec.kernel, spec.stride, (0, 0))
    # Spatially pointwise layers: run the normal implementation on the tile.
    return executor.run_vertex(vertex, [tile], None)


def execute_fused_tile_stack(
    executor: GraphExecutor,
    run_plan: FusedRunPlan,
    stack: FusedTileStack,
    run_input: np.ndarray,
) -> np.ndarray:
    """Compute the output tile of one fused tile stack.

    This is what a single edge node does: it receives the layer ``c_1`` input
    patch of its stack, owns the parameters of all layers of the run, and
    produces its cell of the run's output feature map.
    """
    if run_input.ndim != 3:
        raise ValueError("run input must be a (C, H, W) feature map")
    tile = extract_tile(run_input, stack.input_region)
    for position, vertex in enumerate(run_plan.vertices):
        produced = stack.regions[position + 1]
        if produced.is_empty():
            # The layer's output tile lies entirely in a downstream layer's
            # padding: nothing real to compute, emit the empty tile directly.
            channels = vertex.output_shape[0]
            tile = np.zeros((channels, produced.height, produced.width), dtype=tile.dtype)
            continue
        tile = _run_layer_on_tile(executor, vertex, tile, stack.regions[position])
    expected = stack.output_region
    if tile.shape[1] != expected.height or tile.shape[2] != expected.width:
        raise ValueError(
            f"tile produced shape {tile.shape[1:]} but the plan expected "
            f"{(expected.height, expected.width)}"
        )
    return tile


def run_vsm_plan(
    executor: GraphExecutor,
    run_plan: FusedRunPlan,
    run_input: np.ndarray,
) -> np.ndarray:
    """Execute every stack of a fused run and merge the tiles.

    Returns the run's full output feature map, which must equal the output of
    executing the run without tiling.
    """
    tiles = [
        (stack.output_region, execute_fused_tile_stack(executor, run_plan, stack, run_input))
        for stack in run_plan.stacks
    ]
    channels = run_plan.output_shape[0]
    _, height, width = run_plan.output_shape
    return merge_tiles(tiles, channels, height, width)


def run_untiled(executor: GraphExecutor, run_plan: FusedRunPlan, run_input: np.ndarray) -> np.ndarray:
    """Execute the same run without tiling (the reference result)."""
    activation = run_input
    for vertex in run_plan.vertices:
        activation = executor.run_vertex(vertex, [activation], None)
    return activation
