"""Functional numpy inference engine.

The paper runs real PyTorch models; partitioning only needs layer metadata, but
proving that VSM is *lossless* requires actually executing convolutions on
tiles and comparing against the unpartitioned result.  This subpackage provides
that capability:

* :mod:`repro.tensors.ops` — reference numpy implementations of every layer
  kind used by the model zoo (convolution, pooling, batch norm, ...);
* :mod:`repro.tensors.executor` — run a whole :class:`repro.graph.dag.DnnGraph`
  on a concrete input with deterministic random weights;
* :mod:`repro.tensors.tiling` — execute a VSM fused-tile plan on real arrays
  and merge the per-tile outputs.
"""

from repro.tensors.ops import (
    add,
    avg_pool2d,
    batch_norm,
    concat_channels,
    conv2d,
    leaky_relu,
    linear,
    local_response_norm,
    max_pool2d,
    relu,
    softmax,
)
from repro.tensors.executor import GraphExecutor, WeightStore
from repro.tensors.tiling import execute_fused_tile_stack, merge_tiles, run_vsm_plan

__all__ = [
    "GraphExecutor",
    "WeightStore",
    "add",
    "avg_pool2d",
    "batch_norm",
    "concat_channels",
    "conv2d",
    "execute_fused_tile_stack",
    "leaky_relu",
    "linear",
    "local_response_norm",
    "max_pool2d",
    "merge_tiles",
    "relu",
    "run_vsm_plan",
    "softmax",
]
