"""Plan cache for the serving layer.

HPA + VSM partitioning is the expensive part of D3's control path; under a
request stream it would be madness to recompute it per request when the model
and the network conditions haven't changed.  The :class:`PlanCache` memoizes
complete partitioning decisions keyed by ``(model, network condition, system
configuration)`` and exposes the statistics the serving report surfaces
(hits, misses, repartitions, invalidations).

Drift handling is wired to :mod:`repro.core.dynamic`: every cached entry owns
the :class:`~repro.core.dynamic.DynamicRepartitioner` that produced (or last
adapted) its plan, and the cache registers itself as a listener on it.  When
the serving loop observes a network condition outside the entry's threshold
band, the repartitioner performs the paper's *local* re-partitioning, fires
the listener — which invalidates the stale entry — and the adapted plan is
re-inserted under the new condition's key.  Conditions *inside* the band reuse
the cached plan unchanged (a hit), exactly mirroring the threshold guard of
section III-E.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.dynamic import DynamicRepartitioner, RepartitionEvent, RepartitionThresholds
from repro.core.placement import PlacementPlan
from repro.core.vsm import VSMPlan
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


def network_key(condition: NetworkCondition) -> Tuple[float, float, float]:
    """Hashable signature of a network condition (the three link rates)."""
    return (
        round(condition.device_edge_mbps, 6),
        round(condition.edge_cloud_mbps, 6),
        round(condition.device_cloud_mbps, 6),
    )


@dataclass(frozen=True)
class PlanKey:
    """Cache key: which model, under which conditions, for which system.

    ``strategy`` is the partitioning method's registry name, so the same
    serving system can hold D3 and baseline plans for one model side by side.
    ``topology`` is the deployment's
    :meth:`~repro.network.topology.Topology.fingerprint`: two systems that
    differ only in cluster shape (an extra device, a slower edge machine, a
    re-traced link) must never share a plan.
    """

    model: str
    network: Tuple[float, float, float]
    config: Tuple
    strategy: str = "hpa_vsm"
    topology: Tuple = ()

    @classmethod
    def build(
        cls,
        model: str,
        condition: NetworkCondition,
        config_key: Tuple,
        strategy: str = "hpa_vsm",
        topology: Tuple = (),
    ) -> "PlanKey":
        return cls(
            model=model,
            network=network_key(condition),
            config=config_key,
            strategy=strategy,
            topology=topology,
        )


@dataclass
class CachedPlan:
    """One complete, ready-to-execute partitioning decision."""

    key: PlanKey
    graph: DnnGraph
    profile: LatencyProfile
    placement: PlacementPlan
    vsm_plan: Optional[VSMPlan]
    condition: NetworkCondition
    #: Latency of this plan on an idle cluster (the one-shot reference the
    #: serving report computes queueing delays against).
    ideal_latency_s: float
    #: The adaptive re-partitioner that owns ``placement``; reused to perform
    #: local updates when the network drifts out of the threshold band.
    repartitioner: Optional[DynamicRepartitioner] = None
    #: Per-physical-link rates (Mbps keyed by link id) in effect when the
    #: plan was computed; lets :meth:`PlanCache.within_band` watch each wire
    #: of a traced topology, not just the tier-pair aggregate.
    link_mbps: Optional[Dict[str, float]] = None
    valid: bool = True
    #: The invalidation callback this entry registered on its repartitioner
    #: (deregistered again when the entry is invalidated, so long-lived
    #: repartitioners don't accumulate listeners for dead entries).
    invalidator: Optional[object] = field(default=None, repr=False)


class PlanCache:
    """Memoize partitioning plans across a request stream.

    Parameters
    ----------
    thresholds:
        The relative-change band of section III-E; conditions within the band
        of a cached entry reuse its plan, conditions outside it trigger a
        local re-partitioning (and an invalidation of the stale entry).
    max_entries:
        Optional LRU bound on the number of cached keys.  Topology
        fingerprints, drifting conditions and failure-degraded deployment
        shapes all mint fresh keys, so an unbounded cache grows for the
        lifetime of the serving system; with a bound, the least recently
        *used* key (lookups and aliasing refresh recency) is evicted on
        insert.  ``None`` keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        thresholds: Optional[RepartitionThresholds] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.thresholds = thresholds or RepartitionThresholds()
        self.max_entries = max_entries
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        #: Latest entry per (model, strategy, config, topology), the seed for
        #: drift adaptation.  Shares the LRU bound: one retained seed per
        #: stream would otherwise still grow with every degraded-topology
        #: fingerprint a chaotic deployment mints.
        self._latest: "OrderedDict[Tuple[str, str, Tuple, Tuple], CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.repartitions = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def plans_computed(self) -> int:
        """Full partitionings plus drift adaptations performed so far."""
        return self.misses + self.repartitions

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "repartitions": self.repartitions,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    # ------------------------------------------------------------------ #
    def set_thresholds(self, thresholds: RepartitionThresholds) -> None:
        """Change the drift band, keeping live repartitioners in agreement.

        Every cached entry's repartitioner must judge drift with the same
        band as :meth:`within_band`, otherwise the cache could count an
        adaptation the repartitioner refused to perform.
        """
        self.thresholds = thresholds
        for entry in self._latest.values():
            if entry.repartitioner is not None:
                entry.repartitioner.thresholds = thresholds

    # ------------------------------------------------------------------ #
    def get(
        self,
        key: PlanKey,
        condition: Optional[NetworkCondition] = None,
        link_mbps: Optional[Dict[str, float]] = None,
    ) -> Optional[CachedPlan]:
        """Exact lookup; counts a hit when present and still in band.

        With ``condition``/``link_mbps``, an exact key match is additionally
        re-validated against the per-link drift band: a wire off the primary
        planning routes can collapse without moving the tier-pair rates (and
        hence the key), and such an entry must re-enter the drift path, not
        be served as a hit.
        """
        entry = self._entries.get(key)
        if entry is None or not entry.valid:
            return None
        if (
            link_mbps
            and condition is not None
            and not self.within_band(entry, condition, link_mbps)
        ):
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def latest_for(
        self, model: str, strategy: str, config_key: Tuple, topology: Tuple = ()
    ) -> Optional[CachedPlan]:
        """Most recent entry for a (model, strategy, config, topology)."""
        key = (model, strategy, config_key, topology)
        entry = self._latest.get(key)
        if entry is not None:
            self._latest.move_to_end(key)
        return entry

    def within_band(
        self,
        entry: CachedPlan,
        condition: NetworkCondition,
        link_mbps: Optional[Dict[str, float]] = None,
    ) -> bool:
        """True when ``condition`` is inside the entry's tolerated drift band.

        With ``link_mbps`` (and an entry that recorded its own link rates),
        every physical wire is additionally checked: a single congested link
        leaves the band even when the harmonic tier-pair aggregate barely
        moves.
        """
        pairs = (("device", "edge"), ("edge", "cloud"), ("device", "cloud"))
        for src, dst in pairs:
            if self.thresholds.exceeded(
                entry.condition.bandwidth_mbps(src, dst),
                condition.bandwidth_mbps(src, dst),
            ):
                return False
        if link_mbps and entry.link_mbps:
            for link_id, mbps in link_mbps.items():
                reference = entry.link_mbps.get(link_id)
                if reference is not None and self.thresholds.exceeded(reference, mbps):
                    return False
        return True

    def store(self, entry: CachedPlan, *, repartitioned: bool = False) -> CachedPlan:
        """Insert a fresh entry; counts as a miss or a drift repartition."""
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        latest_key = (
            entry.key.model, entry.key.strategy, entry.key.config, entry.key.topology
        )
        self._latest[latest_key] = entry
        self._latest.move_to_end(latest_key)
        if repartitioned:
            self.repartitions += 1
        else:
            self.misses += 1
        if entry.repartitioner is not None:
            # Wire the invalidation hook: the moment the repartitioner adapts
            # this plan to new conditions, the cached copy is stale.
            entry.invalidator = self._make_invalidator(entry)
            entry.repartitioner.add_listener(entry.invalidator)
        self._evict_over_bound()
        return entry

    def record_alias(self, key: PlanKey, entry: CachedPlan) -> None:
        """Map an in-band condition key onto an existing entry (counts a hit).

        This is the threshold guard paying off: the condition changed, but not
        enough to leave the band, so the cached plan is reused as-is and the
        next exact lookup under ``key`` is a plain hit.
        """
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.hits += 1
        self._evict_over_bound()

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used keys until the LRU bound is respected.

        Key eviction does not kill streams: the ``_latest`` seed an evicted
        entry may still serve keeps drift adaptation working, and a future
        in-band condition simply re-aliases it (a hit, not a recompute).
        ``_latest`` is bounded by the same cap — a cold stream's seed is
        eventually dropped too (its next request replans from scratch) so a
        chaotic deployment's fingerprint churn cannot grow it forever.
        """
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._drop_listener_if_orphaned(evicted)
            self.evictions += 1
        while len(self._latest) > self.max_entries:
            _, evicted = self._latest.popitem(last=False)
            self._drop_listener_if_orphaned(evicted)

    def _drop_listener_if_orphaned(self, evicted: CachedPlan) -> None:
        """Deregister an entry's invalidator once nothing references it."""
        if (
            evicted.repartitioner is not None
            and evicted.invalidator is not None
            and all(entry is not evicted for entry in self._entries.values())
            and all(entry is not evicted for entry in self._latest.values())
        ):
            # No key nor stream seed references the entry any more; the
            # listener on its repartitioner would only leak.
            evicted.repartitioner.remove_listener(evicted.invalidator)
            evicted.invalidator = None

    # ------------------------------------------------------------------ #
    def invalidate(self, key: PlanKey) -> bool:
        """Drop an entry (and every alias key mapped to it)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        entry.valid = False
        aliases = [k for k, v in self._entries.items() if v is entry]
        for alias in aliases:
            del self._entries[alias]
        if entry.repartitioner is not None and entry.invalidator is not None:
            entry.repartitioner.remove_listener(entry.invalidator)
            entry.invalidator = None
        self.invalidations += 1
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._latest.clear()

    def _make_invalidator(self, entry: CachedPlan):
        def _on_repartition(event: RepartitionEvent) -> None:
            if event.triggered and entry.valid:
                self.invalidate(entry.key)

        return _on_repartition
