"""Tier model and placement plans.

The paper orders the computing tiers ``device ≻ edge ≻ cloud`` (section III-C):
data flows from the device, across the edge, to the cloud, and a vertex may
never be placed on a tier *earlier* in that flow than the latest tier already
holding one of its inputs (Proposition 1).

A :class:`PlacementPlan` maps every vertex of a DNN DAG to a tier; the
:class:`PlanEvaluator` computes the paper's objective

``Θ = Σ_i t^{l_i}_i + Σ_{(i,j) ∈ L} t^{[l_i, l_j]}_{ij}``

as well as the evaluation metrics: per-tier processing time (Table II),
end-to-end latency (Figs. 9, 10, 12) and bytes shipped to the cloud over the
backbone (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graph.dag import DnnGraph, Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core->runtime import
    from repro.core.economics import ObjectiveWeights, TierEconomics
    from repro.runtime.calibration import OnlineCostCalibrator
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


class Tier(str, Enum):
    """The three computing tiers of the edge-computing paradigm."""

    DEVICE = "device"
    EDGE = "edge"
    CLOUD = "cloud"

    @property
    def position(self) -> int:
        """Position along the data flow: device=0, edge=1, cloud=2."""
        return TIER_ORDER.index(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Tiers in data-flow order (device first).  The paper's precedence order is
#: ``device ≻ edge ≻ cloud``; "later in this list" == "lower precedence" ==
#: "further along the inference pipeline".
TIER_ORDER: Tuple[Tier, Tier, Tier] = (Tier.DEVICE, Tier.EDGE, Tier.CLOUD)


def tiers_at_or_after(tier: Tier) -> List[Tier]:
    """Tiers reachable from ``tier`` without moving data backwards.

    This is ``get_loc_choice`` of Algorithm 1: if the latest predecessor tier
    is ``edge`` the potential tiers are ``{edge, cloud}``.
    """
    return [t for t in TIER_ORDER if t.position >= tier.position]


def latest_tier(tiers: Iterable[Tier]) -> Tier:
    """The tier furthest along the pipeline (``max`` under ``d ≻ e ≻ c`` is the
    *earliest*; this helper returns the opposite and is rarely what Prop. 1
    needs — see :func:`earliest_tier`)."""
    tier_list = list(tiers)
    if not tier_list:
        raise ValueError("need at least one tier")
    return max(tier_list, key=lambda t: t.position)


def earliest_tier(tiers: Iterable[Tier]) -> Tier:
    """The tier earliest in the pipeline among ``tiers``.

    Proposition 1 states ``max{l_h1, ..., l_hm} ⪰ l_i`` under the precedence
    order ``d ≻ e ≻ c``; the maximum under that order is the tier with the
    smallest pipeline position, i.e. the earliest tier, which then bounds how
    early ``v_i`` may be placed.
    """
    tier_list = list(tiers)
    if not tier_list:
        raise ValueError("need at least one tier")
    return min(tier_list, key=lambda t: t.position)


class PlacementError(ValueError):
    """Raised when a placement plan is structurally invalid."""


@dataclass
class PlacementPlan:
    """Assignment of every DNN vertex to a computing tier."""

    graph: DnnGraph
    assignments: Dict[int, Tier] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def assign(self, vertex_index: int, tier: Tier) -> None:
        self.assignments[vertex_index] = Tier(tier)

    def tier_of(self, vertex_index: int) -> Tier:
        if vertex_index not in self.assignments:
            raise PlacementError(f"vertex {vertex_index} has no tier assignment")
        return self.assignments[vertex_index]

    def vertices_on(self, tier: Tier) -> List[Vertex]:
        """All vertices placed on ``tier``, in topological order."""
        tier = Tier(tier)
        return [v for v in self.graph.topological_order() if self.assignments.get(v.index) == tier]

    def tier_counts(self) -> Dict[Tier, int]:
        """Number of vertices on each tier."""
        counts = {tier: 0 for tier in TIER_ORDER}
        for tier in self.assignments.values():
            counts[tier] += 1
        return counts

    def is_complete(self) -> bool:
        """True when every vertex of the graph has an assignment."""
        return len(self.assignments) == len(self.graph)

    def copy(self) -> "PlacementPlan":
        return PlacementPlan(self.graph, dict(self.assignments))

    # ------------------------------------------------------------------ #
    def cut_edges(self) -> List[Tuple[Vertex, Vertex]]:
        """Directed links whose endpoints sit on different tiers."""
        return [
            (src, dst)
            for src, dst in self.graph.edges()
            if self.tier_of(src.index) != self.tier_of(dst.index)
        ]

    def validate(self) -> None:
        """Check completeness and Proposition 1.

        Raises
        ------
        PlacementError
            If a vertex is unassigned, or placed earlier in the pipeline than
            the earliest tier of its predecessors (which would require sending
            data backwards from a later tier).
        """
        if not self.is_complete():
            missing = [v.name for v in self.graph if v.index not in self.assignments]
            raise PlacementError(f"unassigned vertices: {missing}")
        for vertex in self.graph:
            preds = self.graph.predecessors(vertex.index)
            if not preds:
                continue
            bound = earliest_tier(self.tier_of(p.index) for p in preds)
            if self.tier_of(vertex.index).position < bound.position:
                raise PlacementError(
                    f"vertex {vertex.name!r} on {self.tier_of(vertex.index)} violates "
                    f"Proposition 1 (earliest predecessor tier is {bound})"
                )

    def describe(self) -> str:
        """Short human-readable description of the split."""
        counts = self.tier_counts()
        return (
            f"{self.graph.name}: device={counts[Tier.DEVICE]} "
            f"edge={counts[Tier.EDGE]} cloud={counts[Tier.CLOUD]} "
            f"({len(self.cut_edges())} cut edges)"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def single_tier(cls, graph: DnnGraph, tier: Tier) -> "PlacementPlan":
        """Plan that places the entire network on one tier.

        The virtual input vertex always stays on the device (the device
        collects the raw input), which charges the raw-input transfer to the
        executing tier exactly like the paper's device/edge/cloud-only
        baselines.
        """
        plan = cls(graph)
        tier = Tier(tier)
        for vertex in graph:
            if vertex.index == graph.input_vertex.index:
                plan.assign(vertex.index, Tier.DEVICE)
            else:
                plan.assign(vertex.index, tier)
        return plan

    @classmethod
    def from_mapping(cls, graph: DnnGraph, mapping: Mapping[int, Tier]) -> "PlacementPlan":
        """Plan from an explicit ``vertex index -> tier`` mapping."""
        plan = cls(graph)
        for index, tier in mapping.items():
            plan.assign(index, Tier(tier))
        return plan


@dataclass(frozen=True)
class PlanMetrics:
    """Evaluation metrics of one placement plan under one scenario."""

    end_to_end_latency_s: float
    compute_latency_s: Dict[Tier, float]
    transfer_latency_s: float
    bytes_to_cloud: int
    bytes_device_to_edge: int
    cut_edge_count: int

    @property
    def total_compute_latency_s(self) -> float:
        return sum(self.compute_latency_s.values())

    @property
    def megabits_to_cloud(self) -> float:
        """Backbone traffic in megabits (the unit of Fig. 13)."""
        return self.bytes_to_cloud * 8.0 / 1e6


class PlanEvaluator:
    """Compute the paper's objective and evaluation metrics for a plan.

    The evaluator charges every vertex its per-tier latency from the
    :class:`~repro.profiling.profiler.LatencyProfile` and every cut edge the
    transmission delay of the producing vertex's output over the corresponding
    inter-tier link, exactly as in the objective ``Θ`` of section III-E.
    """

    def __init__(
        self,
        profile: LatencyProfile,
        network: NetworkCondition,
        calibration: Optional["OnlineCostCalibrator"] = None,
        economics: Optional["TierEconomics"] = None,
        weights: Optional["ObjectiveWeights"] = None,
    ) -> None:
        self.profile = profile
        self.network = network
        #: Optional online calibrator: when set, observed per-(tier, layer)
        #: latencies and tier-pair throughput override the analytic values.
        self.calibration = calibration
        #: Optional per-tier energy/pricing view plus scalarisation weights.
        #: ``objective`` only leaves the pure-latency code path when both are
        #: present and the weights actually put mass on another axis, so the
        #: default configuration stays bit-identical (the goldens pin it).
        self.economics = economics
        self.weights = weights
        self._weighted = (
            economics is not None and weights is not None and not weights.is_latency_only
        )
        self._calibration_rev = calibration.revision if calibration is not None else -1
        # Per-instance memo tables.  A profile lookup and a tier-pair
        # transfer are pure functions of their keys (noise is baked into the
        # profile at measurement time), and the serve path re-asks for the
        # same handful of (vertex, tier) pairs once per candidate plan per
        # request — memoizing turns the inner Θ loops into dict hits.  With
        # a calibrator the memos are additionally keyed by its revision:
        # stale corrected values are flushed the moment an estimate moves.
        self._vertex_memo: Dict[tuple, float] = {}
        self._edge_memo: Dict[tuple, float] = {}

    # ------------------------------------------------------------------ #
    def _sync_calibration(self) -> None:
        """Flush the memos when the calibrator learned something new."""
        revision = self.calibration.revision
        if revision != self._calibration_rev:
            self._calibration_rev = revision
            self._vertex_memo.clear()
            self._edge_memo.clear()

    def vertex_latency(self, vertex: Vertex, tier: Tier) -> float:
        """``t^{l_i}_i`` for one vertex."""
        if self.calibration is not None:
            self._sync_calibration()
        key = (vertex.index, tier)
        memo = self._vertex_memo
        if key not in memo:
            value = self.profile.get(vertex.index, tier)
            if self.calibration is not None:
                value = self.calibration.layer_seconds(vertex.name, tier.value, value)
            memo[key] = value
        return memo[key]

    def edge_latency(self, src: Vertex, src_tier: Tier, dst_tier: Tier) -> float:
        """``t^{[l_i, l_j]}_{ij}`` for one directed link."""
        if src_tier == dst_tier:
            return 0.0
        if self.calibration is not None:
            self._sync_calibration()
        # output_bytes joins the key so evaluator reuse across graphs whose
        # vertex indices collide can never alias a different payload.
        key = (src.index, src.output_bytes, src_tier, dst_tier)
        memo = self._edge_memo
        if key not in memo:
            value = self.network.transfer_seconds(
                src.output_bytes, src_tier.value, dst_tier.value
            )
            if self.calibration is not None:
                value = self.calibration.pair_transfer_seconds(
                    src.output_bytes, src_tier.value, dst_tier.value, value
                )
            memo[key] = value
        return memo[key]

    # ------------------------------------------------------------------ #
    # Batch-aware cost hooks (the serving scheduler's planning view)
    # ------------------------------------------------------------------ #
    def batched_vertex_latency(
        self, vertex: Vertex, tier: Tier, batch_size: int, batch_exponent: float = 0.85
    ) -> float:
        """Amortized per-request cost of one vertex inside a micro-batch.

        ``batch_size`` same-layer requests executed as one batch cost
        ``t_1 * batch_size ** batch_exponent`` wall-clock (the sublinear
        curve of :func:`repro.profiling.hardware.batch_cost_s`); each member
        is charged an equal share.  ``batch_size=1`` reduces exactly to
        :meth:`vertex_latency`, so unbatched planning is unchanged.
        """
        from repro.profiling.hardware import batch_cost_s

        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        solo = self.vertex_latency(vertex, tier)
        if batch_size == 1:
            return solo
        return batch_cost_s([solo] * batch_size, batch_exponent) / batch_size

    def batched_objective(
        self,
        plan: PlacementPlan,
        batch_size: int,
        tier_exponents: Optional[Mapping[Tier, float]] = None,
    ) -> float:
        """The objective ``Θ`` at a steady micro-batch occupancy.

        Compute terms amortize by the per-tier batch curve (``tier_exponents``
        maps each tier to its hardware's ``batch_exponent``; omitted tiers
        use the CPU-class 0.85); transfer terms are per-request activations
        and do not amortize.  This is the cost the plan cache can hand an
        SLO/throughput planner deciding whether a deeper batch is worth its
        added queueing wait — ``batched_objective(plan, 1)`` is exactly
        :meth:`objective`.
        """
        exponents = dict(tier_exponents or {})
        graph = plan.graph
        compute = sum(
            self.batched_vertex_latency(
                vertex,
                plan.tier_of(vertex.index),
                batch_size,
                exponents.get(plan.tier_of(vertex.index), 0.85),
            )
            for vertex in graph
        )
        transfer = sum(
            self.edge_latency(src, plan.tier_of(src.index), plan.tier_of(dst.index))
            for src, dst in graph.edges()
        )
        return compute + transfer

    # ------------------------------------------------------------------ #
    # Economic axes (planning estimates, not metered serving integrals)
    # ------------------------------------------------------------------ #
    def plan_energy_j(self, plan: PlacementPlan) -> float:
        """Estimated joules of one inference under the plan.

        Compute energy charges each vertex its FLOPs at the hosting tier's
        J/FLOP; radio energy charges each cut edge with a device endpoint the
        payload at the device's radio J/byte.  Requires ``economics``.
        """
        if self.economics is None:
            raise ValueError("plan_energy_j needs a TierEconomics view")
        economics = self.economics
        total = 0.0
        for vertex in plan.graph:
            total += economics.compute_joules(vertex.flops, plan.tier_of(vertex.index))
        for src, dst in plan.graph.edges():
            total += economics.transfer_joules(
                src.output_bytes, plan.tier_of(src.index), plan.tier_of(dst.index)
            )
        return total

    def plan_cost_usd(self, plan: PlacementPlan) -> float:
        """Estimated dollars of one inference: compute seconds × tier $/s."""
        if self.economics is None:
            raise ValueError("plan_cost_usd needs a TierEconomics view")
        economics = self.economics
        return sum(
            economics.compute_cost_usd(
                self.vertex_latency(vertex, plan.tier_of(vertex.index)),
                plan.tier_of(vertex.index),
            )
            for vertex in plan.graph
        )

    # ------------------------------------------------------------------ #
    def objective(self, plan: PlacementPlan) -> float:
        """The score the planners minimise.

        By default this is the total latency ``Θ`` of the paper, defined as
        the batch-1 point of :meth:`batched_objective` so the Θ loops exist
        exactly once (``batched_vertex_latency`` reduces to
        ``vertex_latency`` at batch 1, making the delegation float-exact).
        When the evaluator carries non-latency-only ``weights`` plus a
        ``TierEconomics`` view, the score becomes the weighted scalarisation
        over (latency s, energy J, cost $); the default path is untouched.
        """
        latency = self.batched_objective(plan, 1)
        if not self._weighted:
            return latency
        return self.weights.combine(
            latency, self.plan_energy_j(plan), self.plan_cost_usd(plan)
        )

    def metrics(self, plan: PlacementPlan) -> PlanMetrics:
        """Full metric breakdown used by the experiment harnesses."""
        graph = plan.graph
        compute_by_tier: Dict[Tier, float] = {tier: 0.0 for tier in TIER_ORDER}
        for vertex in graph:
            tier = plan.tier_of(vertex.index)
            compute_by_tier[tier] += self.vertex_latency(vertex, tier)

        transfer = 0.0
        bytes_to_cloud = 0
        bytes_device_to_edge = 0
        cut_edges = 0
        for src, dst in graph.edges():
            src_tier = plan.tier_of(src.index)
            dst_tier = plan.tier_of(dst.index)
            if src_tier == dst_tier:
                continue
            cut_edges += 1
            transfer += self.edge_latency(src, src_tier, dst_tier)
            if dst_tier == Tier.CLOUD and src_tier != Tier.CLOUD:
                bytes_to_cloud += src.output_bytes
            if src_tier == Tier.DEVICE and dst_tier == Tier.EDGE:
                bytes_device_to_edge += src.output_bytes

        end_to_end = sum(compute_by_tier.values()) + transfer
        return PlanMetrics(
            end_to_end_latency_s=end_to_end,
            compute_latency_s=compute_by_tier,
            transfer_latency_s=transfer,
            bytes_to_cloud=bytes_to_cloud,
            bytes_device_to_edge=bytes_device_to_edge,
            cut_edge_count=cut_edges,
        )

    # ------------------------------------------------------------------ #
    # Memory-constrained planning (weights are not free)
    # ------------------------------------------------------------------ #
    # ``artifact`` is duck-typed (a repro.runtime.artifacts.ModelArtifact):
    # the placement layer stays import-free of the runtime subsystem.
    def tier_weight_bytes(self, plan: PlacementPlan, artifact) -> Dict[Tier, int]:
        """Resident bytes the plan demands per tier: the weights of every
        stage placed there plus the tier's peak activation working set."""
        weights: Dict[Tier, int] = {tier: 0 for tier in TIER_ORDER}
        activations: Dict[Tier, int] = {tier: 0 for tier in TIER_ORDER}
        hosted: Dict[Tier, bool] = {tier: False for tier in TIER_ORDER}
        for vertex in plan.graph:
            tier = plan.tier_of(vertex.index)
            hosted[tier] = True
            weights[tier] += artifact.vertex_weight_bytes.get(vertex.index, 0)
            activation = artifact.vertex_activation_bytes.get(vertex.index, 0)
            if activation > activations[tier]:
                activations[tier] = activation
        return {
            tier: (weights[tier] + activations[tier]) if hosted[tier] else 0
            for tier in TIER_ORDER
        }

    def memory_feasible(
        self, plan: PlacementPlan, artifact, capacities: Mapping[Tier, int]
    ) -> bool:
        """True when every tier's resident footprint fits its capacity.

        ``capacities`` maps tiers to byte budgets (the smallest node of the
        tier, so a feasible plan fits on *any* member); tiers absent from the
        mapping are unconstrained.
        """
        needed = self.tier_weight_bytes(plan, artifact)
        for tier, bytes_needed in needed.items():
            capacity = capacities.get(tier)
            if capacity is not None and bytes_needed > capacity:
                return False
        return True

    def weight_movement_s(self, plan: PlacementPlan, artifact, codec) -> float:
        """One-time weight-movement cost of the plan under a codec.

        Artifacts live compressed in the cloud store: device/edge stages ship
        their compressed weights over the modelled wires and decompress on
        arrival; cloud stages decompress in place.  Adding this term to the
        objective is what lets tight memory (or a slow symmetric codec) flip
        the optimal partition toward the store.
        """
        per_tier: Dict[Tier, int] = {}
        for vertex in plan.graph:
            tier = plan.tier_of(vertex.index)
            per_tier[tier] = per_tier.get(tier, 0) + artifact.vertex_weight_bytes.get(
                vertex.index, 0
            )
        total = 0.0
        for tier, weight in per_tier.items():
            if weight <= 0:
                continue
            if tier != Tier.CLOUD:
                total += self.network.transfer_seconds(
                    codec.compressed_bytes(weight), Tier.CLOUD.value, tier.value
                )
            total += codec.decompress_seconds(weight)
        return total
