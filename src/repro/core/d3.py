"""The D3 system facade.

Wires the full pipeline of Fig. 2 together:

``profiler -> regression model -> HPA -> VSM -> online execution engine``

so that examples, experiments and benchmarks can obtain an end-to-end result
with a single call::

    system = D3System(D3Config(network="wifi", num_edge_nodes=4))
    result = system.run(build_model("vgg16"))
    print(result.report.summary())
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.economics import ObjectiveWeights, TierEconomics
from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import (
    TIER_ORDER,
    PlacementPlan,
    PlanEvaluator,
    PlanMetrics,
    Tier,
)
from repro.core.plan_cache import CachedPlan, PlanCache, PlanKey
from repro.core.strategy import (
    ClusterSpec,
    HpaStrategy,
    HpaVsmStrategy,
    PartitionStrategy,
    StrategyUnsupportedError,
    get_strategy,
)
from repro.core.vsm import VSMPlan
from repro.graph.dag import DnnGraph
from repro.network.conditions import BandwidthTrace, NetworkCondition, get_condition
from repro.network.faults import FaultSchedule, load_fault_schedule
from repro.network.topology import LinkSpec, Topology, TopologyError, load_topology
from repro.profiling.hardware import HardwareSpec
from repro.profiling.profiler import LatencyProfile, Profiler
from repro.profiling.regression import LatencyRegressionModel
from repro.runtime.artifacts import MemoryModel, resolve_memory
from repro.runtime.calibration import (
    AdaptationTracker,
    BandwidthForecaster,
    CalibrationConfig,
    OnlineCostCalibrator,
    resolve_calibration,
)
from repro.runtime.cluster import Cluster
from repro.runtime.elasticity import (
    Autoscaler,
    ElasticitySchedule,
    LoadBalancer,
    load_elasticity_schedule,
)
from repro.runtime.executor import DistributedExecutor
from repro.runtime.scheduler import Scheduler
from repro.runtime.serving import (
    DEFAULT_MAX_RETRIES,
    ServingReport,
    ServingRequest,
    ServingSimulator,
)
from repro.runtime.simulator import ExecutionReport
from repro.runtime.workload import Workload


@dataclass
class D3Config:
    """Configuration of the D3 facade.

    Attributes
    ----------
    topology:
        The deployment description: a
        :class:`~repro.network.topology.Topology`, a preset name
        (``"multi_device"``, ``"hetero_edge"``, ...) or a path to a topology
        JSON file.  ``None`` builds the paper's canonical testbed from the
        deprecated ``network``/``num_edge_nodes`` shims below.
    network:
        Network condition name (Table III) or an explicit condition object.
        With a topology referenced *by name or path*, this is the base
        condition presets are built under and JSON documents fall back to; a
        :class:`Topology` *object* (or a JSON document declaring its own
        ``"network"``) is a complete artifact whose ``base_network`` wins.
        Without a topology it is a deprecated shim feeding the canonical
        :meth:`~repro.network.topology.Topology.three_tier` testbed.
    num_edge_nodes:
        Deprecated shim (use ``topology=``): edge nodes available for VSM
        parallelism in the canonical testbed (the paper uses 4).  Ignored
        when ``topology`` is given.
    tile_grid:
        The ``A x B`` VSM separation decision (the paper uses 2 x 2).
    enable_vsm:
        Disable to obtain the "HPA only" configuration of Figs. 9-11.
    use_regression:
        Estimate per-layer latencies with the regression model (the paper's
        approach); when ``False`` the profiler's direct measurements are used.
    profiler_noise_std:
        Measurement noise of the profiler.
    profiler_repeats:
        Number of repeated measurements averaged per layer.
    seed:
        Seed for the profiler's random generator.
    hpa:
        Heuristic switches of the horizontal partition algorithm.
    calibration_models:
        Extra graphs profiled to train the regression model; the target graph
        is always included.
    plan_cache_entries:
        Optional LRU bound on the serving plan cache (``None`` = unbounded).
        Topology drift and failure-degraded deployment shapes mint fresh
        cache keys, so long-lived serving systems should bound the cache.
    max_retries:
        Default failover retry budget per request when serving under a fault
        schedule (overridable per :meth:`D3System.serve` call).
    objective_weights:
        Optional multi-objective scalarisation: an
        :class:`~repro.core.economics.ObjectiveWeights` or a
        ``(latency, energy, cost)`` 3-sequence.  When set (and not
        latency-only), every planning path — D3's HPA family and all
        registered baselines — minimises the weighted score over the
        deployment's :class:`~repro.core.economics.TierEconomics` instead of
        pure latency.  ``None`` (the default) keeps every code path
        bit-identical to the latency-only system; an all-zero vector raises
        :class:`~repro.core.economics.InvalidWeightsError`.
    """

    topology: "Topology | str | None" = None
    network: NetworkCondition | str = "wifi"
    num_edge_nodes: int = 1
    tile_grid: Tuple[int, int] = (2, 2)
    enable_vsm: bool = True
    use_regression: bool = True
    profiler_noise_std: float = 0.03
    profiler_repeats: int = 3
    seed: int = 0
    hpa: HPAConfig = field(default_factory=HPAConfig)
    calibration_models: Sequence[DnnGraph] = ()
    plan_cache_entries: Optional[int] = None
    max_retries: int = DEFAULT_MAX_RETRIES
    objective_weights: "ObjectiveWeights | Sequence[float] | None" = None

    def __post_init__(self) -> None:
        self.objective_weights = ObjectiveWeights.coerce(self.objective_weights)

    def resolve_network(self) -> NetworkCondition:
        if isinstance(self.network, str):
            return get_condition(self.network)
        return self.network

    def resolve_topology(self) -> Topology:
        """The deployment topology this config describes.

        ``None`` (the deprecated fixed-shape path) builds the canonical
        three-tier testbed from ``num_edge_nodes``/``network`` — bit-identical
        to the pre-topology API.
        """
        if self.topology is None or self.topology == "three_tier":
            # The canonical preset honours the num_edge_nodes shim, so
            # ``topology="three_tier"`` and the no-topology default describe
            # the same testbed.
            return Topology.three_tier(
                num_edge_nodes=self.num_edge_nodes, network=self.resolve_network()
            )
        if isinstance(self.topology, str):
            return load_topology(self.topology, network=self.network)
        return self.topology

    def plan_key(self) -> Tuple:
        """Hashable signature of everything that affects a partitioning plan."""
        return (
            self.num_edge_nodes,
            tuple(self.tile_grid),
            self.enable_vsm,
            self.use_regression,
            self.profiler_noise_std,
            self.profiler_repeats,
            self.seed,
            self.hpa.enable_sis_update,
            self.hpa.lookahead,
            self.hpa.reference_tier_for_successor,
            None
            if self.objective_weights is None
            else self.objective_weights.as_tuple(),
        )


@dataclass
class D3Result:
    """Everything produced by one D3 run for one model."""

    graph: DnnGraph
    network: NetworkCondition
    profile: LatencyProfile
    placement: PlacementPlan
    vsm_plan: Optional[VSMPlan]
    metrics: PlanMetrics
    report: ExecutionReport
    #: Registry name of the partitioning method that produced the placement.
    method: str = "hpa_vsm"

    @property
    def end_to_end_latency_s(self) -> float:
        """Simulated end-to-end inference latency (the headline metric)."""
        return self.report.end_to_end_latency_s

    @property
    def bytes_to_cloud(self) -> int:
        """Per-image backbone traffic to the cloud."""
        return self.report.bytes_to_cloud

    def tier_times_ms(self) -> Dict[Tier, float]:
        """Per-tier busy time in milliseconds (the quantity of Table II)."""
        return {tier: busy * 1e3 for tier, busy in self.report.tier_busy_seconds().items()}


class D3System:
    """End-to-end D3: profile, estimate, partition, separate, execute."""

    #: LRU bound on memoized degraded deployments (masked topology + realized
    #: cluster per failure signature); far above what any realistic fault
    #: schedule visits, but a hard cap against combinatorial shapes.
    DEGRADED_MEMO_ENTRIES = 32

    def __init__(self, config: Optional[D3Config] = None) -> None:
        self.config = config or D3Config()
        self.topology = self.config.resolve_topology()
        weights = self.config.objective_weights
        #: Healthy-deployment economics view; None under the (default)
        #: latency-only objective so every planning path stays untouched.
        self._economics: Optional[TierEconomics] = (
            TierEconomics.from_topology(self.topology)
            if weights is not None and not weights.is_latency_only
            else None
        )
        self.cluster = Cluster.from_topology(
            self.topology,
            network=self.topology.base_network or self.config.resolve_network(),
        )
        #: Planning-view condition (tier-pair effective bandwidths); for the
        #: canonical testbed this is exactly the configured condition.
        self.network = self.cluster.network
        self.profiler = Profiler(
            noise_std=self.config.profiler_noise_std, seed=self.config.seed
        )
        self._regression: Optional[LatencyRegressionModel] = None
        self.plan_cache = PlanCache(max_entries=self.config.plan_cache_entries)
        self._graphs: Dict[str, DnnGraph] = {}
        self._profiles: Dict[str, LatencyProfile] = {}
        #: Degraded deployments, memoized per failure signature: the masked
        #: topology (whose fingerprint keys degraded plans separately from
        #: healthy ones) and its realized cluster (planning view + VSM spec).
        #: LRU-bounded: a chaotic fleet can visit combinatorially many
        #: failure signatures over a long lifetime.
        self._degraded: "OrderedDict[Tuple, Tuple[Topology, Cluster]]" = OrderedDict()
        #: Memory constraint in effect for the current serve()/plan_requests()
        #: call; None outside memory-constrained calls so the planning path
        #: stays bit-identical to the memory-free one.
        self._memory: Optional[MemoryModel] = None
        #: Online-calibration state in effect for the current serve() call;
        #: all None outside calibrated calls (same inertness contract as
        #: ``_memory``).  ``_adaptation_time``/``_adaptation_sample`` carry
        #: the arrival being planned into :meth:`_plan_for`'s trigger paths.
        self._calibration: Optional[OnlineCostCalibrator] = None
        self._forecaster: Optional[BandwidthForecaster] = None
        self._adaptation: Optional[AdaptationTracker] = None
        self._adaptation_time = 0.0
        self._adaptation_sample = 1.0

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def build_profile(self, graph: DnnGraph) -> LatencyProfile:
        """Produce the per-vertex, per-tier latency estimates for ``graph``."""
        tier_hardware: Dict[str, HardwareSpec] = self.cluster.tier_hardware()
        if not self.config.use_regression:
            return self.profiler.build_profile_from_measurements(
                graph, tier_hardware, repeats=self.config.profiler_repeats
            )
        regression = self.train_regression(graph)
        return self.profiler.build_profile_from_regression(graph, tier_hardware, regression)

    def train_regression(self, graph: DnnGraph) -> LatencyRegressionModel:
        """Train (or reuse) the latency regression model."""
        if self._regression is not None:
            return self._regression
        calibration = list(self.config.calibration_models) or []
        graphs = [graph, *calibration]
        samples = self.profiler.collect_training_samples(
            graphs,
            list(self.cluster.tier_hardware().values()),
            repeats=self.config.profiler_repeats,
        )
        self._regression = LatencyRegressionModel().fit(samples)
        return self._regression

    # ------------------------------------------------------------------ #
    # Partitioning and execution
    # ------------------------------------------------------------------ #
    def partition(self, graph: DnnGraph, profile: Optional[LatencyProfile] = None) -> PlacementPlan:
        """Run HPA for ``graph`` under the configured conditions."""
        profile = profile or self.build_profile(graph)
        partitioner = HorizontalPartitioner(
            profile,
            self.network,
            self.config.hpa,
            economics=self._economics,
            weights=self.config.objective_weights,
        )
        return partitioner.partition(graph)

    def separate(self, graph: DnnGraph, placement: PlacementPlan) -> Optional[VSMPlan]:
        """Run VSM over the edge-resident convolutional runs.

        Delegates to :meth:`HpaVsmStrategy.separate` so the VSM gating logic
        lives in exactly one place.
        """
        if not self.config.enable_vsm:
            return None
        return HpaVsmStrategy(self.config.hpa).separate(graph, placement, self._cluster_spec())

    def run(self, graph: DnnGraph, method: Optional[str] = None) -> D3Result:
        """Full pipeline: profile, partition, separate, simulate one inference.

        ``method`` names any registered
        :class:`~repro.core.strategy.PartitionStrategy` (``"hpa_vsm"``,
        ``"neurosurgeon"``, ``"dads"``, ``"cloud_only"``, ...); when omitted
        the configured D3 method is used (``hpa_vsm``, or ``hpa`` when VSM is
        disabled).  Raises
        :class:`~repro.core.strategy.StrategyUnsupportedError` when the
        method declines the graph (consult ``strategy.supports(graph)``
        first to probe availability).
        """
        strategy = self._strategy_for(method)
        self._require_support(strategy, graph)
        profile = self.build_profile(graph)
        partition = strategy.plan(graph, profile, self.network, self._cluster_spec())
        executor = DistributedExecutor(
            graph, partition.placement, profile, self.cluster, partition.vsm_plan
        )
        report = executor.execute()
        return D3Result(
            graph=graph,
            network=self.network,
            profile=profile,
            placement=partition.placement,
            vsm_plan=partition.vsm_plan,
            metrics=partition.metrics,
            report=report,
            method=strategy.name,
        )

    # ------------------------------------------------------------------ #
    # Serving: many in-flight requests over the plan cache
    # ------------------------------------------------------------------ #
    def serve(
        self,
        workload: Workload,
        trace: Optional[BandwidthTrace] = None,
        thresholds: Optional[RepartitionThresholds] = None,
        link_contention: str = "fifo",
        method: Optional[str] = None,
        faults: "FaultSchedule | str | None" = None,
        max_retries: Optional[int] = None,
        scheduler: "Scheduler | str | None" = None,
        stream_stats: bool = False,
        elasticity: "ElasticitySchedule | str | None" = None,
        autoscaler: "Autoscaler | str | None" = None,
        balancer: "LoadBalancer | str | None" = None,
        memory: "MemoryModel | float | None" = None,
        codec: Optional[str] = None,
        eviction: Optional[str] = None,
        calibration: "CalibrationConfig | OnlineCostCalibrator | bool | None" = None,
        economics: bool = False,
    ) -> ServingReport:
        """Serve a multi-request workload on the shared cluster.

        Every request is planned through the plan cache — partitioning runs
        once per distinct ``(model, method, network condition, config)`` and
        the plan is amortized over the stream — then all requests are
        simulated together on the discrete-event engine, contending for
        per-node compute and per-link bandwidth.

        Parameters
        ----------
        workload:
            The request stream (deterministic, Poisson, or hand-built).
        trace:
            Optional bandwidth trace; each request is planned and charged
            under the condition in effect at its arrival time.  Drifts beyond
            ``thresholds`` trigger the dynamic re-partitioner mid-stream for
            D3 methods (invalidating the cached plan); methods without local
            re-partitioning degrade gracefully by re-planning from scratch
            under the new condition (also counted as a repartition).  When no
            trace is given but the deployment topology carries trace-driven
            links, the same machinery runs off those: each request is planned
            under the topology's planning view at its arrival time, and every
            physical wire is watched individually for drift.
        thresholds:
            Drift band for plan invalidation (defaults to the paper's
            ``[0.75, 1.25]``).
        link_contention:
            ``"fifo"`` (default) serializes concurrent transfers per link;
            ``"none"`` reproduces the paper's uncontended one-shot links.
        method:
            Registry name of the partitioning strategy to serve with;
            defaults to the configured D3 method.  Raises
            :class:`~repro.core.strategy.StrategyUnsupportedError` when the
            method declines a requested model's graph.
        faults:
            Optional failure scenario: a
            :class:`~repro.network.faults.FaultSchedule`, a path to a
            schedule JSON file, or ``"chaos:<seed>"`` for a seeded random
            schedule over the deployed topology.  Requests arriving while
            components are down are planned against the *masked* (degraded)
            topology — keyed separately in the plan cache by the masked
            fingerprint — and requests whose in-flight work a fault aborts
            are retried through failover replanning at the moment of the
            failure.  A recovery is treated as drift: the degraded stream's
            repartitioner observes the restored view and invalidates the
            stale degraded plan (fail-back).  ``None`` (or an empty
            schedule) is bit-identical to the fault-free serving path.
        max_retries:
            Failover budget per request (defaults to the config's
            ``max_retries``); a request that exhausts it is recorded failed.
        scheduler:
            Dispatch policy for the shared nodes: a
            :class:`~repro.runtime.scheduler.Scheduler` instance, a registry
            name (``"fifo"``, ``"batch"``, ``"edf"``) or ``None`` for the
            default FIFO (bit-identical to the pre-scheduler engine).  The
            batching scheduler micro-batches same-layer work; the deadline
            scheduler serves EDF over the workload's ``slo_ms``/``priority``
            fields and sheds requests whose SLO is already unreachable at
            arrival.
        stream_stats:
            Serve at benchmark scale: aggregates stream into online
            accumulators instead of materializing per-request records and
            timelines, so memory stays O(nodes) rather than O(requests).
            The report's summary numbers are identical below the exact-
            percentile threshold and reservoir-estimated above it; its
            ``records``/``timeline`` views are empty.
        elasticity:
            Optional capacity scenario: an
            :class:`~repro.runtime.elasticity.ElasticitySchedule` of
            declarative NodeJoin/NodeDrain events, or a path to its JSON
            form.  Requests are planned against the fleet shape in effect at
            their arrival — inactive (parked/drained) nodes are masked out
            of the topology through the same masked-fingerprint plan-cache
            path failures use — and the simulator applies the joins and
            drains as events (drains finish in-flight work gracefully).
            ``None`` (or an empty schedule) is bit-identical to the
            static-fleet path.
        autoscaler:
            Optional reactive scaling policy over the edge replica group: an
            :class:`~repro.runtime.elasticity.Autoscaler` instance or a
            policy name (``"target-util"``, ``"queue-threshold"``).  Ticked
            inside the simulator; its decisions join/drain edge replicas
            with a provisioning delay.
        balancer:
            Load-balancing policy resolving group-bound work to a replica
            per request: a :class:`~repro.runtime.elasticity.LoadBalancer`
            or a name (``"rr"``, ``"jsq"``, ``"p2c"``).  Defaults to
            round-robin whenever elasticity or autoscaling is active.
        memory:
            Optional memory constraint: a
            :class:`~repro.runtime.artifacts.MemoryModel` or a bare float
            interpreted as a per-node device/edge budget in GiB.  When
            active, every node holds model weights in a
            :class:`~repro.runtime.artifacts.WeightCache` bounded by
            ``min(HardwareSpec.memory_gb, budget)`` (the cloud tier keeps
            its hardware capacity — it is the artifact store), non-resident
            models pay a cold start (compressed transfer over the declared
            wires + decompress) before their first task dispatches, and
            plans that cannot fit a tier's capacity are repaired toward
            feasible placements ranked by objective + weight movement.
            ``None`` with no codec/eviction override is bit-identical to
            the memory-free path.
        codec:
            Compression codec for weight movement (``"none"``,
            ``"symmetric"``, ``"zxc"``); overrides the model's codec when
            ``memory`` is given, or activates a default
            :class:`MemoryModel` on its own.
        eviction:
            Weight-cache eviction policy (``"lru"``, ``"priority"``); same
            override semantics as ``codec``.
        calibration:
            Optional online adaptation: ``True`` for defaults, a
            :class:`~repro.runtime.calibration.CalibrationConfig`, or a
            pre-warmed
            :class:`~repro.runtime.calibration.OnlineCostCalibrator`.  When
            active, the simulator feeds observed task/transfer/request
            timings into the calibrator (corrected estimates reach the
            adaptation evaluators and EDF admission control), and — with a
            ``trace`` and a positive ``horizon_s`` — a bandwidth forecaster
            triggers *proactive* repartitioning when the predicted condition
            would leave the drift band within the horizon.  The report then
            carries calibration updates, proactive vs reactive repartition
            counts, and forecast mispredicts.  ``None`` is bit-identical to
            the uncalibrated path.
        economics:
            Meter the run's actual energy and dollars: compute joules off
            every node's executed work, radio joules off the bytes crossing
            device uplinks, idle joules and $-billing off each node's
            powered-on hours.  Accounting is derived at report-build time
            from the engine's existing integrals (busy seconds, bytes
            carried, downtime), so the hot path is untouched; the report
            gains ``energy_per_request_j``/``dollars_per_1k_requests`` and
            an "economics:" summary line.  ``False`` (the default) leaves
            the report's economics fields zeroed.

        Returns
        -------
        ServingReport
            Per-request latencies, percentiles, throughput, utilisation,
            backbone traffic, availability and plan-cache statistics for
            this call.
        """
        strategy = self._strategy_for(method)
        if thresholds is not None:
            self.plan_cache.set_thresholds(thresholds)
        schedule = self._resolve_faults(faults, workload)
        elastic = self._resolve_elasticity(elasticity)
        memory_model = resolve_memory(memory, codec=codec, eviction=eviction)
        calibrator = resolve_calibration(calibration)
        before = self.plan_cache.stats()
        self._memory = memory_model
        tracker: Optional[AdaptationTracker] = None
        if calibrator is not None:
            tracker = AdaptationTracker(
                lower=self.plan_cache.thresholds.lower,
                upper=self.plan_cache.thresholds.upper,
            )
            self._calibration = calibrator
            self._forecaster = BandwidthForecaster(
                calibrator.config.alpha, calibrator.config.trend_beta
            )
            self._adaptation = tracker
        try:
            if memory_model is not None:
                self._validate_memory(workload, memory_model)
            requests, ideal_by_id = self._plan_workload(
                workload, strategy, schedule, trace, elastic
            )

            simulator = ServingSimulator(
                self.cluster,
                link_contention=link_contention,
                faults=schedule,
                max_retries=(
                    self.config.max_retries if max_retries is None else max_retries
                ),
                replan=(
                    self._make_replanner(strategy, trace)
                    if (schedule or elastic or autoscaler is not None)
                    else None
                ),
                scheduler=scheduler,
                stream_stats=stream_stats,
                elasticity=elastic,
                autoscaler=autoscaler,
                balancer=balancer,
                memory=memory_model,
                calibration=calibrator,
                economics=economics,
            )
            if tracker is not None and requests:
                # Planning has seen the whole stream: proactive calls whose
                # horizon ends before the last arrival and never saw a breach
                # are settled as mispredicts.
                tracker.finish(max(r.arrival_s for r in requests))
            records = simulator.run(requests)
        finally:
            self._memory = None
            self._calibration = None
            self._forecaster = None
            self._adaptation = None
        for record in records:
            if record.completed and record.retries == 0:
                # Queueing delay compares a clean run against its own idle
                # baseline; retried/failed requests are measured by the
                # availability metrics instead.
                record.ideal_latency_s = ideal_by_id.get(record.request_id)

        report = simulator.build_report(workload.name, records)
        report.method = strategy.name
        after = self.plan_cache.stats()
        report.cache_hits = after["hits"] - before["hits"]
        report.cache_misses = after["misses"] - before["misses"]
        report.repartitions = after["repartitions"] - before["repartitions"]
        report.cache_invalidations = after["invalidations"] - before["invalidations"]
        report.plans_computed = report.cache_misses + report.repartitions
        if tracker is not None:
            report.proactive_repartitions = tracker.proactive
            report.reactive_repartitions = tracker.reactive
            report.forecast_mispredicts = tracker.mispredicts
            if tracker.events:
                report.first_adaptation_s = tracker.events[0][0]
        return report

    def plan_requests(
        self,
        workload: Workload,
        method: Optional[str] = None,
        trace: Optional[BandwidthTrace] = None,
        memory: "MemoryModel | float | None" = None,
    ) -> List[ServingRequest]:
        """Plan every request of ``workload`` into simulator-ready form.

        The exact planning pass :meth:`serve` runs (plan cache, traces,
        per-arrival conditions) without the simulation — benchmark harnesses
        use it to price a workload once and then drive
        :class:`ServingSimulator` directly, so engine timings measure the
        engine rather than the planner.  ``memory`` applies the same
        memory-aware planning (feasibility repair, memory-keyed plan cache)
        that :meth:`serve` would.
        """
        strategy = self._strategy_for(method)
        self._memory = resolve_memory(memory)
        try:
            requests, _ = self._plan_workload(workload, strategy, None, trace)
        finally:
            self._memory = None
        return requests

    def _plan_workload(
        self,
        workload: Workload,
        strategy: PartitionStrategy,
        schedule: Optional[FaultSchedule],
        trace: Optional[BandwidthTrace],
        elastic: Optional[ElasticitySchedule] = None,
    ) -> Tuple[List[ServingRequest], Dict[str, float]]:
        """Price one request stream: ``(serving requests, ideal latency by id)``."""
        requests: List[ServingRequest] = []
        ideal_by_id: Dict[str, float] = {}
        topology = self.cluster.topology
        sample_topology = trace is None and topology.has_traced_links
        primary_device = self.cluster.device.name
        no_faults: Tuple = (frozenset(), frozenset())
        previous_down = no_faults
        for request in workload:
            down = schedule.state_at(request.arrival_s) if schedule else no_faults
            if elastic is not None:
                # Nodes parked, provisioning or drained at this arrival are
                # masked out of the planning view exactly like failed ones —
                # membership rides the degraded (masked-fingerprint) plan-
                # cache path, so a join flowing back is a fail-back drift.
                inactive = elastic.state_at(request.arrival_s)
                if inactive:
                    down = (down[0] | inactive, down[1])
            graph = request.graph or self.graph_for(request.model)
            if previous_down != down and (
                previous_down[0] - down[0] or previous_down[1] - down[1]
            ):
                self._observe_recovery(graph, strategy, previous_down, down)
            previous_down = down

            planned = None
            if down != no_faults:
                planned = self._plan_degraded(
                    graph, strategy, down, request.source, request.arrival_s, trace
                )
            if planned is not None:
                entry, condition = planned
            else:
                # Healthy deployment — or a degraded one that cannot be
                # planned at all (a whole tier down): fall back to the
                # healthy plan and let the simulator fail what must fail.
                link_mbps: Optional[Dict[str, float]] = None
                forecast: Optional[NetworkCondition] = None
                off_primary = request.source is not None and request.source != primary_device
                if trace is not None:
                    if self._calibration is not None:
                        forecast = self._observe_trace(trace, request.arrival_s)
                    condition = trace.condition_at(request.arrival_s)
                    if topology.has_traced_links:
                        # An explicit backbone trace does not switch the wires'
                        # own traces off: keep watching (and ideal-pricing) every
                        # traced link at this arrival's rates.
                        link_mbps = topology.link_bandwidths_at(request.arrival_s)
                elif sample_topology or off_primary:
                    # Trace-driven links and/or a non-primary source device: plan
                    # under the topology's view at this arrival, anchored at the
                    # wires this request actually crosses, and watch every wire
                    # for drift.
                    at_s = request.arrival_s if sample_topology else 0.0
                    condition = topology.planning_condition(at_s=at_s, source=request.source)
                    if sample_topology:
                        link_mbps = topology.link_bandwidths_at(at_s)
                else:
                    condition = self.network
                entry = self._plan_for(
                    graph,
                    condition,
                    strategy,
                    link_bandwidths=link_mbps,
                    source=request.source,
                    forecast=forecast,
                )
            requests.append(
                ServingRequest(
                    index=request.index,
                    request_id=request.request_id,
                    graph=graph,
                    plan=entry.placement,
                    profile=entry.profile,
                    condition=condition,
                    arrival_s=request.arrival_s,
                    vsm_plan=entry.vsm_plan,
                    source=request.source,
                    slo_ms=request.slo_ms,
                    priority=request.priority,
                    ideal_latency_s=entry.ideal_latency_s,
                )
            )
            ideal_by_id[request.request_id] = entry.ideal_latency_s
        return requests, ideal_by_id

    def _observe_trace(
        self, trace: BandwidthTrace, arrival_s: float
    ) -> Optional[NetworkCondition]:
        """Feed one arrival's trace sample to the predictive machinery.

        Resolves pending proactive predictions against the actual sample,
        folds it into the forecaster, and returns the horizon-ahead condition
        — or ``None`` when forecasting is off (zero horizon), the trace has
        no base condition, or fewer than two samples have been seen (a trend
        needs two points).
        """
        sample = trace.sample_at(arrival_s)
        self._adaptation_time = arrival_s
        self._adaptation_sample = sample
        if self._adaptation is not None:
            self._adaptation.observe_sample(arrival_s, sample)
        forecaster = self._forecaster
        forecaster.observe(arrival_s, sample)
        horizon = self._calibration.config.horizon_s
        if horizon <= 0.0 or forecaster.count < 2 or trace.base is None:
            return None
        return trace.base.scaled_backbone(forecaster.forecast(horizon))

    # ------------------------------------------------------------------ #
    # Memory-constrained planning: feasibility, validation, repair
    # ------------------------------------------------------------------ #
    def _validate_memory(self, workload: Workload, memory: MemoryModel) -> None:
        """Reject deployments that cannot fit the workload's cheapest model.

        The cheapest single-model placement packs the whole model onto the
        deployment's roomiest compute node, so the bar is the smallest
        model's full footprint (weights + peak activation);
        :meth:`Topology.validate` raises
        :class:`~repro.network.topology.InsufficientMemoryError` when even
        that cannot fit anywhere.
        """
        graphs: Dict[str, DnnGraph] = {}
        for request in workload:
            graph = request.graph or self.graph_for(request.model)
            graphs.setdefault(graph.name, graph)
        if not graphs:
            return
        min_bytes = min(
            memory.artifact_for(graph).total_weight_bytes
            + memory.artifact_for(graph).peak_activation_bytes
            for graph in graphs.values()
        )
        self.topology.validate(min_model_bytes=min_bytes)

    def _tier_capacities(self) -> Dict[Tier, int]:
        """Weight-cache capacity per tier: the *tightest* node of each tier.

        Planning must be conservative — a stage placed on a tier can land on
        any of its replicas, so a tier only counts as feasible when every
        member can hold the tier's share.
        """
        assert self._memory is not None
        capacities: Dict[Tier, int] = {}
        for node in self.cluster.all_nodes:
            cap = self._memory.capacity_bytes(node)
            if node.tier not in capacities or cap < capacities[node.tier]:
                capacities[node.tier] = cap
        return capacities

    def _repair_for_memory(
        self,
        graph: DnnGraph,
        placement: PlacementPlan,
        profile: LatencyProfile,
        condition: NetworkCondition,
    ) -> PlacementPlan:
        """Repair a placement that overflows a tier's weight capacity.

        When the strategy's plan fits every tier it occupies, it is kept
        untouched (the memory-free optimum stays optimal under roomy
        budgets).  Otherwise the feasible single-tier fallbacks compete on
        ``objective + weight movement`` — the paper's Θ plus the one-time
        cost of shipping compressed weights to the tier and decompressing
        them — so tight memory pushes work toward the artifact store (the
        cloud pays no transfer) unless the latency gap buys the move back.
        Returns the original placement when nothing fits anywhere; the
        serving simulator then surfaces the overflow as failed requests.
        """
        memory = self._memory
        assert memory is not None
        artifact = memory.artifact_for(graph)
        capacities = self._tier_capacities()
        evaluator = PlanEvaluator(
            profile,
            condition,
            economics=self._economics,
            weights=self.config.objective_weights,
        )
        if evaluator.memory_feasible(placement, artifact, capacities):
            return placement
        codec = memory.codec_spec
        candidates = [
            candidate
            for candidate in (
                PlacementPlan.single_tier(graph, tier) for tier in TIER_ORDER
            )
            if evaluator.memory_feasible(candidate, artifact, capacities)
        ]
        if not candidates:
            return placement
        return min(
            candidates,
            key=lambda plan: evaluator.objective(plan)
            + evaluator.weight_movement_s(plan, artifact, codec),
        )

    # ------------------------------------------------------------------ #
    # Failure handling: degraded planning, failover replanning, fail-back
    # ------------------------------------------------------------------ #
    def _resolve_faults(
        self, faults: "FaultSchedule | str | None", workload: Workload
    ) -> Optional[FaultSchedule]:
        """Resolve a schedule spec; chaos specs span the workload's arrivals."""
        if faults is None:
            return None
        return load_fault_schedule(
            faults,
            topology=self.cluster.topology,
            horizon_s=max(workload.duration_s, 1.0),
        )

    def _resolve_elasticity(
        self, elasticity: "ElasticitySchedule | str | None"
    ) -> Optional[ElasticitySchedule]:
        """Resolve an elasticity spec; empty schedules normalize to ``None``
        so the static-fleet serving path stays bit-identical."""
        if elasticity is None:
            return None
        schedule = load_elasticity_schedule(elasticity, topology=self.cluster.topology)
        return schedule if schedule else None

    def _degraded_deployment(self, down: Tuple) -> Tuple[Topology, Cluster]:
        """The masked topology and realized cluster for one failure state.

        Memoized per failure signature: chaos schedules revisit the same
        degraded shapes many times, and each shape's planning view, VSM
        cluster spec and cache fingerprint are immutable.  Raises
        :class:`~repro.network.topology.TopologyError` when the degraded
        shape can no longer serve at all.
        """
        key = (tuple(sorted(down[0])), tuple(sorted(down[1])))
        if key not in self._degraded:
            masked = self.cluster.topology.masked(down[0], down[1])
            cluster = Cluster.from_topology(
                masked, network=masked.base_network or self.config.resolve_network()
            )
            self._degraded[key] = (masked, cluster)
            while len(self._degraded) > self.DEGRADED_MEMO_ENTRIES:
                self._degraded.popitem(last=False)
        else:
            self._degraded.move_to_end(key)
        return self._degraded[key]

    def _plan_degraded(
        self,
        graph: DnnGraph,
        strategy: PartitionStrategy,
        down: Tuple,
        source: Optional[str],
        at_s: float,
        trace: Optional[BandwidthTrace],
    ) -> Optional[Tuple[CachedPlan, NetworkCondition]]:
        """Plan ``graph`` against the deployment as degraded by ``down``.

        Returns ``None`` when the degraded deployment cannot be planned (a
        whole compute tier down, the cloud unreachable); callers decide
        whether that means falling back to the healthy plan or failing the
        request.
        """
        try:
            masked, _ = self._degraded_deployment(down)
        except TopologyError:
            return None
        if source is not None and source in down[0]:
            # The pinned source device itself is dead; any plan is moot (the
            # simulator fails the request), so anchor at the primary device.
            source = None
        try:
            if trace is not None:
                condition = trace.condition_at(at_s)
            else:
                condition = masked.planning_condition(
                    at_s=at_s if masked.has_traced_links else 0.0, source=source
                )
        except TopologyError:
            return None
        entry = self._plan_for(
            graph, condition, strategy, source=source, deployment=down
        )
        return entry, condition

    def _make_replanner(self, strategy: PartitionStrategy, trace: Optional[BandwidthTrace]):
        """The failover callback the simulator invokes on aborted requests.

        Re-plans the request's model against the topology as degraded *at the
        moment of the failure* — through the plan cache, so repeated failovers
        onto the same degraded shape amortize — and returns the freshly
        planned request, or ``None`` when the degraded deployment cannot
        serve it (the simulator then records the request as failed).
        """

        def replan(request: ServingRequest, now_s: float, down_nodes, down_links):
            if request.source is not None and request.source in down_nodes:
                return None
            down = (frozenset(down_nodes), frozenset(down_links))
            if down[0] or down[1]:
                planned = self._plan_degraded(
                    request.graph, strategy, down, request.source, now_s, trace
                )
                if planned is None:
                    return None
                entry, condition = planned
            else:
                # Everything recovered before the retry fired: the healthy
                # plan is the right plan again.
                condition = trace.condition_at(now_s) if trace is not None else self.network
                entry = self._plan_for(
                    request.graph, condition, strategy, source=request.source
                )
            return ServingRequest(
                index=request.index,
                request_id=request.request_id,
                graph=request.graph,
                plan=entry.placement,
                profile=entry.profile,
                condition=condition,
                arrival_s=request.arrival_s,
                vsm_plan=entry.vsm_plan,
                source=request.source,
                slo_ms=request.slo_ms,
                priority=request.priority,
                ideal_latency_s=entry.ideal_latency_s,
            )

        return replan

    def _observe_recovery(
        self,
        graph: DnnGraph,
        strategy: PartitionStrategy,
        previous_down: Tuple,
        down: Tuple,
    ) -> None:
        """Treat a recovery as drift: fail back from the degraded plan.

        When a node or link returns, the stream that was planned against the
        previous degraded shape observes the restored planning view through
        its :class:`~repro.core.dynamic.DynamicRepartitioner`.  A triggered
        adaptation fires the cache's invalidation listener, retiring the
        stale degraded entry — subsequent requests hit the healthy (or
        less-degraded) cached plan instead of a plan that still avoids a
        node that is back.
        """
        try:
            masked_prev, _ = self._degraded_deployment(previous_down)
        except TopologyError:
            return
        entry = self.plan_cache.latest_for(
            self._graph_token(graph),
            strategy.name,
            self.config.plan_key(),
            masked_prev.fingerprint(),
        )
        if entry is None or entry.repartitioner is None:
            return
        try:
            if down[0] or down[1]:
                restored, _ = self._degraded_deployment(down)
            else:
                restored = self.cluster.topology
            condition = restored.planning_condition()
        except TopologyError:
            return
        entry.repartitioner.thresholds = self.plan_cache.thresholds
        entry.repartitioner.observe(network=condition)

    # ------------------------------------------------------------------ #
    def graph_for(self, model: str) -> DnnGraph:
        """Resolve (and memoize) a model name through the zoo."""
        if model not in self._graphs:
            from repro.models.zoo import build_model

            self._graphs[model] = build_model(model)
        return self._graphs[model]

    def _profile_for(self, graph: DnnGraph) -> LatencyProfile:
        """Per-graph latency profile, built once per serving lifetime."""
        token = self._graph_token(graph)
        if token not in self._profiles:
            self._profiles[token] = self.build_profile(graph)
        return self._profiles[token]

    def _graph_token(self, graph: DnnGraph) -> str:
        """Cache identity of a graph: its name plus its object identity.

        Keying by name alone would collide two structurally different graphs
        that happen to share a name (easy to do with hand-built graphs); the
        id is safe because every cache entry and profile memo keeps a strong
        reference to its graph, so a live token can never be reused.
        """
        self._graphs.setdefault(f"{graph.name}#{id(graph)}", graph)
        return f"{graph.name}#{id(graph)}"

    def _strategy_for(self, method: Optional[str] = None) -> PartitionStrategy:
        """Resolve a method name through the registry.

        ``None`` means the configured D3 method (``hpa_vsm``, or ``hpa`` when
        VSM is disabled).  HPA-family strategies are rebuilt with this
        system's :class:`~repro.core.hpa.HPAConfig` so the facade's heuristic
        switches keep applying.
        """
        name = method or ("hpa_vsm" if self.config.enable_vsm else "hpa")
        strategy = get_strategy(name)
        if type(strategy) in (HpaStrategy, HpaVsmStrategy):
            # Only the stock D3 methods inherit the facade's HPAConfig;
            # custom subclasses keep whatever their factory configured.
            strategy = type(strategy)(self.config.hpa)
        return strategy

    def _cluster_spec(self, cluster: Optional[Cluster] = None) -> ClusterSpec:
        # ``from_cluster`` derives the TierEconomics from the cluster's own
        # topology, so degraded (masked) deployments price their surviving
        # primaries rather than the healthy fleet's.
        return ClusterSpec.from_cluster(
            cluster or self.cluster,
            tile_grid=tuple(self.config.tile_grid),
            objective_weights=self.config.objective_weights,
        )

    @staticmethod
    def _require_support(strategy: PartitionStrategy, graph: DnnGraph) -> None:
        if not strategy.supports(graph):
            raise StrategyUnsupportedError(
                f"method {strategy.name!r} does not support {graph.name} "
                f"(strategy.supports(graph) is False)"
            )

    def _plan_for(
        self,
        graph: DnnGraph,
        condition: NetworkCondition,
        strategy: Optional[PartitionStrategy] = None,
        link_bandwidths: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        deployment: Optional[Tuple] = None,
        forecast: Optional[NetworkCondition] = None,
    ) -> CachedPlan:
        """Plan-cache lookup with threshold-guarded drift adaptation.

        ``forecast`` (the calibrated serve path's horizon-ahead condition)
        arms the *proactive* trigger: an in-band current condition whose
        forecast breaches the band repartitions now, before the drift lands.

        ``link_bandwidths`` (Mbps keyed by link id, sampled from a traced
        topology at the request's arrival) extends both the in-band guard and
        the repartitioner's drift detection to individual physical wires —
        including on exact key matches, where a wire off the primary planning
        routes can drift without moving the key.  ``source`` is the request's
        origin device; its ideal-latency baseline is simulated from there.
        ``deployment`` is a failure signature ``(down_nodes, down_links)``:
        the plan is computed for (and keyed by the fingerprint of) the masked
        topology, so degraded plans never poison the healthy cache.
        """
        strategy = strategy or self._strategy_for()
        cache = self.plan_cache
        plan_cluster: Optional[Cluster] = None
        if deployment is not None:
            masked, plan_cluster = self._degraded_deployment(deployment)
            topology_fp = masked.fingerprint()
        else:
            topology_fp = self.topology.fingerprint()
        config_key = self.config.plan_key()
        if self._memory is not None:
            # Memory-constrained plans may be repaired toward different
            # placements; key them separately so they never alias (the token
            # widens the tuple, so memory-free keys cannot collide with it).
            config_key = config_key + (("memory",) + self._memory.key(),)
        key = PlanKey.build(
            self._graph_token(graph),
            condition,
            config_key,
            strategy.name,
            topology=topology_fp,
        )
        entry = cache.get(key, condition, link_bandwidths)
        if entry is not None:
            return entry

        self._require_support(strategy, graph)
        profile = self._profile_for(graph)
        base = cache.latest_for(key.model, key.strategy, key.config, key.topology)
        if base is not None:
            if cache.within_band(base, condition, link_bandwidths):
                if (
                    forecast is not None
                    and base.repartitioner is not None
                    and base.repartitioner.forecast_breach(forecast)
                ):
                    # Predictive trigger: the current sample is still in
                    # band, but the forecast says it won't be within the
                    # horizon — adapt now, so the corrected plan is already
                    # serving when the drift lands.
                    base.repartitioner.thresholds = cache.thresholds
                    base.repartitioner.calibration = self._calibration
                    event = base.repartitioner.observe(
                        network=forecast, link_bandwidths=link_bandwidths
                    )
                    if event.triggered:
                        if self._adaptation is not None:
                            self._adaptation.record_proactive(
                                self._adaptation_time,
                                self._calibration.config.horizon_s,
                                self._adaptation_sample,
                            )
                        return self._store_plan(
                            cache,
                            key,
                            graph,
                            profile,
                            condition,
                            base.repartitioner,
                            strategy,
                            repartitioned=True,
                            link_bandwidths=link_bandwidths,
                            source=source,
                            plan_cluster=plan_cluster,
                        )
                cache.record_alias(key, base)
                return base
            if base.repartitioner is None:
                # The method has no local re-partitioning: degrade gracefully
                # by re-planning from scratch under the drifted condition (the
                # full re-solve DADS et al. would have to perform anyway).
                cache.invalidate(base.key)
                if self._adaptation is not None:
                    self._adaptation.record_reactive(self._adaptation_time)
                return self._store_strategy_plan(
                    cache,
                    key,
                    graph,
                    profile,
                    condition,
                    strategy,
                    repartitioned=True,
                    link_bandwidths=link_bandwidths,
                    source=source,
                    plan_cluster=plan_cluster,
                )
            # Out of band: the paper's local re-partitioning adapts the plan
            # (the listener registered by the cache invalidates the old entry).
            base.repartitioner.thresholds = cache.thresholds
            if self._calibration is not None:
                base.repartitioner.calibration = self._calibration
            event = base.repartitioner.observe(
                network=condition, link_bandwidths=link_bandwidths
            )
            if not event.triggered:
                # The repartitioner judged the drift tolerable after all (its
                # per-vertex view can be coarser than the link-level band);
                # keep serving the cached plan rather than storing a phantom
                # "adaptation" that changed nothing.
                cache.record_alias(key, base)
                return base
            if self._adaptation is not None:
                self._adaptation.record_reactive(self._adaptation_time)
            return self._store_plan(
                cache,
                key,
                graph,
                profile,
                condition,
                base.repartitioner,
                strategy,
                repartitioned=True,
                link_bandwidths=link_bandwidths,
                source=source,
                plan_cluster=plan_cluster,
            )

        if not isinstance(strategy, HpaStrategy):
            # Every non-HPA-family method — including custom strategies that
            # merely claim drift support — plans through its own plan(); the
            # DynamicRepartitioner below *is* HPA and would silently
            # substitute an HPA placement under the strategy's name.
            return self._store_strategy_plan(
                cache, key, graph, profile, condition, strategy,
                link_bandwidths=link_bandwidths, source=source,
                plan_cluster=plan_cluster,
            )

        repartitioner = DynamicRepartitioner(
            graph,
            profile,
            condition,
            thresholds=cache.thresholds,
            config=strategy.hpa_config,
            economics=self._economics,
            weights=self.config.objective_weights,
        )
        if self._calibration is not None:
            repartitioner.calibration = self._calibration
        return self._store_plan(
            cache, key, graph, profile, condition, repartitioner, strategy,
            link_bandwidths=link_bandwidths, source=source,
            plan_cluster=plan_cluster,
        )

    def _store_plan(
        self,
        cache: PlanCache,
        key: PlanKey,
        graph: DnnGraph,
        profile: LatencyProfile,
        condition: NetworkCondition,
        repartitioner: DynamicRepartitioner,
        strategy: HpaStrategy,
        repartitioned: bool = False,
        link_bandwidths: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        plan_cluster: Optional[Cluster] = None,
    ) -> CachedPlan:
        # Snapshot the plan: the repartitioner mutates its own copy in place
        # on the next drift, and cached entries must stay frozen.
        placement = repartitioner.plan.copy()
        if self._memory is not None:
            placement = self._repair_for_memory(graph, placement, profile, condition)
        vsm_plan = strategy.separate(graph, placement, self._cluster_spec(plan_cluster))
        ideal = self._ideal_latency(
            graph, placement, profile, vsm_plan, condition, link_bandwidths, source,
            plan_cluster,
        )
        if link_bandwidths:
            # The rates this plan was computed under become the per-link
            # reference the repartitioner judges future drift against.
            repartitioner.reference_link_mbps = dict(link_bandwidths)
        entry = CachedPlan(
            key=key,
            graph=graph,
            profile=profile,
            placement=placement,
            vsm_plan=vsm_plan,
            condition=condition,
            ideal_latency_s=ideal,
            repartitioner=repartitioner,
            link_mbps=dict(link_bandwidths) if link_bandwidths else None,
        )
        return cache.store(entry, repartitioned=repartitioned)

    def _store_strategy_plan(
        self,
        cache: PlanCache,
        key: PlanKey,
        graph: DnnGraph,
        profile: LatencyProfile,
        condition: NetworkCondition,
        strategy: PartitionStrategy,
        repartitioned: bool = False,
        link_bandwidths: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        plan_cluster: Optional[Cluster] = None,
    ) -> CachedPlan:
        """Cache one non-adaptive strategy's plan for ``condition``."""
        partition = strategy.plan(graph, profile, condition, self._cluster_spec(plan_cluster))
        placement = partition.placement
        vsm_plan = partition.vsm_plan
        if self._memory is not None:
            repaired = self._repair_for_memory(graph, placement, profile, condition)
            if repaired is not placement:
                # The strategy's VSM tiling was derived from the original
                # placement; a repaired plan runs untiled rather than with a
                # tiling for tiers it no longer occupies.
                placement = repaired
                vsm_plan = None
        ideal = self._ideal_latency(
            graph, placement, profile, vsm_plan, condition,
            link_bandwidths, source, plan_cluster,
        )
        entry = CachedPlan(
            key=key,
            graph=graph,
            profile=profile,
            placement=placement,
            vsm_plan=vsm_plan,
            condition=condition,
            ideal_latency_s=ideal,
            repartitioner=None,
            link_mbps=dict(link_bandwidths) if link_bandwidths else None,
        )
        return cache.store(entry, repartitioned=repartitioned)

    def _ideal_latency(
        self,
        graph: DnnGraph,
        placement: PlacementPlan,
        profile: LatencyProfile,
        vsm_plan: Optional[VSMPlan],
        condition: NetworkCondition,
        link_bandwidths: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        plan_cluster: Optional[Cluster] = None,
    ) -> float:
        """One-shot latency of a plan on an idle scratch cluster.

        The scratch one-shot always executes at simulation time zero, so a
        traced topology's wires are frozen at ``link_bandwidths`` — the rates
        sampled at the request's arrival — lest the baseline be priced at the
        trace's t=0 rates and corrupt every queueing-delay figure.  ``source``
        starts the inference from the request's own device; ``plan_cluster``
        (a degraded deployment) substitutes for the healthy cluster so a
        failover plan's baseline reflects the surviving machines.
        """
        scratch = self._scratch_cluster(condition, link_bandwidths, plan_cluster)
        report = DistributedExecutor(
            graph, placement, profile, scratch, vsm_plan, source=source
        ).execute()
        return report.end_to_end_latency_s

    def _scratch_cluster(
        self,
        condition: NetworkCondition,
        link_bandwidths: Optional[Dict[str, float]] = None,
        base_cluster: Optional[Cluster] = None,
    ) -> Cluster:
        """An idle cluster under ``condition``, traced wires frozen."""
        base = base_cluster or self.cluster
        topology = base.topology
        if not link_bandwidths or not topology.has_traced_links:
            return base.with_network(condition)
        frozen_links = [
            spec
            if not isinstance(spec.bandwidth, BandwidthTrace)
            else LinkSpec(spec.name, spec.a, spec.b, link_bandwidths[spec.name])
            for spec in topology.links.values()
        ]
        frozen = Topology(
            topology.name,
            list(topology.nodes.values()),
            frozen_links,
            base_network=condition,
        )
        return Cluster.from_topology(frozen, network=condition)
