"""The D3 system facade.

Wires the full pipeline of Fig. 2 together:

``profiler -> regression model -> HPA -> VSM -> online execution engine``

so that examples, experiments and benchmarks can obtain an end-to-end result
with a single call::

    system = D3System(D3Config(network="wifi", num_edge_nodes=4))
    result = system.run(build_model("vgg16"))
    print(result.report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlacementPlan, PlanEvaluator, PlanMetrics, Tier
from repro.core.vsm import VerticalSeparationModule, VSMPlan
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition, get_condition
from repro.profiling.hardware import HardwareSpec
from repro.profiling.profiler import LatencyProfile, Profiler
from repro.profiling.regression import LatencyRegressionModel
from repro.runtime.cluster import Cluster
from repro.runtime.executor import DistributedExecutor
from repro.runtime.simulator import ExecutionReport


@dataclass
class D3Config:
    """Configuration of the D3 facade.

    Attributes
    ----------
    network:
        Network condition name (Table III) or an explicit condition object.
    num_edge_nodes:
        Edge nodes available for VSM parallelism (the paper uses 4).
    tile_grid:
        The ``A x B`` VSM separation decision (the paper uses 2 x 2).
    enable_vsm:
        Disable to obtain the "HPA only" configuration of Figs. 9-11.
    use_regression:
        Estimate per-layer latencies with the regression model (the paper's
        approach); when ``False`` the profiler's direct measurements are used.
    profiler_noise_std:
        Measurement noise of the profiler.
    profiler_repeats:
        Number of repeated measurements averaged per layer.
    seed:
        Seed for the profiler's random generator.
    hpa:
        Heuristic switches of the horizontal partition algorithm.
    calibration_models:
        Extra graphs profiled to train the regression model; the target graph
        is always included.
    """

    network: NetworkCondition | str = "wifi"
    num_edge_nodes: int = 1
    tile_grid: Tuple[int, int] = (2, 2)
    enable_vsm: bool = True
    use_regression: bool = True
    profiler_noise_std: float = 0.03
    profiler_repeats: int = 3
    seed: int = 0
    hpa: HPAConfig = field(default_factory=HPAConfig)
    calibration_models: Sequence[DnnGraph] = ()

    def resolve_network(self) -> NetworkCondition:
        if isinstance(self.network, str):
            return get_condition(self.network)
        return self.network


@dataclass
class D3Result:
    """Everything produced by one D3 run for one model."""

    graph: DnnGraph
    network: NetworkCondition
    profile: LatencyProfile
    placement: PlacementPlan
    vsm_plan: Optional[VSMPlan]
    metrics: PlanMetrics
    report: ExecutionReport

    @property
    def end_to_end_latency_s(self) -> float:
        """Simulated end-to-end inference latency (the headline metric)."""
        return self.report.end_to_end_latency_s

    @property
    def bytes_to_cloud(self) -> int:
        """Per-image backbone traffic to the cloud."""
        return self.report.bytes_to_cloud

    def tier_times_ms(self) -> Dict[Tier, float]:
        """Per-tier busy time in milliseconds (the quantity of Table II)."""
        return {tier: busy * 1e3 for tier, busy in self.report.tier_busy_seconds().items()}


class D3System:
    """End-to-end D3: profile, estimate, partition, separate, execute."""

    def __init__(self, config: Optional[D3Config] = None) -> None:
        self.config = config or D3Config()
        self.network = self.config.resolve_network()
        self.cluster = Cluster.build(
            network=self.network, num_edge_nodes=self.config.num_edge_nodes
        )
        self.profiler = Profiler(
            noise_std=self.config.profiler_noise_std, seed=self.config.seed
        )
        self._regression: Optional[LatencyRegressionModel] = None

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def build_profile(self, graph: DnnGraph) -> LatencyProfile:
        """Produce the per-vertex, per-tier latency estimates for ``graph``."""
        tier_hardware: Dict[str, HardwareSpec] = self.cluster.tier_hardware()
        if not self.config.use_regression:
            return self.profiler.build_profile_from_measurements(
                graph, tier_hardware, repeats=self.config.profiler_repeats
            )
        regression = self.train_regression(graph)
        return self.profiler.build_profile_from_regression(graph, tier_hardware, regression)

    def train_regression(self, graph: DnnGraph) -> LatencyRegressionModel:
        """Train (or reuse) the latency regression model."""
        if self._regression is not None:
            return self._regression
        calibration = list(self.config.calibration_models) or []
        graphs = [graph, *calibration]
        samples = self.profiler.collect_training_samples(
            graphs,
            list(self.cluster.tier_hardware().values()),
            repeats=self.config.profiler_repeats,
        )
        self._regression = LatencyRegressionModel().fit(samples)
        return self._regression

    # ------------------------------------------------------------------ #
    # Partitioning and execution
    # ------------------------------------------------------------------ #
    def partition(self, graph: DnnGraph, profile: Optional[LatencyProfile] = None) -> PlacementPlan:
        """Run HPA for ``graph`` under the configured conditions."""
        profile = profile or self.build_profile(graph)
        partitioner = HorizontalPartitioner(profile, self.network, self.config.hpa)
        return partitioner.partition(graph)

    def separate(self, graph: DnnGraph, placement: PlacementPlan) -> Optional[VSMPlan]:
        """Run VSM over the edge-resident convolutional runs."""
        if not self.config.enable_vsm or self.cluster.num_edge_nodes < 2:
            return None
        rows, cols = self.config.tile_grid
        vsm = VerticalSeparationModule(grid_rows=rows, grid_cols=cols)
        plan = vsm.plan(graph, placement, Tier.EDGE)
        return plan if plan.runs else None

    def run(self, graph: DnnGraph) -> D3Result:
        """Full pipeline: profile, partition, separate, simulate one inference."""
        profile = self.build_profile(graph)
        placement = self.partition(graph, profile)
        vsm_plan = self.separate(graph, placement)
        evaluator = PlanEvaluator(profile, self.network)
        metrics = evaluator.metrics(placement)
        executor = DistributedExecutor(graph, placement, profile, self.cluster, vsm_plan)
        report = executor.execute()
        return D3Result(
            graph=graph,
            network=self.network,
            profile=profile,
            placement=placement,
            vsm_plan=vsm_plan,
            metrics=metrics,
            report=report,
        )
