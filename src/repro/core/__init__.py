"""D3's core contribution: HPA, VSM, dynamic re-partitioning and the facade.

* :mod:`repro.core.placement` — the tier model (``device ≻ edge ≻ cloud``),
  placement plans and the latency/communication objective;
* :mod:`repro.core.hpa` — the Horizontal Partition Algorithm (Algorithm 1);
* :mod:`repro.core.vsm` — the Vertical Separation Module (Algorithm 2) with
  the reverse tile calculation of Eqs. (3)–(5);
* :mod:`repro.core.dynamic` — threshold-guarded local re-partitioning;
* :mod:`repro.core.strategy` — the pluggable :class:`PartitionStrategy` API
  and registry unifying D3 and every baseline method;
* :mod:`repro.core.d3` — the end-to-end D3 system facade.
"""

from repro.core.placement import (
    PlacementPlan,
    PlanEvaluator,
    PlanMetrics,
    Tier,
    TIER_ORDER,
    tiers_at_or_after,
)
from repro.core.hpa import HorizontalPartitioner, HPAConfig
from repro.core.vsm import (
    FusedTileStack,
    TileRegion,
    VerticalSeparationModule,
    VSMPlan,
    reverse_tile_calculation,
)
from repro.core.dynamic import DynamicRepartitioner, RepartitionEvent, RepartitionThresholds
from repro.core.plan_cache import CachedPlan, PlanCache, PlanKey
from repro.core.strategy import (
    ClusterSpec,
    HpaStrategy,
    HpaVsmStrategy,
    PartitionPlan,
    PartitionStrategy,
    StrategyUnsupportedError,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
)

# The D3 facade pulls in the runtime subpackage, which itself imports the tier
# model from this package; loading it lazily keeps `import repro.runtime`
# usable on its own without a circular import.
_LAZY_EXPORTS = {"D3System", "D3Config", "D3Result"}


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        from repro.core import d3

        return getattr(d3, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CachedPlan",
    "ClusterSpec",
    "D3Config",
    "D3Result",
    "D3System",
    "DynamicRepartitioner",
    "HpaStrategy",
    "HpaVsmStrategy",
    "PartitionPlan",
    "PartitionStrategy",
    "PlanCache",
    "PlanKey",
    "RepartitionThresholds",
    "StrategyUnsupportedError",
    "UnknownStrategyError",
    "FusedTileStack",
    "HPAConfig",
    "HorizontalPartitioner",
    "PlacementPlan",
    "PlanEvaluator",
    "PlanMetrics",
    "RepartitionEvent",
    "TIER_ORDER",
    "Tier",
    "TileRegion",
    "VSMPlan",
    "VerticalSeparationModule",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "reverse_tile_calculation",
    "tiers_at_or_after",
]
