"""Dynamic, local re-partitioning (section III-E, last paragraph).

Resource and network fluctuations change the per-layer processing times and
transfer delays, which can invalidate a placement.  Re-running HPA over the
whole DAG on every fluctuation is wasteful, so D3:

* guards re-partitioning with upper/lower *thresholds* — only when a monitored
  quantity leaves the band ``[lower, upper]`` (relative to the value used for
  the current plan) is anything recomputed, and
* recomputes only *locally*: the vertices whose optimal tier may have changed,
  their SIS vertices, their direct successors and the SIS vertices of those
  successors.

The :class:`DynamicRepartitioner` tracks how many vertices each adaptation
re-evaluated, so the ablation benchmark can compare local updates against full
re-partitioning both in plan quality (latency regret) and in work done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlacementPlan, PlanEvaluator, Tier
from repro.graph.dag import DnnGraph, Vertex
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


@dataclass(frozen=True)
class RepartitionThresholds:
    """Relative-change band outside which re-partitioning is triggered.

    A monitored ratio ``new / reference`` inside ``[lower, upper]`` is ignored.
    """

    lower: float = 0.75
    upper: float = 1.25

    def __post_init__(self) -> None:
        if not 0 < self.lower <= 1.0:
            raise ValueError("lower threshold must be in (0, 1]")
        if self.upper < 1.0:
            raise ValueError("upper threshold must be >= 1")

    def exceeded(self, reference: float, new: float) -> bool:
        """True when the relative change leaves the tolerated band."""
        if reference <= 0:
            return new > 0
        ratio = new / reference
        return ratio < self.lower or ratio > self.upper


@dataclass
class RepartitionEvent:
    """Outcome of one adaptation step."""

    triggered: bool
    changed_vertices: List[int] = field(default_factory=list)
    reevaluated_vertices: int = 0
    plan: Optional[PlacementPlan] = None
    latency_before_s: float = 0.0
    latency_after_s: float = 0.0

    @property
    def improvement_s(self) -> float:
        return self.latency_before_s - self.latency_after_s


class DynamicRepartitioner:
    """Maintain a placement plan under drifting latencies and bandwidths.

    Parameters
    ----------
    graph:
        The partitioned DNN.
    profile, network:
        The conditions the initial plan was computed for (the references the
        thresholds compare against).
    thresholds:
        The tolerated relative-change band.
    config:
        HPA heuristic configuration used for both the initial plan and the
        local updates.
    economics, weights:
        Optional multi-objective configuration forwarded to every
        :class:`~repro.core.hpa.HorizontalPartitioner` this repartitioner
        constructs, so local updates keep optimising the same weighted
        objective the initial plan was computed under.
    """

    def __init__(
        self,
        graph: DnnGraph,
        profile: LatencyProfile,
        network: NetworkCondition,
        thresholds: Optional[RepartitionThresholds] = None,
        config: Optional[HPAConfig] = None,
        economics=None,
        weights=None,
    ) -> None:
        self.graph = graph
        self.thresholds = thresholds or RepartitionThresholds()
        self.config = config or HPAConfig()
        self.economics = economics
        self.weights = weights
        self.reference_profile = profile
        self.reference_network = network
        self.current_profile = profile
        self.current_network = network
        #: Per-link reference bandwidths (Mbps, keyed by link id) for
        #: topology-aware drift detection; ``None`` until first observed.
        self.reference_link_mbps: Optional[Dict[str, float]] = None
        #: Optional :class:`~repro.runtime.calibration.OnlineCostCalibrator`
        #: attached by the serving layer; the adaptation evaluators then
        #: price plans with observed rather than analytic costs.  Tier
        #: reassignment itself stays analytic (HPA is deterministic and the
        #: calibrated evaluator only changes the reported latencies).
        self.calibration = None
        partitioner = self._partitioner(profile, network)
        self.plan = partitioner.partition(graph)
        self._listeners: List[Callable[[RepartitionEvent], None]] = []

    def _partitioner(
        self, profile: LatencyProfile, network: NetworkCondition
    ) -> HorizontalPartitioner:
        """An HPA instance carrying this repartitioner's objective."""
        return HorizontalPartitioner(
            profile,
            network,
            self.config,
            economics=self.economics,
            weights=self.weights,
        )

    # ------------------------------------------------------------------ #
    # Invalidation hooks
    # ------------------------------------------------------------------ #
    def add_listener(self, callback: Callable[[RepartitionEvent], None]) -> None:
        """Register a callback fired whenever a re-partitioning triggers.

        This is how downstream caches (the serving layer's plan cache) learn
        that the plan they hold has been invalidated by drifting conditions.
        """
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[RepartitionEvent], None]) -> None:
        """Deregister a callback (no-op when it was never registered)."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _notify(self, event: RepartitionEvent) -> None:
        # Iterate a copy: a listener may deregister itself (the plan cache's
        # invalidator does) without disturbing the delivery of this event.
        for callback in list(self._listeners):
            callback(event)

    # ------------------------------------------------------------------ #
    # Change detection
    # ------------------------------------------------------------------ #
    def _bandwidth_changed(self, network: NetworkCondition) -> bool:
        pairs = (("device", "edge"), ("edge", "cloud"), ("device", "cloud"))
        for src, dst in pairs:
            if self.thresholds.exceeded(
                self.reference_network.bandwidth_mbps(src, dst),
                network.bandwidth_mbps(src, dst),
            ):
                return True
        return False

    def forecast_breach(self, forecast: NetworkCondition) -> bool:
        """True when a *predicted* condition would leave the reactive band.

        The predictive serving path asks this with the forecaster's
        horizon-ahead condition: an affirmative answer triggers the same
        local update the reactive rule would perform later, just earlier.
        """
        return self._bandwidth_changed(forecast)

    def _links_changed(self, link_bandwidths: Optional[Dict[str, float]]) -> bool:
        """True when any physical link's rate left the band.

        Per-link watching is strictly finer than the tier-pair check: on a
        multi-hop or multi-wire topology a single congested link can stay
        invisible in the harmonic tier-pair rate while the wire itself (and
        every transfer crossing it) slowed beyond the threshold.
        """
        if not link_bandwidths:
            return False
        if self.reference_link_mbps is None:
            # First observation seeds the reference; nothing to compare yet.
            self.reference_link_mbps = dict(link_bandwidths)
            return False
        return any(
            self.thresholds.exceeded(self.reference_link_mbps.get(link_id, mbps), mbps)
            for link_id, mbps in link_bandwidths.items()
        )

    def _drifted_vertices(self, profile: LatencyProfile) -> List[int]:
        """Vertices whose latency on their assigned tier left the band."""
        drifted = []
        for vertex in self.graph:
            tier = self.plan.tier_of(vertex.index)
            reference = self.reference_profile.get(vertex.index, tier)
            new = profile.get(vertex.index, tier)
            if self.thresholds.exceeded(reference, new):
                drifted.append(vertex.index)
        return drifted

    # ------------------------------------------------------------------ #
    # Local update
    # ------------------------------------------------------------------ #
    def _local_scope(self, seeds: Sequence[int]) -> List[Vertex]:
        """The vertices HPA re-evaluates for a set of changed vertices.

        The paper's rule: the changed vertex itself, its SIS vertices, its
        direct successors, and the SIS vertices of its direct successors.
        """
        scope: Set[int] = set()
        for seed in seeds:
            scope.add(seed)
            for sibling in self.graph.sis_vertices(seed):
                scope.add(sibling.index)
            for successor in self.graph.successors(seed):
                scope.add(successor.index)
                for sibling in self.graph.sis_vertices(successor.index):
                    scope.add(sibling.index)
        ordered = [v for v in self.graph.topological_order() if v.index in scope]
        return ordered

    def _reassign_locally(
        self,
        scope: Sequence[Vertex],
        partitioner: HorizontalPartitioner,
    ) -> List[int]:
        """Recompute the optimal tier of each vertex in ``scope`` in topo order."""
        changed = []
        for vertex in scope:
            if not self.graph.predecessors(vertex.index):
                continue  # the virtual input vertex stays on the device
            new_tier = partitioner.optimal_tier(self.graph, self.plan, vertex)
            if new_tier != self.plan.tier_of(vertex.index) and self._move_is_safe(vertex, new_tier):
                self.plan.assign(vertex.index, new_tier)
                changed.append(vertex.index)
        return changed

    def _move_is_safe(self, vertex: Vertex, new_tier: Tier) -> bool:
        """Moving a vertex must not violate Proposition 1 for its successors."""
        for successor in self.graph.successors(vertex.index):
            if successor.index not in self.plan.assignments:
                continue
            if self.plan.tier_of(successor.index).position < new_tier.position:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def observe(
        self,
        profile: Optional[LatencyProfile] = None,
        network: Optional[NetworkCondition] = None,
        link_bandwidths: Optional[Dict[str, float]] = None,
    ) -> RepartitionEvent:
        """Feed new runtime conditions; adapt the plan locally if needed.

        ``link_bandwidths`` (Mbps keyed by topology link id) enables
        per-physical-link drift detection on arbitrary topologies; the first
        observation records the reference rates.
        """
        profile = profile or self.current_profile
        network = network or self.current_network
        self.current_profile = profile
        self.current_network = network

        evaluator_before = PlanEvaluator(profile, network, calibration=self.calibration)
        latency_before = evaluator_before.objective(self.plan)

        drifted = self._drifted_vertices(profile)
        bandwidth_drift = self._bandwidth_changed(network) or self._links_changed(
            link_bandwidths
        )
        if not drifted and not bandwidth_drift:
            return RepartitionEvent(
                triggered=False,
                plan=self.plan,
                latency_before_s=latency_before,
                latency_after_s=latency_before,
            )

        if bandwidth_drift:
            # Bandwidth affects every cut edge: seed the scope with the
            # endpoints of the current cut.
            drifted = sorted(
                set(drifted)
                | {src.index for src, _ in self.plan.cut_edges()}
                | {dst.index for _, dst in self.plan.cut_edges()}
            )

        partitioner = self._partitioner(profile, network)
        scope = self._local_scope(drifted)
        changed = self._reassign_locally(scope, partitioner)
        self.plan.validate()

        latency_after = PlanEvaluator(
            profile, network, calibration=self.calibration
        ).objective(self.plan)
        # Accept the new conditions as the reference going forward.
        self.reference_profile = profile
        self.reference_network = network
        if link_bandwidths:
            self.reference_link_mbps = dict(link_bandwidths)
        event = RepartitionEvent(
            triggered=True,
            changed_vertices=changed,
            reevaluated_vertices=len(scope),
            plan=self.plan,
            latency_before_s=latency_before,
            latency_after_s=latency_after,
        )
        self._notify(event)
        return event

    def observe_topology(
        self,
        topology,
        at_s: float = 0.0,
        profile: Optional[LatencyProfile] = None,
    ) -> RepartitionEvent:
        """Sample a :class:`~repro.network.topology.Topology` at ``at_s``.

        Every declared link is sampled (static rates, trace values, inherited
        tier-pair rates) and watched individually; the planning-view condition
        derived from those samples feeds the usual tier-pair check.  Listeners
        registered with :meth:`add_listener` — the plan cache's invalidators —
        therefore fire on per-link drift, not just backbone drift.
        """
        # Inherited links price against the *observed* topology's own base
        # condition (falling back to our reference only when it has none):
        # pricing them against the reference would compare the reference with
        # itself and mask base-condition drift entirely.
        base = topology.base_network or self.reference_network
        link_mbps = topology.link_bandwidths_at(at_s, base=base)
        condition = topology.planning_condition(base=base, at_s=at_s)
        return self.observe(profile=profile, network=condition, link_bandwidths=link_mbps)

    def full_repartition(self) -> RepartitionEvent:
        """Re-run HPA from scratch under the current conditions (the baseline
        the paper's local updates are compared against)."""
        evaluator = PlanEvaluator(self.current_profile, self.current_network)
        latency_before = evaluator.objective(self.plan)
        partitioner = self._partitioner(self.current_profile, self.current_network)
        old_assignments = dict(self.plan.assignments)
        self.plan = partitioner.partition(self.graph)
        changed = [
            index
            for index, tier in self.plan.assignments.items()
            if old_assignments.get(index) != tier
        ]
        latency_after = evaluator.objective(self.plan)
        self.reference_profile = self.current_profile
        self.reference_network = self.current_network
        event = RepartitionEvent(
            triggered=True,
            changed_vertices=changed,
            reevaluated_vertices=len(self.graph),
            plan=self.plan,
            latency_before_s=latency_before,
            latency_after_s=latency_after,
        )
        self._notify(event)
        return event
