"""The unified partitioning-strategy API.

The paper's evaluation is a matrix of *methods* (device/edge/cloud-only,
Neurosurgeon, DADS, HPA, HPA+VSM) crossed with models and network conditions.
Historically each method had a bespoke entry point and result type; this
module gives them one pluggable interface so that any method can be dropped
into the one-shot runner, the discrete-event serving simulator, the experiment
harnesses and the CLI without per-method glue:

* :class:`PartitionStrategy` — the protocol every method implements:
  ``name``, ``supports(graph)`` and ``plan(graph, profile, network,
  cluster_spec) -> PartitionPlan``;
* :class:`PartitionPlan` — the single normalized planning artifact (placement
  + optional VSM tiling + predicted :class:`~repro.core.placement.PlanMetrics`)
  consumed by the executor, the serving engine, the plan cache and the
  :class:`~repro.core.placement.PlanEvaluator`;
* the strategy registry — :func:`register_strategy`, :func:`get_strategy`,
  :func:`available_strategies`.

Strategies declare two capabilities the runtime keys off:

* ``supports_repartitioning`` — whether the method can adapt a live plan
  locally when conditions drift (only D3's HPA family can; every other method
  is re-planned from scratch on drift);
* ``measure_by_simulation`` — whether the method's headline latency is read
  off the discrete-event executor (D3, whose VSM tile parallelism the analytic
  evaluator cannot see) or off the analytic :class:`PlanEvaluator` (the
  paper's one-shot baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.economics import ObjectiveWeights, TierEconomics

from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlacementPlan, PlanEvaluator, PlanMetrics, Tier
from repro.core.vsm import VerticalSeparationModule, VSMPlan
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile

try:  # pragma: no cover - version-dependent typing import
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


class StrategyUnsupportedError(ValueError):
    """Raised when a strategy is asked to plan a graph it declined.

    Callers should consult :meth:`PartitionStrategy.supports` first; the
    scenario runner and the serving layer use it to report the method as
    unavailable instead of catching per-method exception types.
    """


class UnknownStrategyError(KeyError):
    """Raised when a method name is not in the strategy registry."""

    def __str__(self) -> str:  # KeyError repr-quotes its message; undo that.
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class ClusterSpec:
    """The deployment facts a strategy may tailor its plan to.

    This is deliberately lighter than :class:`~repro.runtime.cluster.Cluster`:
    planning needs to know how much edge parallelism exists and how VSM may
    tile it, not the live node/link objects.  ``topology_fingerprint`` is the
    :meth:`~repro.network.topology.Topology.fingerprint` of the deployment
    the spec was taken from: plans are stamped with it, and the executor
    refuses to run a stamped plan on a different shape.

    ``objective_weights`` and ``economics`` carry the multi-objective
    configuration: strategies that honour it (HPA, Neurosurgeon, DADS) plan
    against the weighted (latency, energy, cost) score; both default to
    ``None``, under which every strategy follows its original pure-latency
    code path bit-identically.
    """

    num_edge_nodes: int = 1
    tile_grid: Tuple[int, int] = (2, 2)
    topology_fingerprint: Tuple = ()
    objective_weights: Optional["ObjectiveWeights"] = None
    economics: Optional["TierEconomics"] = None

    @classmethod
    def from_cluster(
        cls,
        cluster,
        tile_grid: Tuple[int, int] = (2, 2),
        objective_weights: Optional["ObjectiveWeights"] = None,
        economics: Optional["TierEconomics"] = None,
    ) -> "ClusterSpec":
        topology = getattr(cluster, "topology", None)
        if (
            economics is None
            and objective_weights is not None
            and not objective_weights.is_latency_only
            and topology is not None
        ):
            from repro.core.economics import TierEconomics

            economics = TierEconomics.from_topology(topology)
        return cls(
            num_edge_nodes=cluster.num_edge_nodes,
            tile_grid=tile_grid,
            topology_fingerprint=topology.fingerprint() if topology is not None else (),
            objective_weights=objective_weights,
            economics=economics,
        )

    @property
    def is_weighted(self) -> bool:
        """True when planning should leave the pure-latency path."""
        return (
            self.objective_weights is not None
            and not self.objective_weights.is_latency_only
            and self.economics is not None
        )


@dataclass
class PartitionPlan:
    """Normalized output of any partitioning strategy.

    Every consumer — the one-shot executor, the serving simulator, the plan
    cache, the experiment harnesses — reads this one artifact, never a
    method-specific result type.
    """

    strategy: str
    graph: DnnGraph
    placement: PlacementPlan
    #: Predicted metrics of ``placement`` under the planning conditions, as
    #: computed by :class:`~repro.core.placement.PlanEvaluator`.
    metrics: PlanMetrics
    vsm_plan: Optional[VSMPlan] = None
    #: Method-specific extras (Neurosurgeon's split index, DADS's cut value,
    #: ...) kept for introspection without widening the common surface.
    extras: Dict[str, object] = field(default_factory=dict)
    #: Fingerprint of the deployment topology the plan was computed for
    #: (empty when the strategy was invoked without a :class:`ClusterSpec`).
    topology_fingerprint: Tuple = ()

    @property
    def latency_s(self) -> float:
        """Predicted end-to-end latency (the analytic objective)."""
        return self.metrics.end_to_end_latency_s

    @property
    def bytes_to_cloud(self) -> int:
        """Predicted per-image backbone traffic to the cloud."""
        return self.metrics.bytes_to_cloud

    def describe(self) -> str:
        return f"[{self.strategy}] {self.placement.describe()}"


@runtime_checkable
class PartitionStrategy(Protocol):
    """Protocol implemented by every partitioning method."""

    name: str
    #: Can this method adapt a live plan locally when conditions drift?
    supports_repartitioning: bool
    #: Should the headline latency come from the discrete-event executor
    #: (``True``) or the analytic evaluator (``False``)?
    measure_by_simulation: bool

    def supports(self, graph: DnnGraph) -> bool:
        """True when the method can partition ``graph`` at all."""
        ...

    def plan(
        self,
        graph: DnnGraph,
        profile: LatencyProfile,
        network: NetworkCondition,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> PartitionPlan:
        """Produce the normalized partitioning artifact for one scenario."""
        ...


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
#: name -> zero-argument factory producing a default-configured strategy.
_REGISTRY: Dict[str, Callable[[], PartitionStrategy]] = {}


def register_strategy(
    factory: Callable[[], PartitionStrategy], name: Optional[str] = None
) -> Callable[[], PartitionStrategy]:
    """Register a strategy factory (usable as a class decorator).

    ``factory`` is any zero-argument callable returning a strategy instance —
    typically the strategy class itself.  Re-registering a name overwrites the
    previous factory, so test doubles can shadow the built-ins.
    """
    resolved = name or getattr(factory, "name", None)
    if not resolved:
        raise ValueError("strategy factory must have a 'name' or be registered with one")
    _REGISTRY[str(resolved)] = factory
    return factory


def get_strategy(name: str) -> PartitionStrategy:
    """Instantiate the registered strategy called ``name``."""
    _ensure_builtin_strategies()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown method {name!r}; available: {', '.join(available_strategies())}"
        ) from None
    return factory()


def available_strategies() -> List[str]:
    """Names of every registered strategy, in registration order."""
    _ensure_builtin_strategies()
    return list(_REGISTRY)


def _ensure_builtin_strategies() -> None:
    """Import the modules that register the built-in methods.

    The baseline adapters live next to their algorithms in
    :mod:`repro.baselines`; importing them lazily here keeps this module free
    of package-level circular imports while guaranteeing the registry is fully
    populated the first time anyone consults it.
    """
    import repro.baselines.single_tier  # noqa: F401
    import repro.baselines.neurosurgeon  # noqa: F401
    import repro.baselines.dads  # noqa: F401


# --------------------------------------------------------------------------- #
# D3's own strategies: HPA and HPA + VSM
# --------------------------------------------------------------------------- #
class HpaStrategy:
    """D3's Horizontal Partition Algorithm over the three tiers (Fig. 9)."""

    name = "hpa"
    supports_repartitioning = True
    measure_by_simulation = True

    def __init__(self, hpa_config: Optional[HPAConfig] = None) -> None:
        self.hpa_config = hpa_config or HPAConfig()

    def supports(self, graph: DnnGraph) -> bool:
        return True

    def plan(
        self,
        graph: DnnGraph,
        profile: LatencyProfile,
        network: NetworkCondition,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> PartitionPlan:
        if not self.supports(graph):  # pragma: no cover - HPA supports all DAGs
            raise StrategyUnsupportedError(f"{self.name} cannot partition {graph.name}")
        cluster_spec = cluster_spec or ClusterSpec()
        if cluster_spec.is_weighted:
            partitioner = HorizontalPartitioner(
                profile,
                network,
                self.hpa_config,
                economics=cluster_spec.economics,
                weights=cluster_spec.objective_weights,
            )
        else:
            partitioner = HorizontalPartitioner(profile, network, self.hpa_config)
        placement = partitioner.partition(graph)
        vsm_plan = self.separate(graph, placement, cluster_spec)
        metrics = PlanEvaluator(profile, network).metrics(placement)
        return PartitionPlan(
            strategy=self.name,
            graph=graph,
            placement=placement,
            metrics=metrics,
            vsm_plan=vsm_plan,
            topology_fingerprint=cluster_spec.topology_fingerprint,
        )

    def separate(
        self, graph: DnnGraph, placement: PlacementPlan, cluster_spec: ClusterSpec
    ) -> Optional[VSMPlan]:
        """HPA alone never tiles; the VSM subclass overrides this."""
        return None


class HpaVsmStrategy(HpaStrategy):
    """Full D3: HPA placement plus VSM tiling over the edge nodes (Fig. 12)."""

    name = "hpa_vsm"

    def separate(
        self, graph: DnnGraph, placement: PlacementPlan, cluster_spec: ClusterSpec
    ) -> Optional[VSMPlan]:
        if cluster_spec.num_edge_nodes < 2:
            return None
        rows, cols = cluster_spec.tile_grid
        vsm = VerticalSeparationModule(grid_rows=rows, grid_cols=cols)
        plan = vsm.plan(graph, placement, Tier.EDGE)
        return plan if plan.runs else None


register_strategy(HpaStrategy)
register_strategy(HpaVsmStrategy)
