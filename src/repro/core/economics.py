"""Multi-objective placement economics: energy and dollar-cost axes.

The paper optimises device–edge–cloud partitions for latency alone, but the
deployments it targets trade latency against device battery and cloud
billing.  This module holds the two value objects that thread those axes
through every planner:

* :class:`ObjectiveWeights` — the scalarisation vector ``(latency, energy,
  cost)``.  The default is pure latency, which every pre-existing code path
  is bit-identical under; an all-zero vector is rejected with the typed
  :class:`InvalidWeightsError`.
* :class:`TierEconomics` — the per-tier planning view of the deployment's
  :class:`~repro.profiling.hardware.EnergyModel`\\ s and $/s prices, derived
  from a :class:`~repro.network.topology.Topology` (each tier is represented
  by its primary node, exactly like the latency planning view).

Units are not normalised: a weighted score is
``w_latency * seconds + w_energy * joules + w_cost * dollars``.  Weights are
therefore also the exchange rates between the axes (e.g. ``energy=0.1``
reads "one joule is worth 100 ms"), and a single-axis vector recovers the
pure single-objective optimum exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from repro.profiling.hardware import EnergyModel

#: Compute tiers in pipeline order; positions index the TierEconomics tuples.
_TIER_NAMES = ("device", "edge", "cloud")
_TIER_INDEX = {name: position for position, name in enumerate(_TIER_NAMES)}


class InvalidWeightsError(ValueError):
    """Raised for a degenerate objective-weight vector (all-zero/negative)."""


def _tier_name(tier: object) -> str:
    """Accept a ``Tier`` enum member or its string value."""
    return getattr(tier, "value", tier)  # type: ignore[return-value]


@dataclass(frozen=True)
class ObjectiveWeights:
    """Scalarisation weights over the latency, energy and cost axes.

    ``ObjectiveWeights()`` is pure latency — the configuration every planner
    defaults to and the golden traces pin bit-identically.
    """

    latency: float = 1.0
    energy: float = 0.0
    cost: float = 0.0

    def __post_init__(self) -> None:
        for axis in ("latency", "energy", "cost"):
            value = getattr(self, axis)
            if not isinstance(value, (int, float)) or value != value:
                raise InvalidWeightsError(f"{axis} weight must be a finite number")
            if value < 0:
                raise InvalidWeightsError(f"{axis} weight cannot be negative")
            if value == float("inf"):
                raise InvalidWeightsError(f"{axis} weight must be finite")
        if self.latency == 0 and self.energy == 0 and self.cost == 0:
            raise InvalidWeightsError(
                "objective weights cannot all be zero: nothing to optimise"
            )

    @classmethod
    def coerce(
        cls, value: "ObjectiveWeights | Iterable[float] | None"
    ) -> "ObjectiveWeights | None":
        """Accept an ``ObjectiveWeights``, a 3-sequence, or ``None``."""
        if value is None or isinstance(value, ObjectiveWeights):
            return value
        values = tuple(float(v) for v in value)
        if len(values) != 3:
            raise InvalidWeightsError(
                f"objective weights need exactly (latency, energy, cost), "
                f"got {len(values)} value(s)"
            )
        return cls(*values)

    @property
    def is_latency_only(self) -> bool:
        """True when the energy and cost axes carry no weight.

        A latency-only vector (whatever its latency scale) ranks plans
        exactly like the pre-economics objective, so every planner keeps its
        original code path — and its bit-identical behaviour — under it.
        """
        return self.energy == 0 and self.cost == 0

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.latency, self.energy, self.cost)

    def combine(self, latency_s: float, energy_j: float, cost_usd: float) -> float:
        """The weighted scalar score of one (latency, energy, cost) point."""
        return (
            self.latency * latency_s + self.energy * energy_j + self.cost * cost_usd
        )


#: The default pure-latency vector.
LATENCY_ONLY = ObjectiveWeights()


@dataclass(frozen=True)
class TierEconomics:
    """Per-tier energy models and $/s prices — the planning view of economics.

    Mirrors the latency planning view: each compute tier is represented by
    its primary node's :class:`~repro.profiling.hardware.EnergyModel` and
    resolved price.  Hashable (it joins frozen ``ClusterSpec``\\ s and plan
    keys), so the per-tier collections are tuples in ``device, edge, cloud``
    order.
    """

    energy: Tuple[EnergyModel, EnergyModel, EnergyModel] = (
        EnergyModel(),
        EnergyModel(),
        EnergyModel(),
    )
    price_per_s: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if len(self.energy) != 3 or len(self.price_per_s) != 3:
            raise ValueError("TierEconomics needs one entry per compute tier")
        if any(not isinstance(model, EnergyModel) for model in self.energy):
            raise ValueError("energy entries must be EnergyModel instances")
        if any(price < 0 for price in self.price_per_s):
            raise ValueError("price_per_s entries cannot be negative")

    @classmethod
    def from_topology(cls, topology) -> "TierEconomics":
        """Derive the planning economics of a deployment.

        ``topology`` is a :class:`~repro.network.topology.Topology` (typed
        loosely to keep this module import-light); its per-tier primary
        nodes supply both the energy models and the resolved prices.
        """
        primaries = [topology.primary(tier) for tier in _TIER_NAMES]
        return cls(
            energy=tuple(node.hardware.energy for node in primaries),
            price_per_s=tuple(node.resolved_price_per_s for node in primaries),
        )

    # ------------------------------------------------------------------ #
    def energy_for(self, tier: object) -> EnergyModel:
        return self.energy[_TIER_INDEX[_tier_name(tier)]]

    def price_for(self, tier: object) -> float:
        return self.price_per_s[_TIER_INDEX[_tier_name(tier)]]

    def compute_joules(self, flops: float, tier: object) -> float:
        """Energy of executing ``flops`` on a tier."""
        return self.energy_for(tier).compute_joules(flops)

    def compute_cost_usd(self, seconds: float, tier: object) -> float:
        """Dollars billed for occupying a tier's node for ``seconds``."""
        return self.price_for(tier) * seconds

    def transfer_joules(
        self, payload_bytes: Union[int, float], src_tier: object, dst_tier: object
    ) -> float:
        """Radio energy of a cut edge: only device endpoints pay it.

        The device's wireless uplink is the only metered medium — edge and
        cloud machines are wired.  A transfer with the device on exactly one
        end charges that device's radio model; tier-internal movement and
        edge↔cloud backbone hops are radio-free.
        """
        src = _tier_name(src_tier)
        dst = _tier_name(dst_tier)
        if src == dst:
            return 0.0
        if src == "device" or dst == "device":
            return self.energy[_TIER_INDEX["device"]].radio_joules(payload_bytes)
        return 0.0

    @property
    def is_unmetered(self) -> bool:
        """True when no tier carries energy rates or prices (all zeros)."""
        unmetered = EnergyModel()
        return all(model == unmetered for model in self.energy) and all(
            price == 0.0 for price in self.price_per_s
        )
