"""Horizontal Partition Algorithm (HPA) — Algorithm 1 of the paper.

HPA splits a DNN DAG into three parts executed on the device, edge and cloud
tiers.  Partitioning a DAG with multiple vertex and link weights is NP-hard, so
HPA is a layered greedy heuristic:

1. compute the longest distance ``δ(v_i)`` from the virtual input ``v0`` to
   every vertex and group vertices into graph layers ``Z_q``;
2. walk the graph layers in order; within a layer, each vertex's *potential*
   tiers ``Γ_i`` are restricted by Proposition 1 (a vertex can never run on a
   tier earlier in the pipeline than the earliest tier among its direct
   predecessors);
3. pick the optimal tier with Equation (2) — the tier minimising the vertex's
   processing time plus the delay of pulling its inputs — unless the vertex's
   output is at least as large as its input, in which case HPA looks one hop
   ahead and jointly evaluates the vertex with its *largest direct successor*
   over the tier combinations of Table I;
4. after finishing a layer, apply the SIS update (Proposition 2): an already
   placed subset-input-sibling of a vertex is pulled forward to the vertex's
   tier when it currently sits on an earlier tier, because its inputs have
   already been shipped there.

The partitioner exposes its per-vertex decision helpers so that the dynamic
re-partitioner (:mod:`repro.core.dynamic`) can re-run them locally when runtime
conditions drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.economics import ObjectiveWeights, TierEconomics

from repro.core.placement import (
    PlacementPlan,
    Tier,
    TIER_ORDER,
    earliest_tier,
    tiers_at_or_after,
)
from repro.graph.dag import DnnGraph, Vertex
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


#: Look-ahead strategies for the per-vertex tier decision.
#:
#: ``"none"``       — pure Equation (2) (local greedy, no look-ahead);
#: ``"successor"``  — the paper's Table-I joint evaluation with the largest
#:                    direct successor;
#: ``"cumulative"`` — an extension of the Table-I idea that replaces the single
#:                    successor with the *aggregate remaining network*: the
#:                    candidate pair ``(l_i, l_j)`` is charged ``v_i``'s
#:                    processing time on ``l_i``, the transfer of its output to
#:                    ``l_j`` and the processing time of every still-unassigned
#:                    vertex on ``l_j``.  The single-successor rule is too
#:                    myopic to ever amortise a large tensor transfer over the
#:                    many cheap layers that follow it (it strands long runs of
#:                    small layers on the device), so the cumulative rule is the
#:                    default; the ablation benchmark quantifies the difference.
LOOKAHEAD_MODES = ("none", "successor", "cumulative")


@dataclass(frozen=True)
class HPAConfig:
    """Tunable switches of the heuristic (used by the ablation benchmarks).

    Attributes
    ----------
    enable_sis_update:
        Apply the Proposition-2 SIS update after each graph layer.
    lookahead:
        One of :data:`LOOKAHEAD_MODES`; applied when a vertex's output is not
        smaller than its input (the paper's trigger condition).
    reference_tier_for_successor:
        Tier whose processing time ranks the successors when choosing the
        "largest direct successor".
    """

    enable_sis_update: bool = True
    lookahead: str = "cumulative"
    reference_tier_for_successor: Tier = Tier.DEVICE

    def __post_init__(self) -> None:
        if self.lookahead not in LOOKAHEAD_MODES:
            raise ValueError(
                f"lookahead must be one of {LOOKAHEAD_MODES}, got {self.lookahead!r}"
            )


class HorizontalPartitioner:
    """Split a DNN DAG over the device, edge and cloud tiers.

    Parameters
    ----------
    profile:
        Per-vertex, per-tier latency estimates (the vertex weights ``T_{v_i}``),
        normally produced by the regression model.
    network:
        The inter-tier bandwidths (the link weights ``T_{(v_i, v_j)}``).
    config:
        Heuristic switches; defaults to the full algorithm of the paper.
    economics, weights:
        Optional multi-objective extension: when both are given and the
        weights put mass on the energy or cost axis, the two scoring
        primitives below return *weighted scores* instead of raw seconds.
        Every Algorithm-1 decision composes those two primitives linearly,
        so the greedy then minimises the weighted objective end to end.
        Absent (the default) both primitives — and therefore the whole
        partition — are bit-identical to the pure-latency algorithm.
    """

    def __init__(
        self,
        profile: LatencyProfile,
        network: NetworkCondition,
        config: Optional[HPAConfig] = None,
        economics: Optional["TierEconomics"] = None,
        weights: Optional["ObjectiveWeights"] = None,
    ) -> None:
        self.profile = profile
        self.network = network
        self.config = config or HPAConfig()
        self.economics = economics
        self.weights = weights
        self._weighted = (
            economics is not None and weights is not None and not weights.is_latency_only
        )

    # ------------------------------------------------------------------ #
    # Weight helpers
    # ------------------------------------------------------------------ #
    def vertex_latency(self, vertex: Vertex, tier: Tier) -> float:
        """``t^{l_i}_i``: processing time of a vertex on a tier.

        Under a multi-objective configuration this is the vertex's weighted
        score ``w_lat·t + w_energy·(flops · J/FLOP) + w_cost·(t · $/s)``.
        """
        seconds = self.profile.get(vertex.index, tier)
        if not self._weighted:
            return seconds
        weights = self.weights
        economics = self.economics
        return (
            weights.latency * seconds
            + weights.energy * economics.compute_joules(vertex.flops, tier)
            + weights.cost * economics.compute_cost_usd(seconds, tier)
        )

    def transfer_latency(self, payload_bytes: int, src: Tier, dst: Tier) -> float:
        """``t^{[l_h, l_i]}_{hi}``: transmission delay between two tiers.

        Under a multi-objective configuration this is the cut edge's weighted
        score ``w_lat·t + w_energy·radio_joules`` (only device endpoints pay
        radio energy; transfers carry no dollar term).
        """
        if src == dst:
            return 0.0
        seconds = self.network.transfer_seconds(payload_bytes, src.value, dst.value)
        if not self._weighted:
            return seconds
        weights = self.weights
        return weights.latency * seconds + weights.energy * self.economics.transfer_joules(
            payload_bytes, src, dst
        )

    def input_pull_latency(
        self, graph: DnnGraph, plan: PlacementPlan, vertex: Vertex, tier: Tier
    ) -> float:
        """Delay of moving all of ``vertex``'s inputs to ``tier``."""
        total = 0.0
        for pred in graph.predecessors(vertex.index):
            total += self.transfer_latency(pred.output_bytes, plan.tier_of(pred.index), tier)
        return total

    # ------------------------------------------------------------------ #
    # Per-vertex decisions (Algorithm 1 lines 5-11)
    # ------------------------------------------------------------------ #
    def potential_tiers(self, graph: DnnGraph, plan: PlacementPlan, vertex: Vertex) -> List[Tier]:
        """``Γ_i``: the potential tiers allowed by Proposition 1."""
        preds = graph.predecessors(vertex.index)
        if not preds:
            return [Tier.DEVICE]
        bound = earliest_tier(plan.tier_of(p.index) for p in preds)
        return tiers_at_or_after(bound)

    def local_optimal_tier(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        vertex: Vertex,
        candidates: Sequence[Tier],
    ) -> Tier:
        """Equation (2): the tier minimising processing plus input-pull delay."""
        best_tier = candidates[0]
        best_cost = float("inf")
        for tier in candidates:
            cost = self.vertex_latency(vertex, tier)
            cost += self.input_pull_latency(graph, plan, vertex, tier)
            if cost < best_cost:
                best_cost = cost
                best_tier = tier
        return best_tier

    def largest_direct_successor(self, graph: DnnGraph, vertex: Vertex) -> Optional[Vertex]:
        """The successor with the longest processing time on the reference tier."""
        successors = graph.successors(vertex.index)
        if not successors:
            return None
        reference = self.config.reference_tier_for_successor
        return max(successors, key=lambda s: self.vertex_latency(s, reference))

    def lookahead_optimal_tier(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        vertex: Vertex,
        successor: Vertex,
        candidates: Sequence[Tier],
    ) -> Tier:
        """Table-I joint evaluation of ``vertex`` and its largest successor.

        For every admissible pair ``(l_i, l_j)`` with ``l_j`` not earlier than
        ``l_i``, the total latency is the processing time of both layers plus
        the delay of pulling ``v_i``'s inputs to ``l_i`` and pushing its output
        to ``l_j``; the ``l_i`` of the cheapest pair wins.
        """
        best_tier = candidates[0]
        best_cost = float("inf")
        for tier_i in candidates:
            pull = self.input_pull_latency(graph, plan, vertex, tier_i)
            for tier_j in tiers_at_or_after(tier_i):
                cost = (
                    self.vertex_latency(vertex, tier_i)
                    + self.vertex_latency(successor, tier_j)
                    + pull
                    + self.transfer_latency(vertex.output_bytes, tier_i, tier_j)
                )
                if cost < best_cost:
                    best_cost = cost
                    best_tier = tier_i
        return best_tier

    def cumulative_optimal_tier(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        vertex: Vertex,
        candidates: Sequence[Tier],
        remaining: Dict[Tier, float],
    ) -> Tier:
        """Cumulative look-ahead: joint evaluation with the remaining network.

        ``remaining[t]`` is the total processing time on tier ``t`` of every
        vertex that has not been assigned yet (excluding ``vertex`` itself).
        The pair ``(l_i, l_j)`` is charged ``v_i`` on ``l_i``, the transfer of
        ``v_i``'s output from ``l_i`` to ``l_j`` and the whole remainder on
        ``l_j``; this lets a single expensive transfer be amortised over every
        downstream layer instead of only the largest direct successor.
        """
        best_tier = candidates[0]
        best_cost = float("inf")
        for tier_i in candidates:
            pull = self.input_pull_latency(graph, plan, vertex, tier_i)
            for tier_j in tiers_at_or_after(tier_i):
                cost = (
                    self.vertex_latency(vertex, tier_i)
                    + pull
                    + self.transfer_latency(vertex.output_bytes, tier_i, tier_j)
                    + remaining.get(tier_j, 0.0)
                    + self._live_tensor_transfer(graph, plan, vertex, tier_j)
                )
                if cost < best_cost:
                    best_cost = cost
                    best_tier = tier_i
        return best_tier

    def _live_tensor_transfer(
        self, graph: DnnGraph, plan: PlacementPlan, vertex: Vertex, target: Tier
    ) -> float:
        """Cost of moving every *live* tensor to ``target``.

        A live tensor is the output of an already-assigned vertex that still
        has unassigned consumers (e.g. the skip branch of a residual block or
        the sibling branches of an Inception module).  If the remainder of the
        network runs on ``target``, those tensors must eventually cross to it,
        so the cumulative look-ahead charges them up front — without this term
        the look-ahead happily jumps to the cloud in the middle of a residual
        stage and is then surprised by the skip-connection transfer.
        ``vertex``'s own inputs are excluded (they are charged via the pull
        term).
        """
        pred_indices = {p.index for p in graph.predecessors(vertex.index)}
        total = 0.0
        for index, tier in plan.assignments.items():
            if index in pred_indices or index == vertex.index:
                continue
            has_unassigned_consumer = any(
                s.index not in plan.assignments and s.index != vertex.index
                for s in graph.successors(index)
            )
            if has_unassigned_consumer:
                producer = graph.vertex(index)
                total += self.transfer_latency(producer.output_bytes, tier, target)
        return total

    def _default_remaining(self, graph: DnnGraph, vertex: Vertex) -> Dict[Tier, float]:
        """Remaining-work estimate when no explicit bookkeeping is available.

        Used by the dynamic local updates: every vertex added after ``vertex``
        (insertion order is topological) counts as "remaining".
        """
        remaining = {tier: 0.0 for tier in TIER_ORDER}
        for other in graph:
            if other.index <= vertex.index:
                continue
            for tier in TIER_ORDER:
                remaining[tier] += self.vertex_latency(other, tier)
        return remaining

    def optimal_tier(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        vertex: Vertex,
        remaining: Optional[Dict[Tier, float]] = None,
    ) -> Tier:
        """``get_opt_loc``: the full per-vertex decision of Algorithm 1."""
        candidates = self.potential_tiers(graph, plan, vertex)
        if candidates == [Tier.CLOUD]:
            return Tier.CLOUD

        input_bytes = sum(p.output_bytes for p in graph.predecessors(vertex.index))
        output_bytes = vertex.output_bytes
        successor = self.largest_direct_successor(graph, vertex)
        use_lookahead = (
            self.config.lookahead != "none"
            and successor is not None
            and input_bytes <= output_bytes
        )
        if not use_lookahead:
            return self.local_optimal_tier(graph, plan, vertex, candidates)
        if self.config.lookahead == "successor":
            return self.lookahead_optimal_tier(graph, plan, vertex, successor, candidates)
        if remaining is None:
            remaining = self._default_remaining(graph, vertex)
        return self.cumulative_optimal_tier(graph, plan, vertex, candidates, remaining)

    # ------------------------------------------------------------------ #
    # SIS update (Algorithm 1 line 13)
    # ------------------------------------------------------------------ #
    def sis_update(self, graph: DnnGraph, plan: PlacementPlan, layer: Sequence[Vertex]) -> int:
        """Pull SIS vertices forward to their sibling's tier (Proposition 2).

        Returns the number of vertices whose tier was changed.  The update is
        skipped when it would violate Proposition 1 for an already-assigned
        successor of the SIS vertex (a defensive deviation from the paper,
        which does not discuss this corner case).
        """
        changed = 0
        for vertex in layer:
            vertex_tier = plan.tier_of(vertex.index)
            for sibling in graph.sis_vertices(vertex.index):
                if sibling.index not in plan.assignments:
                    continue
                sibling_tier = plan.tier_of(sibling.index)
                if sibling_tier.position >= vertex_tier.position:
                    continue  # sibling is not on an earlier tier
                if self._sis_move_is_safe(graph, plan, sibling, vertex_tier):
                    plan.assign(sibling.index, vertex_tier)
                    changed += 1
        return changed

    @staticmethod
    def _sis_move_is_safe(
        graph: DnnGraph, plan: PlacementPlan, sibling: Vertex, new_tier: Tier
    ) -> bool:
        for successor in graph.successors(sibling.index):
            if successor.index not in plan.assignments:
                continue
            if plan.tier_of(successor.index).position < new_tier.position:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Full algorithm
    # ------------------------------------------------------------------ #
    def partition(self, graph: DnnGraph) -> PlacementPlan:
        """Run Algorithm 1 and return a validated three-way placement plan."""
        plan = PlacementPlan(graph)
        # Remaining processing time per tier over all still-unassigned vertices
        # (used by the cumulative look-ahead).
        remaining: Dict[Tier, float] = {
            tier: sum(self.vertex_latency(v, tier) for v in graph) for tier in TIER_ORDER
        }
        for layer in graph.graph_layers():
            for vertex in layer:
                for tier in TIER_ORDER:
                    remaining[tier] -= self.vertex_latency(vertex, tier)
                if not graph.predecessors(vertex.index):
                    # The virtual input vertex: l^opt_0 = device.
                    plan.assign(vertex.index, Tier.DEVICE)
                    continue
                plan.assign(
                    vertex.index,
                    self.optimal_tier(graph, plan, vertex, remaining=dict(remaining)),
                )
            if self.config.enable_sis_update:
                self.sis_update(graph, plan, layer)
        plan.validate()
        return plan
