"""Vertical Separation Module (VSM) — Algorithm 2 of the paper.

When HPA assigns a run of convolutional layers to the (comparatively weak)
edge tier, that run becomes the bottleneck of the synergistic pipeline
(Table II).  VSM removes the bottleneck by *fused tile parallelism*: the output
feature map of the run is cut into an ``A x B`` grid of non-overlapping tiles
and every tile is traced *backwards* through the run with the reverse tile
calculation (RTC, Equations 3-5), which accounts exactly for kernel size,
stride and padding.  Each edge node then receives one fused tile stack — the
input patch of layer ``c_1`` plus the layer parameters — and computes its
output tile independently; concatenating the tiles reproduces the full output
bit-exactly, hence "lossless".

The geometry lives here; executing a plan on real numpy arrays (the
losslessness proof) lives in :mod:`repro.tensors.tiling`, and charging its
latency to simulated edge nodes lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.placement import PlacementPlan, Tier
from repro.graph.dag import DnnGraph, Vertex
from repro.graph.layers import AvgPool2d, Conv2d, LayerSpec, MaxPool2d

#: Layer kinds VSM can carry inside a fused run.  Convolutions and pooling
#: change the tile geometry; the element-wise kinds are spatially pointwise and
#: pass tiles through unchanged (the paper: batch-norm and activation layers
#: "do not change the volume of input feature maps").
GEOMETRIC_KINDS = ("conv", "maxpool", "avgpool")
POINTWISE_KINDS = ("batchnorm", "relu", "leakyrelu", "dropout", "lrn")
TILEABLE_KINDS = GEOMETRIC_KINDS + POINTWISE_KINDS


class VSMError(ValueError):
    """Raised when a fused run cannot be tiled."""


@dataclass(frozen=True)
class SpatialParams:
    """Kernel/stride/padding of one layer as seen by the RTC."""

    kernel: Tuple[int, int]
    stride: Tuple[int, int]
    padding: Tuple[int, int]

    @classmethod
    def identity(cls) -> "SpatialParams":
        """Spatially pointwise layers behave like a 1x1/stride-1 convolution."""
        return cls(kernel=(1, 1), stride=(1, 1), padding=(0, 0))

    @classmethod
    def from_spec(cls, spec: LayerSpec) -> "SpatialParams":
        if isinstance(spec, (Conv2d, MaxPool2d, AvgPool2d)):
            return cls(kernel=spec.kernel, stride=spec.stride, padding=spec.padding)
        if spec.kind in POINTWISE_KINDS:
            return cls.identity()
        raise VSMError(f"layer kind {spec.kind!r} cannot be part of a fused tile run")


@dataclass(frozen=True)
class TileRegion:
    """A rectangular tile of one layer's input feature maps.

    ``row_start/row_end/col_start/col_end`` are half-open coordinates in the
    *unpadded* input of the layer (the paper's ``τ``); the ``padded_*`` fields
    are the corresponding half-open coordinates in the *padded* input (the
    paper's ``τ̂``), whose origin is shifted by the layer padding
    ``(layer_pad_h, layer_pad_w)``.  The difference between the two tells the
    executor how many zero rows/columns it must add on each side of the tile —
    which is non-zero only where the tile touches the original feature-map
    border, keeping interior tiles halo-exact and the computation lossless.
    """

    row_start: int
    row_end: int
    col_start: int
    col_end: int
    padded_row_start: int
    padded_row_end: int
    padded_col_start: int
    padded_col_end: int
    layer_pad_h: int = 0
    layer_pad_w: int = 0

    @property
    def height(self) -> int:
        return self.row_end - self.row_start

    @property
    def width(self) -> int:
        return self.col_end - self.col_start

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def pad_top(self) -> int:
        """Zero rows to add above the tile before running the layer."""
        return self.row_start + self.layer_pad_h - self.padded_row_start

    @property
    def pad_left(self) -> int:
        return self.col_start + self.layer_pad_w - self.padded_col_start

    @property
    def pad_bottom(self) -> int:
        return self.padded_row_end - (self.row_end + self.layer_pad_h)

    @property
    def pad_right(self) -> int:
        return self.padded_col_end - (self.col_end + self.layer_pad_w)

    def is_empty(self) -> bool:
        return self.height <= 0 or self.width <= 0

    @classmethod
    def output_tile(cls, row_start: int, row_end: int, col_start: int, col_end: int) -> "TileRegion":
        """A tile of an (un-padded) output feature map: padded == unpadded."""
        return cls(
            row_start,
            row_end,
            col_start,
            col_end,
            row_start,
            row_end,
            col_start,
            col_end,
        )


def _reverse_axis(
    out_start: int,
    out_end: int,
    stride: int,
    kernel: int,
    pad: int,
    limit: int,
) -> Tuple[int, int, int, int]:
    """RTC along one spatial axis: ``(start, end, padded_start, padded_end)``.

    An *empty* output extent (possible when an upstream clamp left a border
    tile with no real input data — its values come entirely from padding)
    consumes nothing: it maps to a zero-extent input interval whose padded
    coordinates coincide with it, so no padding is charged either.
    """
    if out_end <= out_start:
        anchor = min(limit, max(0, stride * out_start - pad))
        padded = anchor + pad
        return anchor, anchor, padded, padded

    # Equation (4): padded input coordinates of the tile.
    padded_start = stride * out_start
    padded_end = stride * (out_end - 1) + kernel
    # Equation (5): remove the padding, clamping to the unpadded feature map.
    start = min(limit, max(0, padded_start - pad))
    end = min(limit, max(0, padded_end - pad))
    return start, end, padded_start, padded_end


def reverse_tile_calculation(
    params: SpatialParams,
    output_tile: TileRegion,
    input_height: int,
    input_width: int,
) -> TileRegion:
    """One RTC step: map an output tile back to the layer's input tile.

    Implements Equation (4) — the padded coordinates ``τ̂`` of the input tile —
    and Equation (5) — the removal of the padding, which clamps the coordinates
    into the unpadded feature map.  The clamping uses ``min(W, ·)`` / ``min(H, ·)``
    in addition to the paper's special case so that partially padded border
    tiles are also handled exactly.  A tile that is empty along an axis (its
    data lies entirely in the padding of a downstream layer) stays empty with
    zero residual padding, so fused runs with aggressive stride/padding
    combinations remain tileable.
    """
    kernel_h, kernel_w = params.kernel
    stride_h, stride_w = params.stride
    pad_h, pad_w = params.padding

    row_start, row_end, padded_row_start, padded_row_end = _reverse_axis(
        output_tile.row_start, output_tile.row_end, stride_h, kernel_h, pad_h, input_height
    )
    col_start, col_end, padded_col_start, padded_col_end = _reverse_axis(
        output_tile.col_start, output_tile.col_end, stride_w, kernel_w, pad_w, input_width
    )

    return TileRegion(
        row_start=row_start,
        row_end=row_end,
        col_start=col_start,
        col_end=col_end,
        padded_row_start=padded_row_start,
        padded_row_end=padded_row_end,
        padded_col_start=padded_col_start,
        padded_col_end=padded_col_end,
        layer_pad_h=pad_h,
        layer_pad_w=pad_w,
    )


@dataclass
class FusedTileStack:
    """The fused tile stack of one ``(a, b)`` grid cell.

    ``regions[i]`` is the tile of the *input* feature maps of layer ``c_{i+1}``
    (0-based), and ``regions[k]`` — one past the last layer — is the tile of the
    run's output feature map, i.e. the non-overlapping cell this stack is
    responsible for producing.
    """

    grid_position: Tuple[int, int]
    regions: List[TileRegion]

    @property
    def input_region(self) -> TileRegion:
        """Tile of the first layer's input feature maps."""
        return self.regions[0]

    @property
    def output_region(self) -> TileRegion:
        """Tile of the run's output feature maps."""
        return self.regions[-1]

    def work_fraction(self, layer_position: int, full_output_area: int) -> float:
        """Fraction of layer ``c_{layer_position+1}``'s work done by this stack.

        A layer's work is proportional to the number of output elements it
        produces; for this stack that is the area of the tile at the *next*
        layer's input.  Summing the fraction over all stacks of a grid exceeds
        1 for interior layers — that excess is exactly the overlap-induced
        computational redundancy the paper discusses for Fig. 12.
        """
        if full_output_area <= 0:
            raise VSMError("full_output_area must be positive")
        return self.regions[layer_position + 1].area / full_output_area


@dataclass
class FusedRunPlan:
    """Tiling plan for one maximal run of tileable layers on the edge tier."""

    vertices: List[Vertex]
    spatial_params: List[SpatialParams]
    input_shape: Tuple[int, int, int]
    output_shape: Tuple[int, int, int]
    grid: Tuple[int, int]
    stacks: List[FusedTileStack]

    @property
    def num_layers(self) -> int:
        return len(self.vertices)

    @property
    def num_tiles(self) -> int:
        return len(self.stacks)

    def layer_output_area(self, layer_position: int) -> int:
        """Spatial area of layer ``c_{layer_position+1}``'s output feature map."""
        shape = self.vertices[layer_position].output_shape
        return shape[1] * shape[2]

    def redundancy_factor(self) -> float:
        """Total tiled work divided by untiled work (≥ 1, ideally close to 1)."""
        total = 0.0
        baseline = 0.0
        for position, vertex in enumerate(self.vertices):
            area = self.layer_output_area(position)
            baseline += area
            for stack in self.stacks:
                total += stack.work_fraction(position, area) * area
        if baseline == 0:
            return 1.0
        return total / baseline

    def validate_coverage(self) -> None:
        """Check that output tiles partition the run's output exactly."""
        _, height, width = self.output_shape
        covered = [[0] * width for _ in range(height)]
        for stack in self.stacks:
            region = stack.output_region
            for row in range(region.row_start, region.row_end):
                for col in range(region.col_start, region.col_end):
                    covered[row][col] += 1
        flat = [value for row in covered for value in row]
        if any(value != 1 for value in flat):
            raise VSMError("output tiles do not partition the output feature map")


@dataclass
class VSMPlan:
    """All fused-run tiling plans produced for one placement plan."""

    grid: Tuple[int, int]
    runs: List[FusedRunPlan] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def covers_vertex(self, vertex_index: int) -> bool:
        """True when the vertex is part of some fused run."""
        return any(v.index == vertex_index for run in self.runs for v in run.vertices)

    def run_for_vertex(self, vertex_index: int) -> Optional[FusedRunPlan]:
        for run in self.runs:
            if any(v.index == vertex_index for v in run.vertices):
                return run
        return None


class VerticalSeparationModule:
    """Build fused tile plans for the convolutional runs placed on the edge.

    Parameters
    ----------
    grid_rows, grid_cols:
        The ``A x B`` decision of separation.  The paper's evaluation uses a
        2 x 2 grid feeding four edge nodes.
    min_run_length:
        Runs shorter than this are not worth parallelising (scatter/gather
        bookkeeping would dominate); the paper implicitly uses 1.
    """

    def __init__(self, grid_rows: int = 2, grid_cols: int = 2, min_run_length: int = 1) -> None:
        if grid_rows <= 0 or grid_cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if min_run_length <= 0:
            raise ValueError("min_run_length must be positive")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.min_run_length = min_run_length

    # ------------------------------------------------------------------ #
    # Run discovery
    # ------------------------------------------------------------------ #
    def find_tileable_runs(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        tier: Tier = Tier.EDGE,
    ) -> List[List[Vertex]]:
        """Maximal chains of tileable layers assigned to ``tier``.

        A vertex can extend the current run when it is placed on ``tier``, its
        kind is tileable, it produces a feature map, it has exactly one
        predecessor, and that predecessor is the previous vertex of the run
        (which must not branch).  The run must contain at least one layer that
        actually changes the tile geometry (a convolution or a pooling layer).
        """
        runs: List[List[Vertex]] = []
        current: List[Vertex] = []

        def flush() -> None:
            nonlocal current
            if (
                len(current) >= self.min_run_length
                and any(v.kind in GEOMETRIC_KINDS for v in current)
            ):
                runs.append(current)
            current = []

        for vertex in graph.topological_order():
            preds = graph.predecessors(vertex.index)
            eligible = (
                plan.assignments.get(vertex.index) == tier
                and vertex.kind in TILEABLE_KINDS
                and len(vertex.output_shape) == 3
                and len(preds) == 1
            )
            if not eligible:
                flush()
                continue
            predecessor = preds[0]
            if current and (
                predecessor.index != current[-1].index
                or len(graph.successors(current[-1].index)) != 1
            ):
                flush()
            if not current and len(predecessor.output_shape) != 3:
                # The run input must itself be a feature map to be sliceable.
                continue
            current.append(vertex)
        flush()
        return runs

    # ------------------------------------------------------------------ #
    # Tiling (Algorithm 2)
    # ------------------------------------------------------------------ #
    def _output_grid(self, height: int, width: int) -> List[TileRegion]:
        rows = min(self.grid_rows, height)
        cols = min(self.grid_cols, width)
        row_bounds = [round(r * height / rows) for r in range(rows + 1)]
        col_bounds = [round(c * width / cols) for c in range(cols + 1)]
        tiles = []
        for r in range(rows):
            for c in range(cols):
                tiles.append(
                    TileRegion.output_tile(
                        row_bounds[r], row_bounds[r + 1], col_bounds[c], col_bounds[c + 1]
                    )
                )
        return tiles

    def plan_run(self, graph: DnnGraph, run: Sequence[Vertex]) -> FusedRunPlan:
        """Algorithm 2 for one run: RTC every output tile back to layer ``c_1``."""
        if not run:
            raise VSMError("cannot tile an empty run")
        first = run[0]
        preds = graph.predecessors(first.index)
        if len(preds) != 1:
            raise VSMError("the first layer of a fused run must have exactly one input")
        input_shape = preds[0].output_shape
        output_shape = run[-1].output_shape
        if len(input_shape) != 3 or len(output_shape) != 3:
            raise VSMError("fused runs must consume and produce feature maps")

        spatial_params = [SpatialParams.from_spec(v.spec) for v in run]
        # Input spatial size of each layer c_i (the shape its RTC clamps to).
        layer_input_hw: List[Tuple[int, int]] = []
        previous_shape = input_shape
        for vertex in run:
            layer_input_hw.append((previous_shape[1], previous_shape[2]))
            previous_shape = vertex.output_shape

        _, out_height, out_width = output_shape
        output_tiles = self._output_grid(out_height, out_width)

        stacks: List[FusedTileStack] = []
        cols = min(self.grid_cols, out_width)
        for tile_index, output_tile in enumerate(output_tiles):
            regions: List[TileRegion] = [output_tile]
            current = output_tile
            for layer_position in range(len(run) - 1, -1, -1):
                height, width = layer_input_hw[layer_position]
                current = reverse_tile_calculation(
                    spatial_params[layer_position], current, height, width
                )
                regions.insert(0, current)
            grid_position = (tile_index // cols, tile_index % cols)
            stacks.append(FusedTileStack(grid_position=grid_position, regions=regions))

        plan = FusedRunPlan(
            vertices=list(run),
            spatial_params=spatial_params,
            input_shape=input_shape,
            output_shape=output_shape,
            grid=(min(self.grid_rows, out_height), cols),
            stacks=stacks,
        )
        plan.validate_coverage()
        return plan

    def plan(self, graph: DnnGraph, placement: PlacementPlan, tier: Tier = Tier.EDGE) -> VSMPlan:
        """Build the full VSM plan for every tileable run on ``tier``."""
        vsm_plan = VSMPlan(grid=(self.grid_rows, self.grid_cols))
        for run in self.find_tileable_runs(graph, placement, tier):
            vsm_plan.runs.append(self.plan_run(graph, run))
        return vsm_plan
