"""DeepThings-style fused tile partition (FTP) — the ablation reference for VSM.

DeepThings (Zhao et al., 2018) also slices a stack of convolutional feature
maps into fused tiles, but — as the paper points out in section III-F — it does
not treat input-feature-map padding exactly, which changes border values and
therefore costs accuracy.  This module provides:

* the same tile geometry as VSM but with the *naive* border handling (every
  tile is convolved with the layer's full symmetric padding, regardless of
  whether the tile touches the real feature-map border), and
* helpers to quantify both the overlap-induced redundant computation and the
  numerical error of the naive scheme against untiled execution, which is how
  the test-suite demonstrates that VSM is lossless while FTP-naive is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.vsm import FusedRunPlan, FusedTileStack, VerticalSeparationModule
from repro.graph.dag import DnnGraph
from repro.graph.layers import AvgPool2d, Conv2d, MaxPool2d
from repro.tensors import ops
from repro.tensors.executor import GraphExecutor
from repro.tensors.tiling import extract_tile, merge_tiles, run_untiled


@dataclass
class OverlapTilingStats:
    """Redundancy and error statistics of a tiled execution scheme."""

    grid: Tuple[int, int]
    redundancy_factor: float
    max_abs_error: float
    mean_abs_error: float

    @property
    def is_lossless(self) -> bool:
        """True when the tiled result matches untiled execution exactly."""
        return self.max_abs_error == 0.0


class FusedTilePartition:
    """Naive fused-tile execution (DeepThings-style padding handling)."""

    def __init__(self, grid_rows: int = 2, grid_cols: int = 2) -> None:
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self._vsm = VerticalSeparationModule(grid_rows, grid_cols)

    # ------------------------------------------------------------------ #
    def plan_run(self, graph: DnnGraph, run) -> FusedRunPlan:
        """Reuse the VSM geometry (the overlap is identical in both schemes)."""
        return self._vsm.plan_run(graph, run)

    def execute_tile_naive(
        self,
        executor: GraphExecutor,
        run_plan: FusedRunPlan,
        stack: FusedTileStack,
        run_input: np.ndarray,
    ) -> np.ndarray:
        """Run one fused tile with naive padding (full padding on every side).

        Interior tiles get zero rows/columns injected where the original
        network would have seen real neighbouring activations, which is the
        border effect responsible for DeepThings' accuracy loss.
        """
        tile = extract_tile(run_input, stack.input_region)
        for vertex in run_plan.vertices:
            spec = vertex.spec
            if isinstance(spec, Conv2d):
                params = executor.weights.conv_weights(vertex.name, spec, tile.shape[0])
                tile = ops.conv2d(tile, params["weight"], params["bias"], spec.stride, spec.padding)
            elif isinstance(spec, MaxPool2d):
                tile = ops.max_pool2d(tile, spec.kernel, spec.stride, spec.padding)
            elif isinstance(spec, AvgPool2d):
                tile = ops.avg_pool2d(tile, spec.kernel, spec.stride, spec.padding)
            else:
                tile = executor.run_vertex(vertex, [tile], None)
        return tile

    def run_naive(
        self,
        executor: GraphExecutor,
        run_plan: FusedRunPlan,
        run_input: np.ndarray,
    ) -> np.ndarray:
        """Execute every tile naively and merge whatever spatial cells result.

        The naive tiles generally do not line up exactly with the output grid
        (padding shifts the geometry), so the merged result crops or centre-
        places each tile into its target cell — mirroring what an FTP runtime
        that ignores the coordinate correction would produce.
        """
        channels, height, width = run_plan.output_shape
        tiles = []
        for stack in run_plan.stacks:
            region = stack.output_region
            produced = self.execute_tile_naive(executor, run_plan, stack, run_input)
            adjusted = _fit_to_region(produced, channels, region.height, region.width)
            tiles.append((region, adjusted))
        return merge_tiles(tiles, channels, height, width)

    # ------------------------------------------------------------------ #
    def compare_with_untiled(
        self,
        executor: GraphExecutor,
        run_plan: FusedRunPlan,
        run_input: np.ndarray,
    ) -> OverlapTilingStats:
        """Quantify redundancy and the numerical error of the naive scheme."""
        reference = run_untiled(executor, run_plan, run_input)
        naive = self.run_naive(executor, run_plan, run_input)
        error = np.abs(reference - naive)
        return OverlapTilingStats(
            grid=(self.grid_rows, self.grid_cols),
            redundancy_factor=run_plan.redundancy_factor(),
            max_abs_error=float(error.max()),
            mean_abs_error=float(error.mean()),
        )


def _fit_to_region(tile: np.ndarray, channels: int, height: int, width: int) -> np.ndarray:
    """Crop (or zero-pad) a produced tile to the expected output cell size."""
    fitted = np.zeros((channels, height, width), dtype=tile.dtype)
    copy_h = min(height, tile.shape[1])
    copy_w = min(width, tile.shape[2])
    fitted[:, :copy_h, :copy_w] = tile[:, :copy_h, :copy_w]
    return fitted
