"""Neurosurgeon baseline (Kang et al., ASPLOS 2017).

Neurosurgeon partitions a *chain-topology* DNN at layer granularity between a
mobile device and a cloud server: it evaluates every possible split point
(device executes the prefix, the intermediate tensor crosses the network, the
cloud executes the suffix) and picks the one minimising end-to-end latency.
It cannot handle multi-branch DAGs, which is why the paper reports it only for
AlexNet and VGG-16 (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.placement import PlacementPlan, PlanEvaluator, PlanMetrics, Tier
from repro.core.strategy import (
    ClusterSpec,
    PartitionPlan,
    StrategyUnsupportedError,
    register_strategy,
)
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


class ChainTopologyError(ValueError):
    """Raised when Neurosurgeon is applied to a non-chain (DAG) network."""


@dataclass
class NeurosurgeonResult:
    """Outcome of the Neurosurgeon split-point search."""

    plan: PlacementPlan
    metrics: PlanMetrics
    split_index: int
    """Index of the last vertex executed on the device (0 = device keeps only
    the virtual input, i.e. full offload)."""

    @property
    def latency_s(self) -> float:
        return self.metrics.end_to_end_latency_s


class NeurosurgeonPartitioner:
    """Optimal single split of a chain DNN between two tiers.

    Parameters
    ----------
    profile, network:
        The same latency and bandwidth inputs HPA uses, for a fair comparison.
    front_tier, back_tier:
        The tiers holding the prefix and the suffix; the original system is
        device/cloud, which is the default.
    """

    def __init__(
        self,
        profile: LatencyProfile,
        network: NetworkCondition,
        front_tier: Tier = Tier.DEVICE,
        back_tier: Tier = Tier.CLOUD,
        economics=None,
        weights=None,
    ) -> None:
        if front_tier == back_tier:
            raise ValueError("front and back tiers must differ")
        self.profile = profile
        self.network = network
        self.front_tier = front_tier
        self.back_tier = back_tier
        #: Optional multi-objective configuration: when the weights put mass
        #: on energy or cost, the split search ranks candidates by the
        #: weighted objective instead of pure end-to-end latency.  The search
        #: is exhaustive, so a single-axis weight vector recovers that axis's
        #: exact optimum.
        self.economics = economics
        self.weights = weights
        self._weighted = (
            economics is not None and weights is not None and not weights.is_latency_only
        )

    # ------------------------------------------------------------------ #
    def supports(self, graph: DnnGraph) -> bool:
        """True when the graph has the chain topology Neurosurgeon requires."""
        return graph.is_chain()

    def candidate_plans(self, graph: DnnGraph) -> List[Tuple[int, PlacementPlan]]:
        """All split points: the prefix of length ``k`` runs on the front tier."""
        if not self.supports(graph):
            raise ChainTopologyError(
                f"{graph.name} is not a chain; Neurosurgeon cannot partition it"
            )
        order = graph.topological_order()
        plans: List[Tuple[int, PlacementPlan]] = []
        for split_index in range(len(order)):
            plan = PlacementPlan(graph)
            for position, vertex in enumerate(order):
                if position == 0:
                    # The virtual input vertex always stays on the device.
                    plan.assign(vertex.index, Tier.DEVICE)
                elif position <= split_index:
                    plan.assign(vertex.index, self.front_tier)
                else:
                    plan.assign(vertex.index, self.back_tier)
            plans.append((split_index, plan))
        return plans

    def partition(self, graph: DnnGraph) -> NeurosurgeonResult:
        """Pick the split point with the lowest objective.

        Pure latency by default; the weighted (latency, energy, cost) score
        when a multi-objective configuration was supplied.  Ties keep the
        earliest split, matching the original selection rule.
        """
        if self._weighted:
            evaluator = PlanEvaluator(
                self.profile,
                self.network,
                economics=self.economics,
                weights=self.weights,
            )
            best: Optional[NeurosurgeonResult] = None
            best_score = float("inf")
            for split_index, plan in self.candidate_plans(graph):
                score = evaluator.objective(plan)
                if best is None or score < best_score:
                    best_score = score
                    best = NeurosurgeonResult(
                        plan=plan,
                        metrics=evaluator.metrics(plan),
                        split_index=split_index,
                    )
            assert best is not None
            return best
        evaluator = PlanEvaluator(self.profile, self.network)
        best = None
        for split_index, plan in self.candidate_plans(graph):
            metrics = evaluator.metrics(plan)
            if best is None or metrics.end_to_end_latency_s < best.latency_s:
                best = NeurosurgeonResult(plan=plan, metrics=metrics, split_index=split_index)
        assert best is not None  # a chain always has at least one candidate
        return best


class NeurosurgeonStrategy:
    """:class:`~repro.core.strategy.PartitionStrategy` adapter for Neurosurgeon.

    ``supports()`` declines non-chain graphs (Inception, ResNet), so callers
    report the method as unavailable instead of catching
    :class:`ChainTopologyError` per call site.
    """

    name = "neurosurgeon"
    supports_repartitioning = False
    measure_by_simulation = False

    def supports(self, graph: DnnGraph) -> bool:
        return graph.is_chain()

    def plan(
        self,
        graph: DnnGraph,
        profile: LatencyProfile,
        network: NetworkCondition,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> PartitionPlan:
        if not self.supports(graph):
            raise StrategyUnsupportedError(
                f"{graph.name} is not a chain; the {self.name!r} method cannot partition it"
            )
        if cluster_spec is not None and cluster_spec.is_weighted:
            partitioner = NeurosurgeonPartitioner(
                profile,
                network,
                economics=cluster_spec.economics,
                weights=cluster_spec.objective_weights,
            )
        else:
            partitioner = NeurosurgeonPartitioner(profile, network)
        result = partitioner.partition(graph)
        return PartitionPlan(
            strategy=self.name,
            graph=graph,
            placement=result.plan,
            metrics=result.metrics,
            extras={"split_index": result.split_index},
            topology_fingerprint=cluster_spec.topology_fingerprint if cluster_spec else (),
        )


register_strategy(NeurosurgeonStrategy)
