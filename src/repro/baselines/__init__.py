"""Comparator systems used by the paper's evaluation.

* :mod:`repro.baselines.single_tier` — device-only, edge-only, cloud-only;
* :mod:`repro.baselines.neurosurgeon` — Neurosurgeon (Kang et al., ASPLOS'17):
  the optimal single split point of a *chain* DNN between the device and the
  cloud;
* :mod:`repro.baselines.dads` — DADS (Hu et al., INFOCOM'19): the optimal
  two-way edge/cloud partition of a DAG DNN found with a min-cut;
* :mod:`repro.baselines.deepthings` — DeepThings-style fused tile partition
  (FTP) with overlapping tiles, used as the ablation reference for VSM.
"""

from repro.baselines.single_tier import SingleTierBaseline, SingleTierStrategy, single_tier_plan
from repro.baselines.neurosurgeon import (
    NeurosurgeonPartitioner,
    NeurosurgeonResult,
    NeurosurgeonStrategy,
)
from repro.baselines.dads import DadsPartitioner, DadsResult, DadsStrategy
from repro.baselines.deepthings import FusedTilePartition, OverlapTilingStats

__all__ = [
    "DadsPartitioner",
    "DadsResult",
    "DadsStrategy",
    "FusedTilePartition",
    "NeurosurgeonPartitioner",
    "NeurosurgeonResult",
    "NeurosurgeonStrategy",
    "OverlapTilingStats",
    "SingleTierBaseline",
    "SingleTierStrategy",
    "single_tier_plan",
]
