"""Single-tier execution baselines (device-only, edge-only, cloud-only).

These are the first three comparison points of Fig. 9: the whole network runs
on one computation node, with the device shipping the raw input to that node
first (for edge-only and cloud-only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.placement import PlacementPlan, PlanEvaluator, PlanMetrics, Tier
from repro.core.strategy import ClusterSpec, PartitionPlan, register_strategy
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile


def single_tier_plan(graph: DnnGraph, tier: Tier) -> PlacementPlan:
    """Placement plan that runs the entire network on ``tier``.

    The virtual input vertex stays on the device (the device always collects
    the raw data), so edge-only and cloud-only plans are charged the raw-input
    upload exactly as in the paper.
    """
    return PlacementPlan.single_tier(graph, tier)


@dataclass
class SingleTierBaseline:
    """Evaluate the three single-tier baselines under one scenario."""

    profile: LatencyProfile
    network: NetworkCondition

    def metrics(self, graph: DnnGraph, tier: Tier) -> PlanMetrics:
        """Plan metrics of running ``graph`` entirely on ``tier``."""
        evaluator = PlanEvaluator(self.profile, self.network)
        return evaluator.metrics(single_tier_plan(graph, tier))

    def latency_s(self, graph: DnnGraph, tier: Tier) -> float:
        """End-to-end latency of the ``tier``-only execution."""
        return self.metrics(graph, tier).end_to_end_latency_s

    def all_latencies_s(self, graph: DnnGraph) -> dict:
        """Latency of all three single-tier baselines, keyed by tier."""
        return {tier: self.latency_s(graph, tier) for tier in Tier}


class SingleTierStrategy:
    """:class:`~repro.core.strategy.PartitionStrategy` adapter for one tier.

    Registered three times — ``device_only``, ``edge_only``, ``cloud_only`` —
    so the single-tier baselines plug into the same runner/serving/CLI paths
    as every partitioning method.
    """

    supports_repartitioning = False
    measure_by_simulation = False

    def __init__(self, tier: Tier) -> None:
        self.tier = Tier(tier)
        self.name = f"{self.tier.value}_only"

    def supports(self, graph: DnnGraph) -> bool:
        return True

    def plan(
        self,
        graph: DnnGraph,
        profile: LatencyProfile,
        network: NetworkCondition,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> PartitionPlan:
        placement = single_tier_plan(graph, self.tier)
        metrics = PlanEvaluator(profile, network).metrics(placement)
        return PartitionPlan(
            strategy=self.name,
            graph=graph,
            placement=placement,
            metrics=metrics,
            topology_fingerprint=cluster_spec.topology_fingerprint if cluster_spec else (),
        )


for _tier in (Tier.DEVICE, Tier.EDGE, Tier.CLOUD):
    register_strategy(lambda tier=_tier: SingleTierStrategy(tier), name=f"{_tier.value}_only")
