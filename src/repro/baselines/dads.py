"""DADS baseline (Hu et al., INFOCOM 2019).

DADS ("Dynamic Adaptive DNN Surgery") partitions a DAG-topology DNN between an
edge node and a cloud server by solving a minimum s-t cut on an auxiliary flow
network (in the lightly-loaded regime, which is the one the paper compares
against):

* every DNN vertex ``v`` gets an arc ``s -> v`` with capacity ``t^c_v`` (cut
  when ``v`` is placed on the cloud side) and an arc ``v -> t`` with capacity
  ``t^e_v`` (cut when ``v`` stays on the edge side);
* every data dependency ``(u, v)`` gets an arc ``u -> v`` (and, because the
  paper assumes symmetric two-way delays, a mirror arc ``v -> u``) with
  capacity equal to the transmission delay of ``u``'s output over the
  edge-to-cloud link.

The min cut therefore minimises exactly the total processing plus transfer
latency of a two-way split, which is what makes DADS a strong baseline: unlike
HPA it is *optimal* — but only for two tiers, and it must re-solve the global
cut whenever conditions change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import networkx as nx

from repro.core.placement import PlacementPlan, PlanEvaluator, PlanMetrics, Tier
from repro.core.strategy import ClusterSpec, PartitionPlan, register_strategy
from repro.graph.dag import DnnGraph
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile

_SOURCE = "__edge_source__"
_SINK = "__cloud_sink__"


@dataclass
class DadsResult:
    """Outcome of the DADS min-cut partition."""

    plan: PlacementPlan
    metrics: PlanMetrics
    cut_value_s: float
    edge_vertices: Set[int]
    cloud_vertices: Set[int]

    @property
    def latency_s(self) -> float:
        return self.metrics.end_to_end_latency_s


class DadsPartitioner:
    """Two-way (edge/cloud) min-cut partitioner for DAG DNNs.

    With a multi-objective configuration (``economics`` + non-latency-only
    ``weights``) every capacity becomes the corresponding *weighted score* —
    vertex arcs carry ``w_lat·t + w_energy·J + w_cost·$`` of running the
    vertex on that side, dependency arcs the weighted transfer score — so the
    min cut stays exactly optimal, now for the weighted objective.
    """

    def __init__(
        self,
        profile: LatencyProfile,
        network: NetworkCondition,
        economics=None,
        weights=None,
    ) -> None:
        self.profile = profile
        self.network = network
        self.economics = economics
        self.weights = weights
        self._weighted = (
            economics is not None and weights is not None and not weights.is_latency_only
        )

    # ------------------------------------------------------------------ #
    def _vertex_score(self, vertex, tier: Tier) -> float:
        seconds = self.profile.get(vertex.index, tier)
        if not self._weighted:
            return seconds
        return (
            self.weights.latency * seconds
            + self.weights.energy * self.economics.compute_joules(vertex.flops, tier)
            + self.weights.cost * self.economics.compute_cost_usd(seconds, tier)
        )

    def _transfer_score(self, payload_bytes: int) -> float:
        seconds = self.network.transfer_seconds(
            payload_bytes, Tier.EDGE.value, Tier.CLOUD.value
        )
        if not self._weighted:
            return seconds
        return self.weights.latency * seconds + self.weights.energy * (
            self.economics.transfer_joules(payload_bytes, Tier.EDGE, Tier.CLOUD)
        )

    def build_flow_network(self, graph: DnnGraph) -> "nx.DiGraph":
        """Construct the auxiliary flow network described above."""
        flow = nx.DiGraph()
        for vertex in graph:
            flow.add_edge(_SOURCE, vertex.index, capacity=self._vertex_score(vertex, Tier.CLOUD))
            flow.add_edge(vertex.index, _SINK, capacity=self._vertex_score(vertex, Tier.EDGE))
        # The virtual input vertex is produced by the device inside the LAN; it
        # can never be "computed on the cloud", so pin it to the edge side.
        flow[_SOURCE][graph.input_vertex.index]["capacity"] = float("inf")
        for src, dst in graph.edges():
            transfer = self._transfer_score(src.output_bytes)
            _add_capacity(flow, src.index, dst.index, transfer)
            _add_capacity(flow, dst.index, src.index, transfer)
        return flow

    def partition(self, graph: DnnGraph) -> DadsResult:
        """Solve the min cut and return the induced placement plan."""
        flow = self.build_flow_network(graph)
        cut_value, (edge_side, cloud_side) = nx.minimum_cut(flow, _SOURCE, _SINK)
        edge_vertices = {v for v in edge_side if isinstance(v, int)}
        cloud_vertices = {v for v in cloud_side if isinstance(v, int)}

        plan = PlacementPlan(graph)
        for vertex in graph:
            if vertex.index == graph.input_vertex.index:
                plan.assign(vertex.index, Tier.DEVICE)
            elif vertex.index in edge_vertices:
                plan.assign(vertex.index, Tier.EDGE)
            else:
                plan.assign(vertex.index, Tier.CLOUD)
        self._enforce_forward_flow(graph, plan)
        plan.validate()

        metrics = PlanEvaluator(self.profile, self.network).metrics(plan)
        return DadsResult(
            plan=plan,
            metrics=metrics,
            cut_value_s=float(cut_value),
            edge_vertices=edge_vertices,
            cloud_vertices=cloud_vertices,
        )

    @staticmethod
    def _enforce_forward_flow(graph: DnnGraph, plan: PlacementPlan) -> None:
        """Push descendants of cloud vertices to the cloud.

        The mirror arcs make backward cuts expensive but not impossible; a
        valid deployment cannot move data from the cloud back to the edge, so
        any edge-side vertex with a cloud-side predecessor is promoted to the
        cloud (this can only happen in degenerate profiles and never increases
        the number of cut edges).
        """
        for vertex in graph.topological_order():
            if plan.tier_of(vertex.index) == Tier.CLOUD:
                continue
            preds = graph.predecessors(vertex.index)
            if any(plan.tier_of(p.index) == Tier.CLOUD for p in preds):
                plan.assign(vertex.index, Tier.CLOUD)


class DadsStrategy:
    """:class:`~repro.core.strategy.PartitionStrategy` adapter for DADS."""

    name = "dads"
    supports_repartitioning = False
    measure_by_simulation = False

    def supports(self, graph: DnnGraph) -> bool:
        return True

    def plan(
        self,
        graph: DnnGraph,
        profile: "LatencyProfile",
        network: NetworkCondition,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> PartitionPlan:
        if cluster_spec is not None and cluster_spec.is_weighted:
            partitioner = DadsPartitioner(
                profile,
                network,
                economics=cluster_spec.economics,
                weights=cluster_spec.objective_weights,
            )
        else:
            partitioner = DadsPartitioner(profile, network)
        result = partitioner.partition(graph)
        return PartitionPlan(
            strategy=self.name,
            graph=graph,
            placement=result.plan,
            metrics=result.metrics,
            extras={
                "cut_value_s": result.cut_value_s,
                "edge_vertices": result.edge_vertices,
                "cloud_vertices": result.cloud_vertices,
            },
            topology_fingerprint=cluster_spec.topology_fingerprint if cluster_spec else (),
        )


register_strategy(DadsStrategy)


def _add_capacity(flow: "nx.DiGraph", src, dst, capacity: float) -> None:
    if flow.has_edge(src, dst):
        flow[src][dst]["capacity"] += capacity
    else:
        flow.add_edge(src, dst, capacity=capacity)
