"""Command-line entry point (``python -m repro`` / the ``repro`` console script).

Three subcommands cover the repository's entry points:

``repro run``
    One-shot D3 inference of a model under a network condition (the paper's
    pipeline of Fig. 2) — prints the placement and the execution report.

``repro serve``
    Multi-request serving: builds a deterministic or Poisson workload, drives
    it through :meth:`repro.core.d3.D3System.serve` and prints the serving
    report (percentile latency, throughput, queueing delay, plan-cache stats).

``repro scenario``
    Regenerate a named paper artefact (``fig09``, ``table02``, ...) or the
    serving rate sweep, printing the same tables the benchmarks assert on.

``repro bench``
    Performance benchmarks: ``repro bench engine`` measures the serving
    engine's events/sec, requests/sec, wall time and peak RSS per scheduler
    and maintains the committed ``BENCH_engine.json`` trajectory.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.version import __version__

#: Named paper scenarios: name -> (run callable, format callable), resolved
#: lazily so ``repro --help`` stays fast.
SCENARIO_NAMES = (
    "fig01",
    "fig04",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table01",
    "table02",
    "serving",
    "serving_methods",
    "topologies",
    "availability",
    "slo",
    "autoscale",
    "multimodel",
    "adaptation",
    "pareto",
)


def _scenario_registry() -> Dict[str, Tuple[Callable, Callable]]:
    from repro.experiments import (
        fig01_layer_profile,
        fig04_regression,
        fig09_hpa_speedup,
        fig10_vs_baselines,
        fig11_bandwidth_sweep,
        fig12_hpa_vsm,
        fig13_communication,
        table01_pair_latency,
        table02_tier_times,
    )
    from repro.experiments import adaptation as adaptation_harness
    from repro.experiments import autoscale as autoscale_harness
    from repro.experiments import availability as availability_harness
    from repro.experiments import multimodel as multimodel_harness
    from repro.experiments import pareto as pareto_harness
    from repro.experiments import serving as serving_harness
    from repro.experiments import slo as slo_harness
    from repro.experiments import topologies as topologies_harness

    return {
        "fig01": (fig01_layer_profile.run_layer_profile, fig01_layer_profile.format_layer_profile),
        "fig04": (fig04_regression.run_regression_experiment, fig04_regression.format_regression),
        "fig09": (fig09_hpa_speedup.run_hpa_speedup, fig09_hpa_speedup.format_hpa_speedup),
        "fig10": (fig10_vs_baselines.run_vs_baselines, fig10_vs_baselines.format_vs_baselines),
        "fig11": (fig11_bandwidth_sweep.run_bandwidth_sweep, fig11_bandwidth_sweep.format_bandwidth_sweep),
        "fig12": (fig12_hpa_vsm.run_hpa_vsm, fig12_hpa_vsm.format_hpa_vsm),
        "fig13": (fig13_communication.run_communication, fig13_communication.format_communication),
        "table01": (table01_pair_latency.run_pair_latency, table01_pair_latency.format_pair_latency),
        "table02": (table02_tier_times.run_tier_times, table02_tier_times.format_tier_times),
        "serving": (
            lambda: serving_harness.run_rate_sweep([0.5, 1.0, 2.0, 4.0, 8.0]),
            serving_harness.format_rate_sweep,
        ),
        "serving_methods": (
            lambda: serving_harness.run_method_comparison(
                ("neurosurgeon", "dads", "cloud_only", "hpa", "hpa_vsm"),
                serving_harness.ServingScenario(
                    models=("alexnet",), num_requests=50, rate_rps=4.0
                ),
            ),
            serving_harness.format_method_comparison,
        ),
        "topologies": (
            topologies_harness.run_topology_comparison,
            topologies_harness.format_topology_comparison,
        ),
        "availability": (
            availability_harness.run_availability_comparison,
            availability_harness.format_availability_comparison,
        ),
        "slo": (
            slo_harness.run_slo_comparison,
            slo_harness.format_slo_comparison,
        ),
        "autoscale": (
            autoscale_harness.run_autoscale_comparison,
            autoscale_harness.format_autoscale_comparison,
        ),
        "multimodel": (
            multimodel_harness.run_multimodel_comparison,
            multimodel_harness.format_multimodel_comparison,
        ),
        "adaptation": (
            adaptation_harness.run_adaptation_comparison,
            adaptation_harness.format_adaptation_comparison,
        ),
        "pareto": (
            pareto_harness.run_pareto_comparison,
            pareto_harness.format_pareto_comparison,
        ),
    }


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D3 reproduction: distributed DNN inference across device, edge and cloud.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser("run", help="one-shot D3 inference of a model")
    _add_system_arguments(run)
    run.add_argument("--no-vsm", action="store_true", help="disable VSM tile parallelism")

    serve = subparsers.add_parser("serve", help="serve a multi-request workload")
    _add_system_arguments(serve)
    serve.add_argument("--requests", type=int, default=100, help="number of requests")
    serve.add_argument("--rate", type=float, default=2.0, help="arrival rate (req/s)")
    serve.add_argument(
        "--arrival",
        choices=("poisson", "constant"),
        default="poisson",
        help="arrival process",
    )
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--uncontended-links",
        action="store_true",
        help="disable link contention (the paper's one-shot assumption)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PATH|chaos:SEED",
        help=(
            "failure scenario: a fault-schedule JSON file or chaos:<seed> for a "
            "seeded random crash/recover schedule over the deployed topology"
        ),
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="failover retry budget per request under a fault schedule (default: 3)",
    )
    serve.add_argument(
        "--elasticity",
        default=None,
        metavar="PATH",
        help=(
            "elasticity schedule: a JSON file of timed NodeJoin/NodeDrain "
            "events applied to the deployed topology"
        ),
    )
    serve.add_argument(
        "--autoscale",
        default=None,
        metavar="POLICY",
        help=(
            "autoscale the edge replica group with the named policy "
            "(target-util, queue-threshold) at its default thresholds"
        ),
    )
    serve.add_argument(
        "--balancer",
        choices=("rr", "jsq", "p2c"),
        default=None,
        help=(
            "replica-group load balancer: rr (round-robin), jsq (join-"
            "shortest-queue), p2c (power-of-two-choices); implied rr when "
            "--elasticity or --autoscale is given"
        ),
    )
    serve.add_argument(
        "--scheduler",
        choices=("fifo", "batch", "edf"),
        default="fifo",
        help=(
            "dispatch policy: fifo (default, arrival order), batch (dynamic "
            "micro-batching of same-layer work), edf (earliest-deadline-first "
            "over SLOs with admission control)"
        ),
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        metavar="N",
        help=(
            "per-request latency SLO in milliseconds; enables goodput/"
            "attainment reporting and, with --scheduler edf, admission control"
        ),
    )
    serve.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="GB",
        help=(
            "per-node weight-cache budget in GiB for device/edge tiers "
            "(the cloud keeps its hardware capacity — it is the artifact "
            "store); non-resident models pay a compressed cold start"
        ),
    )
    serve.add_argument(
        "--codec",
        choices=("none", "symmetric", "zxc"),
        default=None,
        help=(
            "weight-compression codec for cold-start transfers; zxc is "
            "write-once/read-many asymmetric (slow compress, fast decompress)"
        ),
    )
    serve.add_argument(
        "--eviction",
        choices=("lru", "priority"),
        default=None,
        help="weight-cache eviction policy (lru, or priority = fewest hits first)",
    )
    serve.add_argument(
        "--calibrate",
        action="store_true",
        help=(
            "learn corrected per-(node, layer) latencies and link throughput "
            "online from observed simulator timings (feeds adaptation and "
            "EDF admission); reports calibration/adaptation counters"
        ),
    )
    serve.add_argument(
        "--forecast-horizon",
        type=float,
        default=None,
        metavar="S",
        help=(
            "bandwidth-forecast look-ahead in seconds for proactive "
            "repartitioning under a drifting trace (implies --calibrate; "
            "0 keeps adaptation purely reactive)"
        ),
    )
    serve.add_argument(
        "--economics",
        action="store_true",
        help=(
            "meter energy (compute/radio/idle joules) and node-hour dollar "
            "cost from the run's timelines; adds the economics summary line"
        ),
    )
    serve.add_argument(
        "--weights",
        default=None,
        metavar="W_LAT,W_J,W_USD",
        help=(
            "objective weights for planning, as three comma-separated "
            "exchange rates (latency s, energy J, cost $); default plans "
            "pure-latency exactly as before"
        ),
    )

    scenario = subparsers.add_parser("scenario", help="regenerate a named paper artefact")
    scenario.add_argument("name", choices=SCENARIO_NAMES, help="scenario to run")

    bench = subparsers.add_parser(
        "bench", help="performance benchmarks (wall-clock, not correctness)"
    )
    bench.add_argument(
        "target",
        choices=("engine",),
        help="what to benchmark (engine: the serving simulator's hot loop)",
    )
    bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the benchmark (see `repro bench engine --help`)",
    )
    return parser


def _add_system_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default="vgg16",
        help=(
            "model name (see repro.models.zoo); serve accepts a comma-"
            "separated list for a mixed-model stream"
        ),
    )
    parser.add_argument(
        "--network",
        default="wifi",
        choices=("wifi", "4g", "5g", "optical"),
        help="network condition (Table III)",
    )
    parser.add_argument("--edge-nodes", type=int, default=4, help="number of edge nodes")
    parser.add_argument(
        "--topology",
        default=None,
        metavar="PRESET|PATH",
        help=(
            "deployment topology: a preset (three_tier, multi_device, hetero_edge, "
            "device_gateway) or a path to a topology JSON file; overrides --edge-nodes"
        ),
    )
    parser.add_argument(
        "--method",
        default=None,
        metavar="NAME",
        help=(
            "partitioning method from the strategy registry "
            "(hpa_vsm, hpa, neurosurgeon, dads, device_only, edge_only, cloud_only; "
            "default: the configured D3 method)"
        ),
    )


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _parse_weights(raw: Optional[str]):
    """``"1,0.1,2000"`` -> an (w_lat, w_energy, w_cost) tuple (``None`` passes)."""
    if raw is None:
        return None
    parts = [piece.strip() for piece in raw.split(",")]
    if len(parts) != 3:
        raise ValueError("--weights needs exactly three comma-separated numbers")
    try:
        return tuple(float(piece) for piece in parts)
    except ValueError as error:
        raise ValueError(f"--weights could not be parsed: {raw!r}") from error


def _build_system(args, enable_vsm: bool = True):
    from repro.core.d3 import D3Config, D3System

    return D3System(
        D3Config(
            topology=getattr(args, "topology", None),
            network=args.network,
            num_edge_nodes=args.edge_nodes,
            enable_vsm=enable_vsm,
            use_regression=False,
            profiler_noise_std=0.0,
            objective_weights=_parse_weights(getattr(args, "weights", None)),
        )
    )


def _command_run(args) -> int:
    from repro.models.zoo import build_model

    system = _build_system(args, enable_vsm=not args.no_vsm)
    result = system.run(build_model(args.model), method=args.method)
    print(f"method: {result.method}")
    print(result.placement.describe())
    print(result.report.summary())
    return 0


def _command_serve(args) -> int:
    from repro.runtime.workload import Workload

    if args.rate <= 0:
        raise ValueError("rate must be positive")
    if args.slo_ms is not None and args.slo_ms <= 0:
        raise ValueError("--slo-ms must be positive")
    system = _build_system(args)
    # On multi-device topologies the stream originates round-robin from every
    # device of the fleet; single-device deployments keep the primary device.
    devices = system.cluster.devices
    sources = [node.name for node in devices] if len(devices) > 1 else None
    models = [name.strip() for name in args.model.split(",") if name.strip()]
    if not models:
        raise ValueError("--model needs at least one model name")
    # A mixed-model stream superposes one sub-stream per model: the request
    # count is split evenly (remainder to the first models) and each model
    # keeps the full rate so the merged stream's intensity matches a
    # single-model run of --requests at --rate.
    per_model = args.requests // len(models)
    remainder = args.requests % len(models)
    streams = []
    for position, model in enumerate(models):
        count = per_model + (1 if position < remainder else 0)
        if count <= 0:
            continue
        if args.arrival == "constant":
            streams.append(
                Workload.constant_rate(
                    model,
                    num_requests=count,
                    interval_s=len(models) / args.rate,
                    start_s=position * (1.0 / args.rate),
                    sources=sources,
                    slo_ms=args.slo_ms,
                )
            )
        else:
            streams.append(
                Workload.poisson(
                    model,
                    num_requests=count,
                    rate_rps=args.rate / len(models),
                    seed=args.seed + position,
                    sources=sources,
                    slo_ms=args.slo_ms,
                )
            )
    workload = streams[0] if len(streams) == 1 else Workload.merge(*streams)
    contention = "none" if args.uncontended_links else "fifo"
    calibration = None
    if args.calibrate or args.forecast_horizon is not None:
        from repro.runtime.calibration import CalibrationConfig

        if args.forecast_horizon is not None and args.forecast_horizon < 0:
            raise ValueError("--forecast-horizon cannot be negative")
        calibration = (
            CalibrationConfig(horizon_s=args.forecast_horizon)
            if args.forecast_horizon is not None
            else CalibrationConfig()
        )
    report = system.serve(
        workload,
        link_contention=contention,
        method=args.method,
        faults=args.faults,
        max_retries=args.max_retries,
        scheduler=args.scheduler,
        elasticity=args.elasticity,
        autoscaler=args.autoscale,
        balancer=args.balancer,
        memory=args.memory_budget,
        codec=args.codec,
        eviction=args.eviction,
        calibration=calibration,
        economics=args.economics or args.weights is not None,
    )
    print(report.summary())
    return 0


def _command_scenario(args) -> int:
    run_fn, format_fn = _scenario_registry()[args.name]
    print(format_fn(run_fn()))
    return 0


def _command_bench(args) -> int:
    from repro.benchmarks import engine as engine_bench

    return engine_bench.main(args.bench_args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handlers = {
        "run": _command_run,
        "serve": _command_serve,
        "scenario": _command_scenario,
        "bench": _command_bench,
    }
    try:
        return handlers[args.command](args)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
