"""Serving-engine benchmark: events/sec, requests/sec, wall time, peak RSS.

The engine's correctness is pinned by golden traces; this module pins its
*speed*.  It drives :class:`~repro.runtime.serving.ServingSimulator` directly
over a pre-planned request stream (planning happens before the clock starts,
so the numbers measure the discrete-event engine, not the partitioner) in
``stream_stats`` mode, and reports one row per ``(request count, scheduler)``
cell.

Each cell runs in a fresh subprocess so peak RSS is the cell's own high-water
mark rather than whatever an earlier, larger run left behind (``ru_maxrss``
never shrinks within a process).  The committed ``BENCH_engine.json`` tracks
the trajectory across PRs; CI re-runs the small cells and fails on a >20%
events/sec regression against the committed numbers (see ``--check``).

Usage::

    PYTHONPATH=src python -m repro.benchmarks.engine --requests 10000
    repro bench engine --requests 10000 --check BENCH_engine.json
    repro bench engine --write BENCH_engine.json   # refresh the committed file

The scenario is fixed — alexnet at a constant 200 req/s on the paper's
four-edge-node wifi testbed — so numbers are comparable across commits.  EDF
cells attach a 250 ms SLO to every request: that exercises the admission
predictor (the committed-compute scan) on the hot path, which FIFO never
touches.  The ``elastic`` cell is FIFO dispatch plus the full elastic-fleet
machinery — a target-utilisation autoscaler over the edge replica group with
join-shortest-queue balancing — with the fleet pinned at full size
(``min_replicas`` = the group size), so the simulated schedule matches the
static ``fifo`` cell and the wall-time delta prices exactly the hot-path
machinery: per-request replica resolution, balancer choice and utilisation
sampling (the overhead budget is <10%).  Scaling behaviour itself — parking,
provisioning, drains — is pinned by the ``elastic`` golden trace and the
elasticity test suite, not by this benchmark.

The ``memory`` cell follows the same pattern for the weight-cache subsystem:
FIFO dispatch plus a roomy :class:`~repro.runtime.artifacts.MemoryModel`
(8 GiB budget, zxc codec, ``warm=True`` so first-touch loads are free and
the schedule matches the static ``fifo`` cell) — the wall-time delta prices
exactly the hot-path cache machinery: per-request residency checks, hit
accounting and residency claims (pin tables are reconstructed from claims
only under eviction pressure, so they cost nothing here; the overhead budget
is <10%).  Cold-start *behaviour* is pinned by the ``multimodel`` golden
trace, not by this benchmark.

The ``calibrated`` cell prices the online cost calibrator the same way: FIFO
dispatch plus an :class:`~repro.runtime.calibration.OnlineCostCalibrator`
fed the engine's task, transfer and request-completion streams on the hot
path.  The bandwidth is steady, so the schedule matches the static ``fifo``
cell and the wall-time delta is exactly the observation bookkeeping —
per-request inlined sampling-gate checks plus the EWMA updates the gates
admit (the overhead budget is <10%).  Adaptation *behaviour* — forecasting,
proactive repartitions — is pinned by the ``adaptation`` golden trace and
``repro scenario adaptation``, not by this benchmark.

The ``economics`` cell prices the energy/dollar metering: FIFO dispatch with
``economics=True``.  The design puts the accounting entirely at
report-build time — joules and dollars are derived from the busy-second and
bytes-carried integrals the engine already maintains — so the event loop
executes zero extra instructions and the cell's wall time must match the
static ``fifo`` cell (the overhead budget is <10%, and any delta at all is
a sign the accounting leaked onto the hot path).  Metering *correctness* is
pinned by the runtime economics tests, not by this benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

#: The fixed benchmark scenario (changing any of these resets the trajectory).
MODEL = "alexnet"
NUM_EDGE_NODES = 4
NETWORK = "wifi"
INTERVAL_S = 0.005
EDF_SLO_MS = 250.0

DEFAULT_SIZES = (10_000, 100_000, 1_000_000)
SCHEDULERS = ("fifo", "batch", "edf", "elastic", "memory", "calibrated", "economics")
DEFAULT_OUTPUT = "BENCH_engine.json"

#: The ``memory`` cell's configuration: a budget far above alexnet's
#: footprint (no evictions) and ``warm=True`` (no cold-start latency), so
#: the schedule is identical to the ``fifo`` cell and the delta prices the
#: residency-check and claim bookkeeping alone.
MEMORY_BUDGET_GB = 8.0
MEMORY_CODEC = "zxc"

#: The ``elastic`` cell's balancer.  The autoscaler pins the fleet at full
#: size (``min_replicas`` = the group size): the sampling loop runs every
#: tick and every request pays replica resolution, but the schedule stays
#: identical to the static cell — the comparison prices the machinery, not
#: a differently-sized fleet.
ELASTIC_BALANCER = "jsq"

#: The engine this PR replaced, measured on the same scenario (100k FIFO):
#: the acceptance bar is >=5x events/sec over these numbers, and they stay in
#: the bench file so the trajectory keeps its origin.
BASELINE_BEFORE = {
    "label": "pre-optimization engine, 100k fifo, same scenario",
    "requests": 100_000,
    "wall_s": 35.391,
    "requests_per_s": 2825.5,
    "events_per_s": 33907.0,
    "peak_rss_mb": 690.6,
}


def run_single(size: int, scheduler: str) -> Dict:
    """One benchmark cell, measured in this process.

    Plans the workload first (cold plan cache — one miss, then stream-wide
    hits), then times ``ServingSimulator.run`` alone.
    """
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.artifacts import MemoryModel
    from repro.runtime.calibration import OnlineCostCalibrator
    from repro.runtime.elasticity import Autoscaler
    from repro.runtime.serving import ServingSimulator
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(
            network=NETWORK,
            num_edge_nodes=NUM_EDGE_NODES,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )
    elastic = scheduler == "elastic"
    memory = scheduler == "memory"
    calibrated = scheduler == "calibrated"
    economics = scheduler == "economics"
    slo_ms = EDF_SLO_MS if scheduler == "edf" else None
    workload = Workload.constant_rate(
        MODEL, num_requests=size, interval_s=INTERVAL_S, slo_ms=slo_ms
    )
    requests = system.plan_requests(workload)
    simulator = ServingSimulator(
        system.cluster,
        scheduler="fifo" if (elastic or memory or calibrated or economics) else scheduler,
        stream_stats=True,
        economics=economics,
        autoscaler=(
            Autoscaler(policy="target-util", min_replicas=NUM_EDGE_NODES)
            if elastic
            else None
        ),
        balancer=ELASTIC_BALANCER if elastic else None,
        memory=(
            MemoryModel(budget_gb=MEMORY_BUDGET_GB, codec=MEMORY_CODEC, warm=True)
            if memory
            else None
        ),
        calibration=OnlineCostCalibrator() if calibrated else None,
    )
    start = time.perf_counter()
    simulator.run(requests)
    wall_s = time.perf_counter() - start
    report = simulator.build_report(workload.name, [])
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "requests": size,
        "scheduler": scheduler,
        "wall_s": round(wall_s, 3),
        "events": simulator.events_processed,
        "events_per_s": round(simulator.events_processed / wall_s, 1),
        "requests_per_s": round(size / wall_s, 1),
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "completed": report.num_completed,
        "rejected": report.num_rejected,
    }


def _run_cell(size: int, scheduler: str, isolate: bool, repeat: int = 1) -> Dict:
    """Run one cell ``repeat`` times and keep the fastest (in a subprocess
    when ``isolate``, for a clean RSS high-water mark).

    Wall time on a shared host is the true cost plus nonnegative scheduling
    noise, so the minimum over repeats is the least-biased estimator — the
    one to commit when two cells are compared against each other.
    """
    best: Optional[Dict] = None
    for _ in range(max(1, repeat)):
        if not isolate:
            cell = run_single(size, scheduler)
        else:
            package_root = os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))
            )
            env = dict(os.environ)
            existing = env.get("PYTHONPATH")
            env["PYTHONPATH"] = (
                package_root
                if not existing
                else package_root + os.pathsep + existing
            )
            output = subprocess.check_output(
                [
                    sys.executable,
                    "-m",
                    "repro.benchmarks.engine",
                    "--single",
                    str(size),
                    scheduler,
                ],
                env=env,
            )
            cell = json.loads(output)
        if best is None or cell["wall_s"] < best["wall_s"]:
            best = cell
    return best


def run_benchmark(
    sizes: List[int], schedulers: List[str], isolate: bool = True, repeat: int = 1
) -> Dict:
    """The full grid as a ``BENCH_engine.json``-shaped payload."""
    results: Dict[str, Dict[str, Dict]] = {}
    for size in sizes:
        row: Dict[str, Dict] = {}
        for scheduler in schedulers:
            cell = _run_cell(size, scheduler, isolate, repeat)
            row[scheduler] = cell
            print(
                f"  {size:>9,} x {scheduler:<5}  wall {cell['wall_s']:>8.3f}s  "
                f"{cell['events_per_s']:>10,.0f} events/s  "
                f"{cell['requests_per_s']:>9,.0f} req/s  "
                f"rss {cell['peak_rss_mb']:>7.1f} MB",
                file=sys.stderr,
            )
        results[str(size)] = row
    return {
        "schema": 1,
        "scenario": {
            "model": MODEL,
            "arrival": "constant",
            "interval_s": INTERVAL_S,
            "rate_rps": 1.0 / INTERVAL_S,
            "network": NETWORK,
            "num_edge_nodes": NUM_EDGE_NODES,
            "edf_slo_ms": EDF_SLO_MS,
            "stream_stats": True,
        },
        "baseline_before": dict(BASELINE_BEFORE),
        "results": results,
    }


def check_regression(
    payload: Dict, reference_path: str, tolerance: float
) -> List[str]:
    """Cells of ``payload`` slower than committed reference by > tolerance."""
    with open(reference_path, "r", encoding="utf-8") as handle:
        reference = json.load(handle)
    failures = []
    for size, row in payload["results"].items():
        reference_row = reference.get("results", {}).get(size, {})
        for scheduler, cell in row.items():
            committed = reference_row.get(scheduler)
            if committed is None:
                continue
            floor = committed["events_per_s"] * (1.0 - tolerance)
            if cell["events_per_s"] < floor:
                failures.append(
                    f"{size} x {scheduler}: {cell['events_per_s']:,.0f} events/s "
                    f"< {floor:,.0f} (committed {committed['events_per_s']:,.0f} "
                    f"- {tolerance:.0%})"
                )
    return failures


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench engine",
        description="Benchmark the serving engine (events/sec, wall time, peak RSS).",
    )
    parser.add_argument(
        "--requests",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help=(
            "request count to measure (repeatable; default: the committed "
            "trajectory's 10k/100k/1M grid)"
        ),
    )
    parser.add_argument(
        "--schedulers",
        default=",".join(SCHEDULERS),
        metavar="LIST",
        help="comma-separated scheduler subset (default: fifo,batch,edf)",
    )
    parser.add_argument(
        "--write",
        nargs="?",
        const=DEFAULT_OUTPUT,
        default=None,
        metavar="PATH",
        help=f"write the payload as JSON (default path: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="fail when events/sec regresses versus this committed bench file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression for --check (default: 0.2)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        metavar="EVENTS_PER_S",
        help="fail when any measured cell falls below this absolute events/sec",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="run cells in-process (faster, but peak RSS accumulates)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run each cell N times and keep the fastest — use >1 when "
            "refreshing the committed file on a noisy host (default: 1)"
        ),
    )
    parser.add_argument(
        "--single",
        nargs=2,
        default=None,
        metavar=("SIZE", "SCHEDULER"),
        help=argparse.SUPPRESS,  # internal: one cell, JSON on stdout
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.single is not None:
        cell = run_single(int(args.single[0]), args.single[1])
        json.dump(cell, sys.stdout)
        sys.stdout.write("\n")
        return 0

    sizes = args.requests if args.requests else list(DEFAULT_SIZES)
    schedulers = [name.strip() for name in args.schedulers.split(",") if name.strip()]
    for name in schedulers:
        if name not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {name!r}; expected one of {SCHEDULERS}")
    payload = run_benchmark(
        sizes, schedulers, isolate=not args.no_isolate, repeat=args.repeat
    )
    print(json.dumps(payload, indent=2))

    status = 0
    if args.floor is not None:
        for size, row in payload["results"].items():
            for scheduler, cell in row.items():
                if cell["events_per_s"] < args.floor:
                    print(
                        f"FLOOR VIOLATION {size} x {scheduler}: "
                        f"{cell['events_per_s']:,.0f} < {args.floor:,.0f} events/s",
                        file=sys.stderr,
                    )
                    status = 1
    if args.check is not None:
        failures = check_regression(payload, args.check, args.tolerance)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            status = 1
    if args.write is not None:
        with open(args.write, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.write}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
