"""Performance benchmark harnesses (wall-clock, not correctness).

:mod:`repro.benchmarks.engine` measures the serving engine itself — events/sec,
requests/sec, wall time and peak RSS at 10k/100k/1M requests across the three
schedulers — and maintains the committed ``BENCH_engine.json`` trajectory file.
"""
