"""Tensor shape helpers shared by the graph substrate.

Shapes are plain tuples of positive integers.  Convolutional feature maps use
the channels-first convention ``(channels, height, width)`` used throughout the
paper (inputs are ``3 x 224 x 224``); fully-connected activations use a single
dimension ``(features,)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

Shape = Tuple[int, ...]

#: Number of bytes used to store one activation element.  The paper ships
#: single-precision float tensors between tiers, so 4 bytes per element.
BYTES_PER_ELEMENT = 4


def element_count(shape: Shape) -> int:
    """Return the number of scalar elements in a tensor of ``shape``."""
    count = 1
    for dim in shape:
        count *= dim
    return count


def tensor_bytes(shape: Shape, bytes_per_element: int = BYTES_PER_ELEMENT) -> int:
    """Return the serialized size in bytes of a tensor of ``shape``."""
    return element_count(shape) * bytes_per_element


def is_feature_map(shape: Shape) -> bool:
    """True when ``shape`` is a channels-first 3-D feature map ``(C, H, W)``."""
    return len(shape) == 3


def is_vector(shape: Shape) -> bool:
    """True when ``shape`` is a flat activation vector ``(F,)``."""
    return len(shape) == 1


def validate_shape(shape: Sequence[int]) -> Shape:
    """Validate and normalise a user-supplied shape.

    Raises
    ------
    ValueError
        If the shape is empty or any dimension is not a positive integer.
    """
    if len(shape) == 0:
        raise ValueError("shape must have at least one dimension")
    normalised = []
    for dim in shape:
        if int(dim) != dim or int(dim) <= 0:
            raise ValueError(f"shape dimensions must be positive integers, got {shape!r}")
        normalised.append(int(dim))
    return tuple(normalised)


def conv_output_hw(
    in_h: int,
    in_w: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Spatial output size of a convolution / pooling window.

    Implements Equation (3) of the paper:

    ``W_i = (W_{i-1} - F^w_{i-1} + 2 P^w_{i-1}) / S^w_{i-1} + 1`` (and the same
    for the height), using floor division as every deep-learning framework does.
    """
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = (in_h - kernel_h + 2 * pad_h) // stride_h + 1
    out_w = (in_w - kernel_w + 2 * pad_w) // stride_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            "convolution window larger than padded input: "
            f"input {in_h}x{in_w}, kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out_h, out_w


def same_padding(kernel: Tuple[int, int]) -> Tuple[int, int]:
    """Padding that preserves the spatial size for stride-1 odd kernels."""
    return kernel[0] // 2, kernel[1] // 2
