"""Layer specifications.

Every vertex of the DNN DAG (:class:`repro.graph.dag.DnnGraph`) carries a
:class:`LayerSpec` describing the layer's type and hyper-parameters.  A spec
knows how to

* infer its output shape from the shapes of its inputs,
* count the floating-point operations it performs (used by the analytic cost
  model that plays the role of the paper's hardware testbed), and
* count its weights (used for memory-footprint accounting and for the
  regression features).

The set of layer kinds covers everything needed by the paper's five evaluation
networks (AlexNet, VGG-16, ResNet-18, Darknet-53 and Inception-v4): standard
and grouped convolutions, max/avg pooling, global pooling, batch normalisation,
ReLU / LeakyReLU, local response normalisation, dropout, flatten, fully
connected layers, softmax, channel concatenation and element-wise addition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.graph.shapes import Shape, conv_output_hw, element_count, validate_shape


class ShapeError(ValueError):
    """Raised when a layer receives inputs with incompatible shapes."""


def _single_input(inputs: Sequence[Shape], layer: str) -> Shape:
    if len(inputs) != 1:
        raise ShapeError(f"{layer} expects exactly one input, got {len(inputs)}")
    return inputs[0]


def _feature_map_input(inputs: Sequence[Shape], layer: str) -> Shape:
    shape = _single_input(inputs, layer)
    if len(shape) != 3:
        raise ShapeError(f"{layer} expects a (C, H, W) feature map, got {shape}")
    return shape


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    Sub-classes are frozen dataclasses so they can be freely shared, hashed and
    used as dictionary keys (e.g. by the regression feature extractor).
    """

    #: Human readable layer kind, overridden by subclasses.
    kind: str = field(default="abstract", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        """Return the output shape given the input shapes."""
        raise NotImplementedError

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        """Number of floating point operations performed by this layer.

        Multiply-accumulate pairs are counted as two operations, matching the
        convention used by common profilers.
        """
        raise NotImplementedError

    def weight_count(self, inputs: Sequence[Shape], output: Shape) -> int:
        """Number of learnable parameters held by this layer."""
        return 0

    @property
    def is_convolutional(self) -> bool:
        """True for layers that VSM can tile spatially (conv and pooling)."""
        return False

    @property
    def is_compute_intensive(self) -> bool:
        """True for layers dominated by arithmetic (conv, linear)."""
        return False


@dataclass(frozen=True)
class InputLayer(LayerSpec):
    """The virtual input vertex ``v0`` of the paper.

    It produces the raw input tensor collected by the device node and performs
    no computation.
    """

    shape: Shape
    kind: str = field(default="input", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", validate_shape(self.shape))

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        if inputs:
            raise ShapeError("InputLayer takes no inputs")
        return self.shape

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Conv2d(LayerSpec):
    """2-D convolution with explicit kernel, stride, padding and groups."""

    out_channels: int
    kernel: Tuple[int, int]
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    groups: int = 1
    bias: bool = True
    kind: str = field(default="conv", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ValueError("out_channels must be positive")
        if self.groups <= 0:
            raise ValueError("groups must be positive")
        if self.out_channels % self.groups != 0:
            raise ValueError("out_channels must be divisible by groups")

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        channels, height, width = _feature_map_input(inputs, "Conv2d")
        if channels % self.groups != 0:
            raise ShapeError(
                f"input channels {channels} not divisible by groups {self.groups}"
            )
        out_h, out_w = conv_output_hw(height, width, self.kernel, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        in_channels = inputs[0][0]
        out_channels, out_h, out_w = output
        kernel_h, kernel_w = self.kernel
        macs_per_output = (in_channels // self.groups) * kernel_h * kernel_w
        macs = macs_per_output * out_channels * out_h * out_w
        ops = 2 * macs
        if self.bias:
            ops += out_channels * out_h * out_w
        return ops

    def weight_count(self, inputs: Sequence[Shape], output: Shape) -> int:
        in_channels = inputs[0][0]
        kernel_h, kernel_w = self.kernel
        weights = self.out_channels * (in_channels // self.groups) * kernel_h * kernel_w
        if self.bias:
            weights += self.out_channels
        return weights

    @property
    def is_convolutional(self) -> bool:
        return True

    @property
    def is_compute_intensive(self) -> bool:
        return True


@dataclass(frozen=True)
class _Pool2d(LayerSpec):
    """Shared implementation for max and average pooling."""

    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)
    padding: Tuple[int, int] = (0, 0)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        channels, height, width = _feature_map_input(inputs, type(self).__name__)
        out_h, out_w = conv_output_hw(height, width, self.kernel, self.stride, self.padding)
        return (channels, out_h, out_w)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        kernel_h, kernel_w = self.kernel
        return element_count(output) * kernel_h * kernel_w

    @property
    def is_convolutional(self) -> bool:
        # Pooling layers are separated and fused by VSM in the same way as the
        # convolutional layers (paper, end of section III-F).
        return True


@dataclass(frozen=True)
class MaxPool2d(_Pool2d):
    kind: str = field(default="maxpool", init=False, repr=False)


@dataclass(frozen=True)
class AvgPool2d(_Pool2d):
    kind: str = field(default="avgpool", init=False, repr=False)


@dataclass(frozen=True)
class GlobalAvgPool2d(LayerSpec):
    """Global average pooling producing a ``(C,)`` vector."""

    kind: str = field(default="globalavgpool", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        channels, _height, _width = _feature_map_input(inputs, "GlobalAvgPool2d")
        return (channels,)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return element_count(inputs[0])


@dataclass(frozen=True)
class Linear(LayerSpec):
    """Fully connected layer."""

    out_features: int
    bias: bool = True
    kind: str = field(default="linear", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError("out_features must be positive")

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        shape = _single_input(inputs, "Linear")
        if len(shape) != 1:
            raise ShapeError(f"Linear expects a flat (F,) input, got {shape}")
        return (self.out_features,)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        in_features = inputs[0][0]
        ops = 2 * in_features * self.out_features
        if self.bias:
            ops += self.out_features
        return ops

    def weight_count(self, inputs: Sequence[Shape], output: Shape) -> int:
        in_features = inputs[0][0]
        weights = in_features * self.out_features
        if self.bias:
            weights += self.out_features
        return weights

    @property
    def is_compute_intensive(self) -> bool:
        return True


@dataclass(frozen=True)
class ReLU(LayerSpec):
    kind: str = field(default="relu", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _single_input(inputs, "ReLU")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return element_count(output)


@dataclass(frozen=True)
class LeakyReLU(LayerSpec):
    """Leaky ReLU as used by Darknet-53."""

    negative_slope: float = 0.1
    kind: str = field(default="leakyrelu", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _single_input(inputs, "LeakyReLU")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 2 * element_count(output)


@dataclass(frozen=True)
class BatchNorm2d(LayerSpec):
    """Inference-time batch normalisation (scale and shift per channel)."""

    kind: str = field(default="batchnorm", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _feature_map_input(inputs, "BatchNorm2d")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 2 * element_count(output)

    def weight_count(self, inputs: Sequence[Shape], output: Shape) -> int:
        channels = inputs[0][0]
        return 4 * channels


@dataclass(frozen=True)
class LocalResponseNorm(LayerSpec):
    """Local response normalisation, used by AlexNet."""

    size: int = 5
    kind: str = field(default="lrn", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _feature_map_input(inputs, "LocalResponseNorm")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return (self.size + 3) * element_count(output)


@dataclass(frozen=True)
class Dropout(LayerSpec):
    """Dropout — identity at inference time, kept for architectural fidelity."""

    rate: float = 0.5
    kind: str = field(default="dropout", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _single_input(inputs, "Dropout")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Flatten(LayerSpec):
    """Flatten a feature map into a vector before the classifier head."""

    kind: str = field(default="flatten", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        shape = _single_input(inputs, "Flatten")
        return (element_count(shape),)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Softmax(LayerSpec):
    kind: str = field(default="softmax", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        return _single_input(inputs, "Softmax")

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 3 * element_count(output)


@dataclass(frozen=True)
class Concat(LayerSpec):
    """Channel-wise concatenation of several feature maps (Inception modules)."""

    kind: str = field(default="concat", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        if len(inputs) < 2:
            raise ShapeError("Concat expects at least two inputs")
        first = inputs[0]
        if len(first) != 3:
            raise ShapeError("Concat expects (C, H, W) feature maps")
        height, width = first[1], first[2]
        channels = 0
        for shape in inputs:
            if len(shape) != 3 or shape[1] != height or shape[2] != width:
                raise ShapeError(
                    f"Concat inputs must share spatial dims, got {list(inputs)}"
                )
            channels += shape[0]
        return (channels, height, width)

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Add(LayerSpec):
    """Element-wise addition of residual branches (ResNet / Darknet)."""

    kind: str = field(default="add", init=False, repr=False)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        if len(inputs) < 2:
            raise ShapeError("Add expects at least two inputs")
        first = inputs[0]
        for shape in inputs[1:]:
            if shape != first:
                raise ShapeError(f"Add inputs must have identical shapes, got {list(inputs)}")
        return first

    def flops(self, inputs: Sequence[Shape], output: Shape) -> int:
        return (len(inputs) - 1) * element_count(output)


#: Layer kinds that carry learnable weights (useful for regression features).
WEIGHTED_KINDS = ("conv", "linear", "batchnorm")


def all_layer_kinds() -> List[str]:
    """Return the list of layer kinds known to the substrate."""
    return [
        "input",
        "conv",
        "maxpool",
        "avgpool",
        "globalavgpool",
        "linear",
        "relu",
        "leakyrelu",
        "batchnorm",
        "lrn",
        "dropout",
        "flatten",
        "softmax",
        "concat",
        "add",
    ]
