"""Fluent helper for constructing :class:`~repro.graph.dag.DnnGraph` objects.

The model zoo uses this builder to express architectures concisely: the builder
keeps track of the "current" vertex so sequential layers can be chained without
repeating names, while branch points (Inception modules, residual blocks) are
expressed with explicit input lists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.graph.dag import DnnGraph, Vertex
from repro.graph.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LayerSpec,
    LeakyReLU,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.graph.shapes import Shape, same_padding

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    """Normalise an int-or-pair hyper-parameter to a pair."""
    if isinstance(value, tuple):
        return value
    return (value, value)


class GraphBuilder:
    """Incrementally build a DNN graph.

    Example
    -------
    >>> builder = GraphBuilder("tiny", input_shape=(3, 32, 32))
    >>> builder.conv("conv1", 16, kernel=3, padding=1).relu("relu1")
    >>> builder.maxpool("pool1", kernel=2, stride=2)
    >>> graph = builder.build()
    """

    def __init__(self, name: str, input_shape: Shape) -> None:
        self.graph = DnnGraph(name)
        self._current = self.graph.add_input(input_shape).name

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> str:
        """Name of the most recently added vertex (the implicit input)."""
        return self._current

    def set_current(self, name: str) -> "GraphBuilder":
        """Make ``name`` the implicit input of the next sequential layer."""
        self.graph.vertex(name)  # raises if unknown
        self._current = name
        return self

    def _inputs(self, inputs: Optional[Sequence[str]]) -> List[str]:
        if inputs is None:
            return [self._current]
        return list(inputs)

    def add(self, name: str, spec: LayerSpec, inputs: Optional[Sequence[str]] = None) -> str:
        """Add an arbitrary layer spec and return the new vertex name."""
        self.graph.add_vertex(name, spec, self._inputs(inputs))
        self._current = name
        return name

    def build(self) -> DnnGraph:
        """Validate and return the constructed graph."""
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------ #
    # Layer shortcuts
    # ------------------------------------------------------------------ #
    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: IntPair,
        stride: IntPair = 1,
        padding: Optional[IntPair] = None,
        groups: int = 1,
        bias: bool = True,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a convolution.  ``padding=None`` means "same" padding."""
        kernel_pair = _pair(kernel)
        pad_pair = same_padding(kernel_pair) if padding is None else _pair(padding)
        spec = Conv2d(
            out_channels=out_channels,
            kernel=kernel_pair,
            stride=_pair(stride),
            padding=pad_pair,
            groups=groups,
            bias=bias,
        )
        return self.add(name, spec, inputs)

    def conv_bn_relu(
        self,
        name: str,
        out_channels: int,
        kernel: IntPair,
        stride: IntPair = 1,
        padding: Optional[IntPair] = None,
        leaky: bool = False,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Convenience block: convolution + batch norm + (Leaky)ReLU."""
        self.conv(name, out_channels, kernel, stride, padding, bias=False, inputs=inputs)
        self.add(f"{name}_bn", BatchNorm2d())
        activation = LeakyReLU() if leaky else ReLU()
        return self.add(f"{name}_act", activation)

    def maxpool(
        self,
        name: str,
        kernel: IntPair,
        stride: Optional[IntPair] = None,
        padding: IntPair = 0,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        stride_pair = _pair(stride) if stride is not None else _pair(kernel)
        spec = MaxPool2d(kernel=_pair(kernel), stride=stride_pair, padding=_pair(padding))
        return self.add(name, spec, inputs)

    def avgpool(
        self,
        name: str,
        kernel: IntPair,
        stride: Optional[IntPair] = None,
        padding: IntPair = 0,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        stride_pair = _pair(stride) if stride is not None else _pair(kernel)
        spec = AvgPool2d(kernel=_pair(kernel), stride=stride_pair, padding=_pair(padding))
        return self.add(name, spec, inputs)

    def global_avgpool(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, GlobalAvgPool2d(), inputs)

    def linear(
        self,
        name: str,
        out_features: int,
        bias: bool = True,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        return self.add(name, Linear(out_features=out_features, bias=bias), inputs)

    def relu(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, ReLU(), inputs)

    def leaky_relu(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, LeakyReLU(), inputs)

    def batchnorm(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, BatchNorm2d(), inputs)

    def lrn(self, name: str, size: int = 5, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, LocalResponseNorm(size=size), inputs)

    def dropout(self, name: str, rate: float = 0.5, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, Dropout(rate=rate), inputs)

    def flatten(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, Flatten(), inputs)

    def softmax(self, name: str, inputs: Optional[Sequence[str]] = None) -> str:
        return self.add(name, Softmax(), inputs)

    def concat(self, name: str, inputs: Sequence[str]) -> str:
        return self.add(name, Concat(), inputs)

    def residual_add(self, name: str, inputs: Sequence[str]) -> str:
        return self.add(name, Add(), inputs)
