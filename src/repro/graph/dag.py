"""The DNN DAG (``G = (V, L)`` of the paper's system model).

A :class:`DnnGraph` stores the vertices ``{v0, v1, ..., vn}`` (one per DNN
layer, plus the virtual input vertex ``v0``) and the directed links
``L ⊂ V x V``.  Shapes, per-layer FLOPs and output sizes are resolved eagerly
when vertices are added, so every downstream component (profiler, HPA, VSM,
runtime) can treat the graph as a static, fully annotated artefact.

The class also provides the graph analytics HPA needs:

* ``longest_distances`` — the longest distance ``δ(v_i)`` from ``v0`` to every
  vertex, computed with dynamic programming in ``O(|V| + |L|)``;
* ``graph_layers`` — the partition ``Z_q = {v_i : δ(v_i) = q}``;
* predecessor / successor queries and the subset-input-sibling (SIS) relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.graph.layers import InputLayer, LayerSpec
from repro.graph.shapes import Shape, element_count, tensor_bytes


class GraphError(ValueError):
    """Raised for structural problems (cycles, unknown vertices, ...)."""


@dataclass
class Vertex:
    """A single vertex of the DNN DAG.

    Attributes
    ----------
    index:
        Position of the vertex in insertion order; the virtual input vertex is
        always index ``0``.
    name:
        Unique human-readable name (e.g. ``"conv1"``).
    spec:
        The :class:`~repro.graph.layers.LayerSpec` describing the layer.
    output_shape:
        Shape of the tensor this layer produces.
    flops:
        Floating point operations performed by the layer for one input sample.
    weight_count:
        Number of learnable parameters of the layer.
    """

    index: int
    name: str
    spec: LayerSpec
    output_shape: Shape
    flops: int
    weight_count: int

    @property
    def output_elements(self) -> int:
        """Number of scalar elements in the layer output."""
        return element_count(self.output_shape)

    @property
    def output_bytes(self) -> int:
        """Serialized output size in bytes (float32 elements)."""
        return tensor_bytes(self.output_shape)

    @property
    def kind(self) -> str:
        return self.spec.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vertex({self.index}, {self.name!r}, {self.kind}, out={self.output_shape})"


class DnnGraph:
    """Directed acyclic graph of DNN layers.

    Parameters
    ----------
    name:
        Model name (e.g. ``"vgg16"``), used by the experiment harness.
    """

    def __init__(self, name: str = "dnn") -> None:
        self.name = name
        self._vertices: List[Vertex] = []
        self._by_name: Dict[str, int] = {}
        self._preds: Dict[int, List[int]] = {}
        self._succs: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, shape: Shape, name: str = "input") -> Vertex:
        """Add the virtual input vertex ``v0``.

        Must be called exactly once, before any other vertex is added.
        """
        if self._vertices:
            raise GraphError("the input vertex must be the first vertex added")
        return self.add_vertex(name, InputLayer(shape), inputs=())

    def add_vertex(
        self,
        name: str,
        spec: LayerSpec,
        inputs: Sequence[str],
    ) -> Vertex:
        """Add a layer vertex fed by the named predecessor vertices."""
        if name in self._by_name:
            raise GraphError(f"duplicate vertex name {name!r}")
        if self._vertices and not inputs:
            raise GraphError(f"vertex {name!r} must declare at least one input")
        input_indices = [self._resolve(input_name) for input_name in inputs]
        input_shapes = [self._vertices[i].output_shape for i in input_indices]
        output_shape = spec.infer_shape(input_shapes)
        flops = spec.flops(input_shapes, output_shape)
        weights = spec.weight_count(input_shapes, output_shape)
        index = len(self._vertices)
        vertex = Vertex(
            index=index,
            name=name,
            spec=spec,
            output_shape=output_shape,
            flops=flops,
            weight_count=weights,
        )
        self._vertices.append(vertex)
        self._by_name[name] = index
        self._preds[index] = list(input_indices)
        self._succs[index] = []
        for parent in input_indices:
            self._succs[parent].append(index)
        return vertex

    def _resolve(self, name_or_index) -> int:
        if isinstance(name_or_index, int):
            if not 0 <= name_or_index < len(self._vertices):
                raise GraphError(f"unknown vertex index {name_or_index}")
            return name_or_index
        if name_or_index not in self._by_name:
            raise GraphError(f"unknown vertex name {name_or_index!r}")
        return self._by_name[name_or_index]

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    @property
    def vertices(self) -> List[Vertex]:
        return list(self._vertices)

    @property
    def input_vertex(self) -> Vertex:
        if not self._vertices:
            raise GraphError("graph is empty")
        return self._vertices[0]

    @property
    def input_shape(self) -> Shape:
        return self.input_vertex.output_shape

    def vertex(self, name_or_index) -> Vertex:
        """Return a vertex by name or index."""
        return self._vertices[self._resolve(name_or_index)]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def predecessors(self, name_or_index) -> List[Vertex]:
        """Return the direct predecessors ``V^p_i`` of a vertex."""
        index = self._resolve(name_or_index)
        return [self._vertices[i] for i in self._preds[index]]

    def successors(self, name_or_index) -> List[Vertex]:
        """Return the direct successors of a vertex."""
        index = self._resolve(name_or_index)
        return [self._vertices[i] for i in self._succs[index]]

    def edges(self) -> List[Tuple[Vertex, Vertex]]:
        """Return all directed links ``(v_i, v_j)`` of the graph."""
        result = []
        for src, dests in self._succs.items():
            for dst in dests:
                result.append((self._vertices[src], self._vertices[dst]))
        return result

    @property
    def num_edges(self) -> int:
        return sum(len(dests) for dests in self._succs.values())

    def output_vertices(self) -> List[Vertex]:
        """Vertices with no successors (the final classifier output)."""
        return [v for v in self._vertices if not self._succs[v.index]]

    # ------------------------------------------------------------------ #
    # Graph analytics used by HPA
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[Vertex]:
        """Return vertices in a topological order.

        Because vertices can only reference previously added vertices, the
        insertion order itself is a valid topological order.
        """
        return list(self._vertices)

    def longest_distances(self) -> Dict[int, int]:
        """Longest distance ``δ(v_i)`` from ``v0`` to each vertex (edge count).

        Computed with the dynamic programming approach referenced by the paper
        ("get_longest_path"), running in ``O(|V| + |L|)``.
        """
        distances: Dict[int, int] = {}
        for vertex in self.topological_order():
            preds = self._preds[vertex.index]
            if not preds:
                distances[vertex.index] = 0
            else:
                distances[vertex.index] = 1 + max(distances[p] for p in preds)
        return distances

    def graph_layers(self) -> List[List[Vertex]]:
        """Return the graph layers ``Z_q`` ordered by increasing ``q``.

        ``Z_q`` is the set of vertices whose longest distance from ``v0`` is
        exactly ``q`` ("get_graph_layer" in Algorithm 1).
        """
        distances = self.longest_distances()
        max_distance = max(distances.values()) if distances else 0
        layers: List[List[Vertex]] = [[] for _ in range(max_distance + 1)]
        for vertex in self._vertices:
            layers[distances[vertex.index]].append(vertex)
        return layers

    def is_chain(self) -> bool:
        """True when the DAG is a simple chain (every vertex has ≤ 1 successor
        and ≤ 1 predecessor).  Neurosurgeon only supports chain topologies.
        """
        for vertex in self._vertices:
            if len(self._preds[vertex.index]) > 1 or len(self._succs[vertex.index]) > 1:
                return False
        return True

    def sis_vertices(self, name_or_index) -> List[Vertex]:
        """Subset-input-sibling (SIS) vertices of a vertex.

        ``v_j`` is a SIS vertex of ``v_i`` when ``V^p_j ⊂ V^p_i`` (a strict,
        non-empty subset of ``v_i``'s direct predecessors).
        """
        index = self._resolve(name_or_index)
        my_preds: Set[int] = set(self._preds[index])
        if not my_preds:
            return []
        result = []
        for other in self._vertices:
            if other.index == index:
                continue
            other_preds = set(self._preds[other.index])
            if other_preds and other_preds < my_preds:
                result.append(other)
        return result

    def total_flops(self) -> int:
        """Total FLOPs of one forward pass."""
        return sum(v.flops for v in self._vertices)

    def total_weights(self) -> int:
        """Total learnable parameter count."""
        return sum(v.weight_count for v in self._vertices)

    # ------------------------------------------------------------------ #
    # Interop / export
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> "nx.DiGraph":
        """Export to a :class:`networkx.DiGraph` (used by the DADS baseline)."""
        graph = nx.DiGraph(name=self.name)
        for vertex in self._vertices:
            graph.add_node(
                vertex.index,
                name=vertex.name,
                kind=vertex.kind,
                output_shape=vertex.output_shape,
                flops=vertex.flops,
                output_bytes=vertex.output_bytes,
            )
        for src, dst in self.edges():
            graph.add_edge(src.index, dst.index)
        return graph

    def validate(self) -> None:
        """Validate the structural invariants of the graph.

        Raises :class:`GraphError` if the graph has no input vertex, contains a
        cycle (impossible by construction, checked defensively), or has more
        than one connected output that is not reachable from ``v0``.
        """
        if not self._vertices:
            raise GraphError("graph is empty")
        if not isinstance(self._vertices[0].spec, InputLayer):
            raise GraphError("first vertex must be the virtual input vertex")
        graph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(graph):
            raise GraphError("graph contains a cycle")
        reachable = nx.descendants(graph, 0) | {0}
        if len(reachable) != len(self._vertices):
            unreachable = [v.name for v in self._vertices if v.index not in reachable]
            raise GraphError(f"vertices unreachable from the input: {unreachable}")

    def summary(self) -> str:
        """Human-readable multi-line summary of the graph."""
        lines = [f"{self.name}: {len(self)} vertices, {self.num_edges} edges"]
        for vertex in self._vertices:
            preds = ",".join(p.name for p in self.predecessors(vertex.index)) or "-"
            lines.append(
                f"  [{vertex.index:3d}] {vertex.name:<20s} {vertex.kind:<12s} "
                f"out={vertex.output_shape!s:<18s} flops={vertex.flops:>12d} "
                f"bytes={vertex.output_bytes:>10d} <- {preds}"
            )
        return "\n".join(lines)
