"""DNN computation-graph substrate.

This subpackage provides the directed-acyclic-graph (DAG) representation of a
deep neural network used throughout the reproduction.  It mirrors the system
model of the paper (section III-C): each DNN layer is a vertex, a directed link
``(v_i, v_j)`` exists whenever the output of layer *i* feeds layer *j*, and a
virtual input vertex ``v0`` marks the start of the network.

The substrate is intentionally framework-free: the paper uses PyTorch/ONNX to
obtain the graph, while here the model zoo (:mod:`repro.models`) constructs the
same graphs directly from layer hyper-parameters.  Everything downstream (the
profiler, HPA, VSM, the runtime simulator and the baselines) consumes only this
representation.
"""

from repro.graph.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    InputLayer,
    LayerSpec,
    LeakyReLU,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.graph.shapes import Shape, element_count, tensor_bytes
from repro.graph.dag import DnnGraph, Vertex
from repro.graph.builder import GraphBuilder

__all__ = [
    "Add",
    "AvgPool2d",
    "BatchNorm2d",
    "Concat",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "GraphBuilder",
    "InputLayer",
    "LayerSpec",
    "LeakyReLU",
    "Linear",
    "LocalResponseNorm",
    "MaxPool2d",
    "DnnGraph",
    "ReLU",
    "Shape",
    "Softmax",
    "Vertex",
    "element_count",
    "tensor_bytes",
]
