"""ResNet-18 (He et al., 2016) — DAG topology via residual additions.

Four stages of two basic blocks each (64, 128, 256, 512 channels); the first
block of stages 2-4 downsamples with stride 2 and a 1x1 projection on the skip
path.  The element-wise additions make the graph a genuine DAG, so ResNet-18 is
one of the networks Neurosurgeon cannot partition but DADS and HPA can.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape


def _basic_block(
    builder: GraphBuilder,
    name: str,
    channels: int,
    stride: int,
    downsample: bool,
    include_activations: bool,
) -> str:
    """Append one ResNet basic block and return the name of its output vertex."""
    block_input = builder.current

    builder.conv(f"{name}_conv1", channels, kernel=3, stride=stride, padding=1, bias=False)
    if include_activations:
        builder.batchnorm(f"{name}_bn1")
        builder.relu(f"{name}_relu1")
    builder.conv(f"{name}_conv2", channels, kernel=3, stride=1, padding=1, bias=False)
    if include_activations:
        builder.batchnorm(f"{name}_bn2")
    main_branch = builder.current

    if downsample:
        builder.conv(
            f"{name}_downsample",
            channels,
            kernel=1,
            stride=stride,
            padding=0,
            bias=False,
            inputs=[block_input],
        )
        if include_activations:
            builder.batchnorm(f"{name}_downsample_bn")
        skip_branch = builder.current
    else:
        skip_branch = block_input

    builder.residual_add(f"{name}_add", inputs=[main_branch, skip_branch])
    if include_activations:
        builder.relu(f"{name}_relu2")
    return builder.current


def build_resnet18(
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
) -> DnnGraph:
    """Build the ResNet-18 DAG."""
    builder = GraphBuilder("resnet18", input_shape)

    builder.conv("conv1", 64, kernel=7, stride=2, padding=3, bias=False)
    if include_activations:
        builder.batchnorm("bn1")
        builder.relu("relu1")
    builder.maxpool("maxpool1", kernel=3, stride=2, padding=1)

    stage_channels = [64, 128, 256, 512]
    for stage_index, channels in enumerate(stage_channels, start=1):
        for block_index in range(2):
            first_block = block_index == 0
            stride = 2 if (first_block and stage_index > 1) else 1
            downsample = first_block and stage_index > 1
            _basic_block(
                builder,
                name=f"layer{stage_index}_block{block_index + 1}",
                channels=channels,
                stride=stride,
                downsample=downsample,
                include_activations=include_activations,
            )

    builder.global_avgpool("avgpool")
    builder.linear("fc", num_classes)
    builder.softmax("softmax")
    return builder.build()
