"""Darknet-53 (Redmon & Farhadi, 2018) — the YOLOv3 backbone, DAG topology.

Fifty-two convolutions plus the classifier: a 3x3 stem followed by five stages
of stride-2 downsampling convolutions, each stage containing 1/2/8/8/4 residual
units of (1x1 reduce, 3x3 expand, add).  Every convolution is followed by batch
normalisation and LeakyReLU, matching the original architecture.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape

#: (stage index, downsampled output channels, number of residual units).
DARKNET53_STAGES: List[Tuple[int, int, int]] = [
    (1, 64, 1),
    (2, 128, 2),
    (3, 256, 8),
    (4, 512, 8),
    (5, 1024, 4),
]


def _residual_unit(
    builder: GraphBuilder,
    name: str,
    channels: int,
    include_activations: bool,
) -> str:
    """One Darknet residual unit: 1x1 reduce, 3x3 expand, element-wise add."""
    block_input = builder.current
    half = channels // 2
    if include_activations:
        builder.conv_bn_relu(f"{name}_conv1", half, kernel=1, stride=1, padding=0, leaky=True)
        builder.conv_bn_relu(f"{name}_conv2", channels, kernel=3, stride=1, padding=1, leaky=True)
    else:
        builder.conv(f"{name}_conv1", half, kernel=1, stride=1, padding=0, bias=False)
        builder.conv(f"{name}_conv2", channels, kernel=3, stride=1, padding=1, bias=False)
    builder.residual_add(f"{name}_add", inputs=[builder.current, block_input])
    return builder.current


def build_darknet53(
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
) -> DnnGraph:
    """Build the Darknet-53 classification DAG."""
    builder = GraphBuilder("darknet53", input_shape)

    def conv_block(name: str, channels: int, kernel: int, stride: int, padding: int) -> None:
        if include_activations:
            builder.conv_bn_relu(name, channels, kernel=kernel, stride=stride, padding=padding, leaky=True)
        else:
            builder.conv(name, channels, kernel=kernel, stride=stride, padding=padding, bias=False)

    conv_block("conv1", 32, kernel=3, stride=1, padding=1)

    for stage_index, channels, residual_count in DARKNET53_STAGES:
        conv_block(f"conv_down{stage_index}", channels, kernel=3, stride=2, padding=1)
        for unit in range(1, residual_count + 1):
            _residual_unit(
                builder,
                name=f"stage{stage_index}_res{unit}",
                channels=channels,
                include_activations=include_activations,
            )

    builder.global_avgpool("avgpool")
    builder.linear("fc", num_classes)
    builder.softmax("softmax")
    return builder.build()
