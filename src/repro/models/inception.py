"""Inception-v4 (Szegedy et al., 2017) — multi-branch DAG topology.

The full architecture: stem, 4 x Inception-A, Reduction-A, 7 x Inception-B,
Reduction-B, 3 x Inception-C, global average pooling and the classifier.  The
Inception-C module is the "grid module" depicted in Fig. 3 of the paper, whose
DAG representation motivates HPA's graph-layer construction.

The paper feeds 3 x 224 x 224 inputs (the original network uses 299 x 299);
all valid-padding stem layers keep positive spatial sizes for both, so the
architecture is unchanged and only the feature-map resolutions differ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape


class _InceptionBuilder:
    """Thin wrapper adding Inception-style conv-bn-relu and branch helpers."""

    def __init__(self, builder: GraphBuilder, include_activations: bool) -> None:
        self.builder = builder
        self.include_activations = include_activations

    def conv(
        self,
        name: str,
        channels: int,
        kernel,
        stride=1,
        padding=None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Conv-BN-ReLU unit (the basic Inception building block)."""
        if self.include_activations:
            return self.builder.conv_bn_relu(
                name, channels, kernel=kernel, stride=stride, padding=padding, inputs=inputs
            )
        return self.builder.conv(
            name, channels, kernel=kernel, stride=stride, padding=padding, bias=False, inputs=inputs
        )

    def maxpool(self, name: str, kernel, stride, padding=0, inputs=None) -> str:
        return self.builder.maxpool(name, kernel=kernel, stride=stride, padding=padding, inputs=inputs)

    def avgpool_same(self, name: str, inputs=None) -> str:
        """3x3 stride-1 average pooling with same padding (Inception pool branch)."""
        return self.builder.avgpool(name, kernel=3, stride=1, padding=1, inputs=inputs)

    def concat(self, name: str, inputs: Sequence[str]) -> str:
        return self.builder.concat(name, inputs=inputs)


def _stem(ib: _InceptionBuilder) -> str:
    """Inception-v4 stem: three initial convs and three mixed blocks."""
    ib.conv("stem_conv1", 32, kernel=3, stride=2, padding=0)
    ib.conv("stem_conv2", 32, kernel=3, stride=1, padding=0)
    ib.conv("stem_conv3", 64, kernel=3, stride=1, padding=1)
    trunk = ib.builder.current

    pool_branch = ib.maxpool("stem_mixed1_pool", kernel=3, stride=2, padding=0, inputs=[trunk])
    conv_branch = ib.conv("stem_mixed1_conv", 96, kernel=3, stride=2, padding=0, inputs=[trunk])
    mixed1 = ib.concat("stem_mixed1", [pool_branch, conv_branch])

    left = ib.conv("stem_mixed2_l1", 64, kernel=1, padding=0, inputs=[mixed1])
    left = ib.conv("stem_mixed2_l2", 96, kernel=3, padding=0)
    right = ib.conv("stem_mixed2_r1", 64, kernel=1, padding=0, inputs=[mixed1])
    right = ib.conv("stem_mixed2_r2", 64, kernel=(7, 1), padding=(3, 0))
    right = ib.conv("stem_mixed2_r3", 64, kernel=(1, 7), padding=(0, 3))
    right = ib.conv("stem_mixed2_r4", 96, kernel=3, padding=0)
    mixed2 = ib.concat("stem_mixed2", [left, right])

    conv_branch = ib.conv("stem_mixed3_conv", 192, kernel=3, stride=2, padding=0, inputs=[mixed2])
    pool_branch = ib.maxpool("stem_mixed3_pool", kernel=3, stride=2, padding=0, inputs=[mixed2])
    return ib.concat("stem_mixed3", [conv_branch, pool_branch])


def _inception_a(ib: _InceptionBuilder, name: str, block_input: str) -> str:
    """Inception-A module (35x35 grid in the original resolution)."""
    pool = ib.avgpool_same(f"{name}_pool", inputs=[block_input])
    branch0 = ib.conv(f"{name}_b0_conv", 96, kernel=1, padding=0, inputs=[pool])
    branch1 = ib.conv(f"{name}_b1_conv", 96, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv1", 64, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv2", 96, kernel=3, padding=1)
    branch3 = ib.conv(f"{name}_b3_conv1", 64, kernel=1, padding=0, inputs=[block_input])
    branch3 = ib.conv(f"{name}_b3_conv2", 96, kernel=3, padding=1)
    branch3 = ib.conv(f"{name}_b3_conv3", 96, kernel=3, padding=1)
    return ib.concat(f"{name}_concat", [branch0, branch1, branch2, branch3])


def _reduction_a(ib: _InceptionBuilder, name: str, block_input: str) -> str:
    """Reduction-A module (35x35 -> 17x17)."""
    pool = ib.maxpool(f"{name}_pool", kernel=3, stride=2, padding=0, inputs=[block_input])
    branch1 = ib.conv(f"{name}_b1_conv", 384, kernel=3, stride=2, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv1", 192, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv2", 224, kernel=3, padding=1)
    branch2 = ib.conv(f"{name}_b2_conv3", 256, kernel=3, stride=2, padding=0)
    return ib.concat(f"{name}_concat", [pool, branch1, branch2])


def _inception_b(ib: _InceptionBuilder, name: str, block_input: str) -> str:
    """Inception-B module (17x17 grid)."""
    pool = ib.avgpool_same(f"{name}_pool", inputs=[block_input])
    branch0 = ib.conv(f"{name}_b0_conv", 128, kernel=1, padding=0, inputs=[pool])
    branch1 = ib.conv(f"{name}_b1_conv", 384, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv1", 192, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv2", 224, kernel=(1, 7), padding=(0, 3))
    branch2 = ib.conv(f"{name}_b2_conv3", 256, kernel=(7, 1), padding=(3, 0))
    branch3 = ib.conv(f"{name}_b3_conv1", 192, kernel=1, padding=0, inputs=[block_input])
    branch3 = ib.conv(f"{name}_b3_conv2", 192, kernel=(1, 7), padding=(0, 3))
    branch3 = ib.conv(f"{name}_b3_conv3", 224, kernel=(7, 1), padding=(3, 0))
    branch3 = ib.conv(f"{name}_b3_conv4", 224, kernel=(1, 7), padding=(0, 3))
    branch3 = ib.conv(f"{name}_b3_conv5", 256, kernel=(7, 1), padding=(3, 0))
    return ib.concat(f"{name}_concat", [branch0, branch1, branch2, branch3])


def _reduction_b(ib: _InceptionBuilder, name: str, block_input: str) -> str:
    """Reduction-B module (17x17 -> 8x8)."""
    pool = ib.maxpool(f"{name}_pool", kernel=3, stride=2, padding=0, inputs=[block_input])
    branch1 = ib.conv(f"{name}_b1_conv1", 192, kernel=1, padding=0, inputs=[block_input])
    branch1 = ib.conv(f"{name}_b1_conv2", 192, kernel=3, stride=2, padding=0)
    branch2 = ib.conv(f"{name}_b2_conv1", 256, kernel=1, padding=0, inputs=[block_input])
    branch2 = ib.conv(f"{name}_b2_conv2", 256, kernel=(1, 7), padding=(0, 3))
    branch2 = ib.conv(f"{name}_b2_conv3", 320, kernel=(7, 1), padding=(3, 0))
    branch2 = ib.conv(f"{name}_b2_conv4", 320, kernel=3, stride=2, padding=0)
    return ib.concat(f"{name}_concat", [pool, branch1, branch2])


def _inception_c(ib: _InceptionBuilder, name: str, block_input: str) -> str:
    """Inception-C module — the "grid module" shown in Fig. 3 of the paper."""
    pool = ib.avgpool_same(f"{name}_pool", inputs=[block_input])
    branch0 = ib.conv(f"{name}_b0_conv", 256, kernel=1, padding=0, inputs=[pool])
    branch1 = ib.conv(f"{name}_b1_conv", 256, kernel=1, padding=0, inputs=[block_input])

    branch2_stem = ib.conv(f"{name}_b2_conv1", 384, kernel=1, padding=0, inputs=[block_input])
    branch2_left = ib.conv(f"{name}_b2_conv1x3", 256, kernel=(1, 3), padding=(0, 1), inputs=[branch2_stem])
    branch2_right = ib.conv(f"{name}_b2_conv3x1", 256, kernel=(3, 1), padding=(1, 0), inputs=[branch2_stem])

    branch3_stem = ib.conv(f"{name}_b3_conv1", 384, kernel=1, padding=0, inputs=[block_input])
    branch3_stem = ib.conv(f"{name}_b3_conv1x3", 448, kernel=(1, 3), padding=(0, 1))
    branch3_stem = ib.conv(f"{name}_b3_conv3x1", 512, kernel=(3, 1), padding=(1, 0))
    branch3_left = ib.conv(f"{name}_b3_conv3x1b", 256, kernel=(3, 1), padding=(1, 0), inputs=[branch3_stem])
    branch3_right = ib.conv(f"{name}_b3_conv1x3b", 256, kernel=(1, 3), padding=(0, 1), inputs=[branch3_stem])

    return ib.concat(
        f"{name}_concat",
        [branch0, branch1, branch2_left, branch2_right, branch3_left, branch3_right],
    )


def build_inception_v4(
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
    num_a: int = 4,
    num_b: int = 7,
    num_c: int = 3,
) -> DnnGraph:
    """Build the Inception-v4 DAG.

    ``num_a``, ``num_b`` and ``num_c`` control the number of Inception-A/B/C
    repetitions (4/7/3 in the published architecture); smaller values are handy
    for fast unit tests.
    """
    builder = GraphBuilder("inception_v4", input_shape)
    ib = _InceptionBuilder(builder, include_activations)

    current = _stem(ib)
    for i in range(1, num_a + 1):
        current = _inception_a(ib, f"inception_a{i}", current)
    current = _reduction_a(ib, "reduction_a", current)
    for i in range(1, num_b + 1):
        current = _inception_b(ib, f"inception_b{i}", current)
    current = _reduction_b(ib, "reduction_b", current)
    for i in range(1, num_c + 1):
        current = _inception_c(ib, f"inception_c{i}", current)

    builder.global_avgpool("avgpool", inputs=[current])
    if include_activations:
        builder.dropout("dropout", 0.2)
    builder.linear("fc", num_classes)
    builder.softmax("softmax")
    return builder.build()
