"""Registry of the paper's evaluation models.

``build_model("vgg16")`` is the single entry point used by the examples, the
experiment harness and the benchmarks, so scenario code never needs to know
which concrete builder to call.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape
from repro.models.alexnet import build_alexnet
from repro.models.darknet import build_darknet53
from repro.models.inception import build_inception_v4
from repro.models.resnet import build_resnet18
from repro.models.vgg import build_vgg16

ModelBuilder = Callable[..., DnnGraph]

#: Name -> builder mapping for every model the paper evaluates.
MODEL_BUILDERS: Dict[str, ModelBuilder] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "resnet18": build_resnet18,
    "darknet53": build_darknet53,
    "inception_v4": build_inception_v4,
}

#: Evaluation order used by the paper's figures.
PAPER_MODELS: List[str] = ["alexnet", "vgg16", "resnet18", "darknet53", "inception_v4"]

#: Display names matching the paper's figures and tables.
DISPLAY_NAMES: Dict[str, str] = {
    "alexnet": "AlexNet",
    "vgg16": "VGG-16",
    "resnet18": "ResNet-18",
    "darknet53": "Darknet-53",
    "inception_v4": "Inception-v4",
}


def _normalise(name: str) -> str:
    """Canonical lookup key: lower-case with separators removed."""
    return "".join(ch for ch in name.lower() if ch.isalnum())


#: Normalised-name -> registry-key aliases ("ResNet-18" and "resnet18" both work).
_ALIASES: Dict[str, str] = {_normalise(key): key for key in MODEL_BUILDERS}


def list_models() -> List[str]:
    """Return the names of all registered models."""
    return list(MODEL_BUILDERS)


def build_model(
    name: str,
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
    **kwargs,
) -> DnnGraph:
    """Build a registered model by name.

    Raises
    ------
    KeyError
        If ``name`` is not a registered model.
    """
    key = _normalise(name)
    if key not in _ALIASES:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[_ALIASES[key]](
        input_shape=input_shape,
        num_classes=num_classes,
        include_activations=include_activations,
        **kwargs,
    )


def display_name(name: str) -> str:
    """Return the display name used in the paper's figures."""
    key = _ALIASES.get(_normalise(name))
    return DISPLAY_NAMES.get(key, name)
