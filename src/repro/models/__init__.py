"""Model zoo: the five DNNs evaluated by the paper.

Each constructor returns a fully annotated :class:`repro.graph.dag.DnnGraph`
that is architecturally faithful (layer types, channel counts, kernel sizes,
strides and paddings) to the published network.  Weights are irrelevant to the
partitioning problem, so graphs carry only configurations; the functional
numpy executor (:mod:`repro.tensors`) materialises random weights when actual
activations are needed (e.g. to verify VSM losslessness).
"""

from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg16
from repro.models.resnet import build_resnet18
from repro.models.darknet import build_darknet53
from repro.models.inception import build_inception_v4
from repro.models.zoo import MODEL_BUILDERS, PAPER_MODELS, build_model, list_models

__all__ = [
    "MODEL_BUILDERS",
    "PAPER_MODELS",
    "build_alexnet",
    "build_darknet53",
    "build_inception_v4",
    "build_model",
    "build_resnet18",
    "build_vgg16",
    "list_models",
]
