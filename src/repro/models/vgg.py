"""VGG-16 (Simonyan & Zisserman, 2014) — chain topology.

Thirteen 3x3 convolutions in five blocks separated by 2x2 max-pooling, followed
by the 4096-4096-1000 classifier head.  This is the most compute-hungry chain
network of the evaluation: its conv layers dominate Fig. 1a and its fc1 layer
dominates the inter-layer output sizes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape

#: (block index, number of convolutions, output channels) for VGG-16.
VGG16_BLOCKS: List[Tuple[int, int, int]] = [
    (1, 2, 64),
    (2, 2, 128),
    (3, 3, 256),
    (4, 3, 512),
    (5, 3, 512),
]


def build_vgg16(
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
) -> DnnGraph:
    """Build the VGG-16 DAG (configuration "D" of the original paper)."""
    builder = GraphBuilder("vgg16", input_shape)
    conv_index = 0
    for block, conv_count, channels in VGG16_BLOCKS:
        for _ in range(conv_count):
            conv_index += 1
            builder.conv(f"conv{conv_index}", channels, kernel=3, stride=1, padding=1)
            if include_activations:
                builder.relu(f"relu{conv_index}")
        builder.maxpool(f"maxpool{block}", kernel=2, stride=2)

    builder.flatten("flatten")
    builder.linear("fc1", 4096)
    if include_activations:
        builder.relu("relu_fc1")
        builder.dropout("drop1", 0.5)
    builder.linear("fc2", 4096)
    if include_activations:
        builder.relu("relu_fc2")
        builder.dropout("drop2", 0.5)
    builder.linear("fc3", num_classes)
    builder.softmax("softmax")
    return builder.build()
