"""AlexNet (Krizhevsky et al., 2012) — chain topology.

The layer inventory matches the single-GPU variant used by modern frameworks
(and by the paper's Fig. 4): five convolutions, three max-pooling layers and a
three-layer classifier head.  AlexNet and VGG-16 are the two chain-topology
networks of the evaluation, i.e. the only ones Neurosurgeon can partition.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph
from repro.graph.shapes import Shape


def build_alexnet(
    input_shape: Shape = (3, 224, 224),
    num_classes: int = 1000,
    include_activations: bool = False,
) -> DnnGraph:
    """Build the AlexNet DAG.

    Parameters
    ----------
    input_shape:
        Channels-first input shape; the paper feeds ``3 x 224 x 224`` images.
    num_classes:
        Size of the classifier output (ImageNet: 1000).
    include_activations:
        When False, ReLU/LRN/Dropout vertices are omitted and only the compute
        layers remain.  This compact view matches the per-layer bars shown in
        the paper's figures and is handy for reporting; partitioning results
        are unaffected because activation layers are cheap and in-place.
    """
    builder = GraphBuilder("alexnet", input_shape)

    def act(name: str) -> None:
        if include_activations:
            builder.relu(name)

    builder.conv("conv1", 64, kernel=11, stride=4, padding=2)
    act("relu1")
    if include_activations:
        builder.lrn("lrn1")
    builder.maxpool("maxpool1", kernel=3, stride=2)

    builder.conv("conv2", 192, kernel=5, stride=1, padding=2)
    act("relu2")
    if include_activations:
        builder.lrn("lrn2")
    builder.maxpool("maxpool2", kernel=3, stride=2)

    builder.conv("conv3", 384, kernel=3, stride=1, padding=1)
    act("relu3")
    builder.conv("conv4", 256, kernel=3, stride=1, padding=1)
    act("relu4")
    builder.conv("conv5", 256, kernel=3, stride=1, padding=1)
    act("relu5")
    builder.maxpool("maxpool3", kernel=3, stride=2)

    builder.flatten("flatten")
    if include_activations:
        builder.dropout("drop1", 0.5)
    builder.linear("fc1", 4096)
    act("relu6")
    if include_activations:
        builder.dropout("drop2", 0.5)
    builder.linear("fc2", 4096)
    act("relu7")
    builder.linear("fc3", num_classes)
    builder.softmax("softmax")
    return builder.build()
