"""The D3 profiler.

The profiler has two jobs in the paper's architecture (Fig. 2):

1. collect the operating conditions of the computation nodes — here, sample
   per-layer latencies on a machine (noisy observations of the analytic cost
   model that stands in for the physical testbed), and
2. monitor the network status between tiers — here, sample the bandwidth of a
   :class:`repro.network.link.NetworkLink` including its fluctuation.

It also assembles the :class:`LatencyProfile` — the vertex weights
``T_{v_i} = {t^d_i, t^e_i, t^c_i}`` consumed by HPA — either from direct
measurements or from the regression model's predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dag import DnnGraph, Vertex
from repro.profiling.cost_model import AnalyticCostModel
from repro.profiling.hardware import HardwareSpec
from repro.profiling.regression import LatencyRegressionModel, TrainingSample

#: Canonical tier names, ordered device ≻ edge ≻ cloud as in the paper.
TIER_NAMES: Tuple[str, str, str] = ("device", "edge", "cloud")


@dataclass(frozen=True)
class ProfiledMeasurement:
    """One latency observation of one layer on one machine."""

    vertex_index: int
    vertex_name: str
    kind: str
    hardware_name: str
    latency_seconds: float


@dataclass
class LatencyProfile:
    """Per-vertex, per-tier latency table (the HPA vertex weights).

    ``profile[(vertex_index, "edge")]`` is ``t^e_i`` in the paper's notation.
    """

    model_name: str
    latencies: Dict[Tuple[int, str], float] = field(default_factory=dict)

    def set(self, vertex_index: int, tier: str, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError("latency cannot be negative")
        self.latencies[(vertex_index, tier)] = latency_seconds

    def get(self, vertex_index: int, tier) -> float:
        """Latency of a vertex on a tier; accepts tier enums or names."""
        tier_name = getattr(tier, "value", tier)
        key = (vertex_index, tier_name)
        if key not in self.latencies:
            raise KeyError(f"no latency recorded for vertex {vertex_index} on tier {tier_name}")
        return self.latencies[key]

    def tiers_for(self, vertex_index: int) -> List[str]:
        """Tiers that have a latency entry for the given vertex."""
        return [tier for (index, tier) in self.latencies if index == vertex_index]

    def tier_total(self, tier) -> float:
        """Sum of all per-layer latencies on one tier (whole-model execution)."""
        tier_name = getattr(tier, "value", tier)
        return sum(v for (_, t), v in self.latencies.items() if t == tier_name)

    def scaled(self, tier, factor: float) -> "LatencyProfile":
        """Return a copy with all latencies of one tier multiplied by ``factor``.

        Models runtime variation of a node's processing speed, which is what
        triggers HPA's local re-partitioning.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        tier_name = getattr(tier, "value", tier)
        scaled = dict(self.latencies)
        for (index, name), value in self.latencies.items():
            if name == tier_name:
                scaled[(index, name)] = value * factor
        return LatencyProfile(self.model_name, scaled)

    def __len__(self) -> int:
        return len(self.latencies)


class Profiler:
    """Samples layer latencies and network bandwidth.

    Parameters
    ----------
    noise_std:
        Standard deviation of the multiplicative log-normal measurement noise.
        ``0`` gives exact cost-model values (useful in unit tests).
    seed:
        Seed of the profiler's private random generator, for reproducibility.
    """

    def __init__(self, noise_std: float = 0.05, seed: int = 0) -> None:
        if noise_std < 0:
            raise ValueError("noise_std cannot be negative")
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Latency measurements
    # ------------------------------------------------------------------ #
    def _noisy(self, value: float) -> float:
        if self.noise_std == 0:
            return value
        return float(value * self._rng.lognormal(mean=0.0, sigma=self.noise_std))

    def measure_layer(
        self,
        graph: DnnGraph,
        vertex: Vertex,
        hardware: HardwareSpec,
        repeats: int = 1,
    ) -> List[ProfiledMeasurement]:
        """Measure one layer ``repeats`` times on ``hardware``."""
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        model = AnalyticCostModel(hardware)
        true_latency = model.layer_latency(graph, vertex)
        return [
            ProfiledMeasurement(
                vertex_index=vertex.index,
                vertex_name=vertex.name,
                kind=vertex.kind,
                hardware_name=hardware.name,
                latency_seconds=self._noisy(true_latency),
            )
            for _ in range(repeats)
        ]

    def measure_graph(
        self,
        graph: DnnGraph,
        hardware: HardwareSpec,
        repeats: int = 3,
    ) -> Dict[int, float]:
        """Mean measured latency of every layer of ``graph`` on ``hardware``."""
        results: Dict[int, float] = {}
        for vertex in graph:
            samples = self.measure_layer(graph, vertex, hardware, repeats)
            results[vertex.index] = float(np.mean([s.latency_seconds for s in samples]))
        return results

    def collect_training_samples(
        self,
        graphs: Sequence[DnnGraph],
        hardware_specs: Sequence[HardwareSpec],
        repeats: int = 3,
    ) -> List[TrainingSample]:
        """Profile several graphs on several machines to train the regressor."""
        samples: List[TrainingSample] = []
        for graph in graphs:
            for hardware in hardware_specs:
                for vertex in graph:
                    measurements = self.measure_layer(graph, vertex, hardware, repeats)
                    mean_latency = float(np.mean([m.latency_seconds for m in measurements]))
                    samples.append(TrainingSample(graph, vertex, hardware, mean_latency))
        return samples

    # ------------------------------------------------------------------ #
    # Bandwidth monitoring
    # ------------------------------------------------------------------ #
    def observe_bandwidth(self, nominal_mbps: float, jitter_std: float = 0.0) -> float:
        """One bandwidth observation in Mbps with optional multiplicative jitter."""
        if nominal_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if jitter_std == 0:
            return nominal_mbps
        return float(nominal_mbps * self._rng.lognormal(mean=0.0, sigma=jitter_std))

    # ------------------------------------------------------------------ #
    # Latency profile assembly
    # ------------------------------------------------------------------ #
    def build_profile_from_measurements(
        self,
        graph: DnnGraph,
        tier_hardware: Mapping[str, HardwareSpec],
        repeats: int = 3,
    ) -> LatencyProfile:
        """Build ``T_{v_i}`` by measuring every layer on every tier.

        This is the brute-force approach the paper rejects as impractical on a
        real deployment but is perfectly fine against the simulated testbed;
        it serves as the reference for validating the regression-based profile.
        """
        profile = LatencyProfile(graph.name)
        for tier, hardware in tier_hardware.items():
            measured = self.measure_graph(graph, hardware, repeats)
            for index, latency in measured.items():
                profile.set(index, tier, latency)
        return profile

    def build_profile_from_regression(
        self,
        graph: DnnGraph,
        tier_hardware: Mapping[str, HardwareSpec],
        regression: LatencyRegressionModel,
    ) -> LatencyProfile:
        """Build ``T_{v_i}`` from the regression model (the paper's approach)."""
        profile = LatencyProfile(graph.name)
        for tier, hardware in tier_hardware.items():
            predictions = regression.predict_graph(graph, hardware)
            for index, latency in predictions.items():
                profile.set(index, tier, latency)
        return profile
