"""Hardware capability descriptions for the three computing tiers.

The paper's testbed consists of

* **device tier** — Raspberry Pi 4 model B (Fig. 1 profiling) and an NVIDIA
  Jetson Nano 2 GB (Table II / end-to-end experiments),
* **edge tier** — Linux machines with an Intel Core i7-8700 CPU and 8 GB RAM,
* **cloud tier** — a server with an NVIDIA GeForce RTX 2080 Ti GPU and 256 GB
  RAM.

We do not have that hardware, so each machine is summarised by the effective
(sustained, not peak) arithmetic throughput and memory bandwidth it delivers on
DNN kernels.  The numbers below are calibrated from public benchmark data so
the analytic cost model reproduces the *ordering and rough magnitude* of the
paper's measurements (device ≫ edge ≫ cloud per-layer latency), which is all
the partitioning algorithms depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyModel:
    """Power/energy characteristics of one computation node.

    Attributes
    ----------
    joules_per_flop:
        Marginal energy of one floating-point operation on the node's fastest
        execution engine.  ``joules_per_flop * effective_gflops * 1e9`` is the
        node's *active* power draw above idle while it is computing.
    radio_joules_per_byte:
        Marginal radio energy of moving one byte over the node's wireless
        uplink (Wi-Fi/LTE).  Zero on wired (edge/cloud) machines — only
        device-tier uplinks pay radio energy.
    idle_watts:
        Baseline power the node draws whenever it is powered on, busy or not.
        A node that is down (crashed, parked before an elastic join, or
        drained out) draws nothing.

    The default model is *unmetered* (all zeros): a bare ``HardwareSpec``
    consumes no energy, so every pre-energy code path is numerically
    unchanged.  The built-in presets carry calibrated non-zero models.
    """

    joules_per_flop: float = 0.0
    radio_joules_per_byte: float = 0.0
    idle_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.joules_per_flop < 0:
            raise ValueError("joules_per_flop cannot be negative")
        if self.radio_joules_per_byte < 0:
            raise ValueError("radio_joules_per_byte cannot be negative")
        if self.idle_watts < 0:
            raise ValueError("idle_watts cannot be negative")

    def active_watts(self, effective_gflops: float) -> float:
        """Active power above idle while computing at ``effective_gflops``."""
        return self.joules_per_flop * effective_gflops * 1e9

    def compute_joules(self, flops: float) -> float:
        """Energy of executing ``flops`` floating-point operations."""
        return self.joules_per_flop * flops

    def radio_joules(self, payload_bytes: float) -> float:
        """Radio energy of moving ``payload_bytes`` over the uplink."""
        return self.radio_joules_per_byte * payload_bytes


#: The unmetered model every bare ``HardwareSpec`` defaults to.
UNMETERED = EnergyModel()


@dataclass(frozen=True)
class HardwareSpec:
    """Effective compute capability of one computation node.

    Attributes
    ----------
    name:
        Human-readable description of the machine.
    cpu_gflops:
        Sustained single-precision throughput of the CPU in GFLOP/s when
        running convolution/GEMM kernels.
    gpu_gflops:
        Sustained single-precision GPU throughput in GFLOP/s; ``0`` when the
        node has no usable GPU.
    memory_bandwidth_gbps:
        Sustained memory bandwidth in GB/s (DRAM for CPU nodes, device memory
        for GPU nodes).
    memory_gb:
        Installed system memory in GB (used for feasibility checks and as a
        regression feature).
    per_layer_overhead_s:
        Fixed framework/kernel-launch overhead added to every layer execution.
    energy:
        Power/energy characteristics (:class:`EnergyModel`); defaults to the
        unmetered all-zero model, so specs built before energy existed are
        bit-identical in every latency computation and consume no joules.
    """

    name: str
    cpu_gflops: float
    gpu_gflops: float
    memory_bandwidth_gbps: float
    memory_gb: float
    per_layer_overhead_s: float = 50e-6
    energy: EnergyModel = field(default=UNMETERED)

    def __post_init__(self) -> None:
        if self.cpu_gflops <= 0:
            raise ValueError("cpu_gflops must be positive")
        if self.gpu_gflops < 0:
            raise ValueError("gpu_gflops cannot be negative")
        if self.memory_bandwidth_gbps <= 0:
            raise ValueError("memory_bandwidth_gbps must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if not isinstance(self.energy, EnergyModel):
            raise ValueError(
                f"energy must be an EnergyModel, got {type(self.energy).__name__}"
            )

    @property
    def has_gpu(self) -> bool:
        """True when the node has a usable GPU."""
        return self.gpu_gflops > 0

    @property
    def batch_exponent(self) -> float:
        """Exponent of the node's sublinear micro-batch cost curve.

        Executing ``n`` same-layer inferences as one batch costs
        ``t_1 * n ** batch_exponent`` instead of ``n * t_1``: weights are
        loaded once, kernel launches amortize, and wide execution units fill
        up.  GPUs batch much better than CPUs (idle SMs absorb extra samples
        almost for free), so the exponent is derived from the node's dominant
        execution engine.  Always in ``(0, 1]``, so a batch is never cheaper
        than its longest member and never dearer than running its members
        back to back.
        """
        return 0.6 if self.has_gpu else 0.85

    @property
    def effective_gflops(self) -> float:
        """Throughput of the fastest execution engine on the node."""
        return max(self.cpu_gflops, self.gpu_gflops)

    def scaled(
        self,
        factor: float,
        name: str | None = None,
        bandwidth_factor: float | None = None,
    ) -> "HardwareSpec":
        """Return a copy whose throughput is scaled by ``factor``.

        Used by the dynamic re-partitioning experiments to model load spikes
        (``factor < 1``) or freed-up resources (``factor > 1``).  A load
        spike contends for the memory system as much as for the execution
        units, so ``memory_bandwidth_gbps`` scales by the same factor — an
        earlier version left it untouched, which made memory-bound layers
        immune to spikes under the roofline cost model.  Pass an explicit
        ``bandwidth_factor`` to decouple the two (e.g. a compute-only
        governor change).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if bandwidth_factor is None:
            bandwidth_factor = factor
        elif bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        return HardwareSpec(
            name=name or f"{self.name} (x{factor:g})",
            cpu_gflops=self.cpu_gflops * factor,
            gpu_gflops=self.gpu_gflops * factor,
            memory_bandwidth_gbps=self.memory_bandwidth_gbps * bandwidth_factor,
            memory_gb=self.memory_gb,
            per_layer_overhead_s=self.per_layer_overhead_s,
            energy=self.energy,
        )


def batch_cost_s(solo_costs_s: "list[float]", batch_exponent: float) -> float:
    """Compute time of one micro-batch of tasks with the given solo costs.

    The sublinear curve ``mean * n ** exponent`` models amortized weight
    loading and kernel launches; the result is clamped into
    ``[max(solo), sum(solo)]`` so batching can never beat the longest member
    (the invariant the property suite pins) nor lose to plain sequential
    execution — the latter matters for the degenerate case of a batch with
    wildly uneven members.
    """
    if not solo_costs_s:
        raise ValueError("a batch needs at least one member")
    if not 0.0 < batch_exponent <= 1.0:
        raise ValueError("batch_exponent must be in (0, 1]")
    n = len(solo_costs_s)
    longest = max(solo_costs_s)
    if n == 1:
        return longest
    total = sum(solo_costs_s)
    amortized = (total / n) * n**batch_exponent
    return max(longest, min(total, amortized))


#: Raspberry Pi 4 model B, 4x Cortex-A72 @ 1.5 GHz, 4 GB LPDDR4.  Active
#: draw under full CPU load is ~4.8 W above a ~2.7 W idle; the Wi-Fi uplink
#: costs roughly 0.25 µJ per byte sent.
RASPBERRY_PI_4 = HardwareSpec(
    name="Raspberry Pi 4 Model B (4GB)",
    cpu_gflops=12.0,
    gpu_gflops=0.0,
    memory_bandwidth_gbps=4.0,
    memory_gb=4.0,
    per_layer_overhead_s=150e-6,
    energy=EnergyModel(
        joules_per_flop=4.0e-10,
        radio_joules_per_byte=2.5e-7,
        idle_watts=2.7,
    ),
)

#: NVIDIA Jetson Nano 2GB Developer Kit (128-core Maxwell GPU).  Peak fp32 is
#: ~236 GFLOP/s but the 2 GB variant throttles and framework overhead on the
#: tiny GPU keeps sustained single-image fp32 inference throughput far lower.
JETSON_NANO = HardwareSpec(
    name="NVIDIA Jetson Nano 2GB",
    cpu_gflops=10.0,
    gpu_gflops=40.0,
    memory_bandwidth_gbps=25.6,
    memory_gb=2.0,
    per_layer_overhead_s=120e-6,
    energy=EnergyModel(
        joules_per_flop=2.5e-10,
        radio_joules_per_byte=1.5e-7,
        idle_watts=1.25,
    ),
)

#: Edge machine: Intel Core i7-8700 (6C/12T, AVX2 FMA), 8 GB DDR4.  The peak
#: fp32 throughput of the part is ~614 GFLOP/s; a well-optimised CPU inference
#: engine (oneDNN/OpenVINO class) sustains roughly 60% of peak on convolution
#: kernels, which is what the edge tier is assumed to run.
EDGE_DESKTOP = HardwareSpec(
    name="Intel Core i7-8700 (8GB)",
    cpu_gflops=380.0,
    gpu_gflops=0.0,
    memory_bandwidth_gbps=35.0,
    memory_gb=8.0,
    per_layer_overhead_s=60e-6,
    energy=EnergyModel(
        joules_per_flop=1.7e-10,
        radio_joules_per_byte=0.0,
        idle_watts=20.0,
    ),
)

#: Cloud server: NVIDIA GeForce RTX 2080 Ti, 256 GB system memory.
CLOUD_SERVER = HardwareSpec(
    name="NVIDIA GeForce RTX 2080 Ti server (256GB)",
    cpu_gflops=200.0,
    gpu_gflops=9000.0,
    memory_bandwidth_gbps=616.0,
    memory_gb=256.0,
    per_layer_overhead_s=30e-6,
    energy=EnergyModel(
        joules_per_flop=3.3e-11,
        radio_joules_per_byte=0.0,
        idle_watts=100.0,
    ),
)

#: Default hardware used for each computing tier in the end-to-end experiments
#: (section IV of the paper: Jetson Nano device, i7-8700 edge, 2080 Ti cloud).
TIER_PRESETS = {
    "device": JETSON_NANO,
    "edge": EDGE_DESKTOP,
    "cloud": CLOUD_SERVER,
}

#: Hardware used for the layer-profiling study of Fig. 1 (Raspberry Pi 4).
FIG1_DEVICE = RASPBERRY_PI_4

#: Named hardware presets, keyed by the short names topology JSON files use.
HARDWARE_PRESETS = {
    "raspberry_pi_4": RASPBERRY_PI_4,
    "jetson_nano": JETSON_NANO,
    "edge_desktop": EDGE_DESKTOP,
    "cloud_server": CLOUD_SERVER,
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a hardware preset by its short name."""
    try:
        return HARDWARE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown hardware preset {name!r}; available: {sorted(HARDWARE_PRESETS)}"
        ) from None


def hardware_preset_name(spec: HardwareSpec) -> str | None:
    """The preset name of ``spec`` when it is one of the built-ins, else None."""
    for name, preset in HARDWARE_PRESETS.items():
        if preset == spec:
            return name
    return None
