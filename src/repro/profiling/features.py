"""Feature extraction for the latency regression model.

The paper's regression model "takes computation resources and DNN layer
configurations as input and estimates the processing time of DNN layers"
(section III-D).  The features below encode exactly that:

* layer configuration — kind, FLOPs, activation sizes, weight count, kernel
  geometry;
* computation resources — CPU/GPU throughput, memory bandwidth, memory size;
* physically meaningful interaction terms (FLOPs normalised by throughput,
  bytes normalised by bandwidth) so a *linear* model can capture the roofline
  behaviour without being told the cost model's functional form.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.dag import DnnGraph, Vertex
from repro.graph.layers import Conv2d, Linear, MaxPool2d, AvgPool2d
from repro.profiling.hardware import HardwareSpec

#: Ordered names of the features produced by :class:`LayerFeatureExtractor`.
FEATURE_NAMES: List[str] = [
    "bias",
    "flops",
    "flops_per_cpu_gflops",
    "flops_per_effective_gflops",
    "input_elements",
    "output_elements",
    "weight_count",
    "moved_bytes",
    "moved_bytes_per_bandwidth",
    "kernel_area",
    "stride_product",
    "out_channels",
    "cpu_gflops",
    "gpu_gflops",
    "memory_bandwidth_gbps",
    "memory_gb",
    "has_gpu",
]


class LayerFeatureExtractor:
    """Turn (graph, vertex, hardware) triples into numeric feature vectors."""

    @property
    def num_features(self) -> int:
        return len(FEATURE_NAMES)

    def extract(self, graph: DnnGraph, vertex: Vertex, hardware: HardwareSpec) -> np.ndarray:
        """Return the feature vector for one layer on one machine."""
        spec = vertex.spec
        input_elements = sum(p.output_elements for p in graph.predecessors(vertex.index))
        output_elements = vertex.output_elements
        weight_count = vertex.weight_count
        moved_bytes = 4 * (input_elements + output_elements + weight_count)

        kernel_area = 0.0
        stride_product = 1.0
        out_channels = 0.0
        if isinstance(spec, (Conv2d, MaxPool2d, AvgPool2d)):
            kernel_area = float(spec.kernel[0] * spec.kernel[1])
            stride_product = float(spec.stride[0] * spec.stride[1])
        if isinstance(spec, Conv2d):
            out_channels = float(spec.out_channels)
        elif isinstance(spec, Linear):
            out_channels = float(spec.out_features)

        effective = hardware.effective_gflops
        features = np.array(
            [
                1.0,
                float(vertex.flops),
                vertex.flops / (hardware.cpu_gflops * 1e9),
                vertex.flops / (effective * 1e9),
                float(input_elements),
                float(output_elements),
                float(weight_count),
                float(moved_bytes),
                moved_bytes / (hardware.memory_bandwidth_gbps * 1e9),
                kernel_area,
                stride_product,
                out_channels,
                hardware.cpu_gflops,
                hardware.gpu_gflops,
                hardware.memory_bandwidth_gbps,
                hardware.memory_gb,
                1.0 if hardware.has_gpu else 0.0,
            ],
            dtype=np.float64,
        )
        return features

    def extract_graph(self, graph: DnnGraph, hardware: HardwareSpec) -> np.ndarray:
        """Feature matrix (``num_vertices x num_features``) for a whole graph."""
        return np.vstack([self.extract(graph, v, hardware) for v in graph])
