"""The paper's per-layer latency regression model.

Executing every DNN layer on every tier is "impractical and time-consuming"
(section III-D), so D3 trains a regression model that maps (computation
resources, layer configuration) to per-layer latency and uses the predictions
as the vertex weights ``T_{v_i}`` of the partitioning DAG.

We implement a ridge-regularised linear regression per layer *kind* (one model
for convolutions, one for pooling, ...), with a pooled global model as a
fallback for kinds unseen at training time.  Training data comes from the
profiler's noisy measurements of the analytic cost model on a set of
calibration networks; Fig. 4 of the paper (actual vs. predicted AlexNet layer
times) is reproduced by `repro.experiments.fig04_regression`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dag import DnnGraph, Vertex
from repro.profiling.features import LayerFeatureExtractor
from repro.profiling.hardware import HardwareSpec


@dataclass
class TrainingSample:
    """One observation: a layer, the machine it ran on, and the measured latency."""

    graph: DnnGraph
    vertex: Vertex
    hardware: HardwareSpec
    latency_seconds: float


@dataclass
class RegressionReport:
    """Goodness-of-fit summary comparing predictions against measurements."""

    layer_names: List[str]
    actual_seconds: List[float]
    predicted_seconds: List[float]

    @property
    def mean_absolute_error(self) -> float:
        actual = np.asarray(self.actual_seconds)
        predicted = np.asarray(self.predicted_seconds)
        return float(np.mean(np.abs(actual - predicted)))

    @property
    def mean_absolute_percentage_error(self) -> float:
        actual = np.asarray(self.actual_seconds)
        predicted = np.asarray(self.predicted_seconds)
        nonzero = actual > 0
        return float(np.mean(np.abs(actual[nonzero] - predicted[nonzero]) / actual[nonzero]))

    @property
    def r_squared(self) -> float:
        actual = np.asarray(self.actual_seconds)
        predicted = np.asarray(self.predicted_seconds)
        residual = np.sum((actual - predicted) ** 2)
        total = np.sum((actual - np.mean(actual)) ** 2)
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return float(1.0 - residual / total)

    def rows(self) -> List[Tuple[str, float, float]]:
        """(layer, actual, predicted) rows, e.g. for printing Fig. 4 tables."""
        return list(zip(self.layer_names, self.actual_seconds, self.predicted_seconds))


class _RidgeModel:
    """Minimal ridge regression solved in closed form with numpy.

    Features are scaled to unit maximum column magnitude before solving so the
    regularised normal equations stay well conditioned even though raw features
    span many orders of magnitude (FLOPs ~1e9 next to binary indicators), and
    the pseudo-inverse handles rank-deficient kinds (few samples, collinear
    features) gracefully.
    """

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.weights: Optional[np.ndarray] = None
        self.scale: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        scale = np.max(np.abs(features), axis=0)
        scale[scale == 0] = 1.0
        scaled = features / scale
        n_features = scaled.shape[1]
        gram = scaled.T @ scaled + self.alpha * np.eye(n_features)
        self.weights = np.linalg.pinv(gram) @ (scaled.T @ targets)
        self.scale = scale

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None or self.scale is None:
            raise RuntimeError("model is not fitted")
        return (features / self.scale) @ self.weights


class LatencyRegressionModel:
    """Per-layer latency estimator (the ``T_{v_i}`` oracle of HPA).

    Parameters
    ----------
    alpha:
        Ridge regularisation strength.
    per_kind:
        Fit one model per layer kind (the default, matching the paper's
        observation that different layer types have very different latency
        profiles) or a single pooled model.
    """

    def __init__(self, alpha: float = 1e-6, per_kind: bool = True) -> None:
        self.alpha = alpha
        self.per_kind = per_kind
        self._extractor = LayerFeatureExtractor()
        self._kind_models: Dict[str, _RidgeModel] = {}
        self._global_model = _RidgeModel(alpha)
        self._fitted = False

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, samples: Sequence[TrainingSample]) -> "LatencyRegressionModel":
        """Fit the estimator on profiler measurements."""
        if not samples:
            raise ValueError("cannot fit a regression model on zero samples")
        features = np.vstack(
            [self._extractor.extract(s.graph, s.vertex, s.hardware) for s in samples]
        )
        targets = np.array([s.latency_seconds for s in samples], dtype=np.float64)
        self._global_model.fit(features, targets)

        if self.per_kind:
            by_kind: Dict[str, List[int]] = {}
            for i, sample in enumerate(samples):
                by_kind.setdefault(sample.vertex.kind, []).append(i)
            for kind, indices in by_kind.items():
                # A kind needs at least as many samples as features to be
                # worth a dedicated model; otherwise the global model is used.
                if len(indices) >= 3:
                    model = _RidgeModel(self.alpha)
                    model.fit(features[indices], targets[indices])
                    self._kind_models[kind] = model
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def predict_layer(self, graph: DnnGraph, vertex: Vertex, hardware: HardwareSpec) -> float:
        """Predicted latency in seconds of one layer on one machine."""
        if not self._fitted:
            raise RuntimeError("regression model must be fitted before predicting")
        features = self._extractor.extract(graph, vertex, hardware)[None, :]
        model = self._kind_models.get(vertex.kind, self._global_model)
        prediction = float(model.predict(features)[0])
        # Latencies are physically non-negative; clamp tiny negative predictions
        # caused by extrapolation.
        return max(prediction, 0.0)

    def predict_graph(self, graph: DnnGraph, hardware: HardwareSpec) -> Dict[int, float]:
        """Predicted latency of every vertex of ``graph`` on ``hardware``."""
        return {v.index: self.predict_layer(graph, v, hardware) for v in graph}

    def report(
        self,
        graph: DnnGraph,
        hardware: HardwareSpec,
        actual: Dict[int, float],
        kinds: Optional[Sequence[str]] = None,
    ) -> RegressionReport:
        """Compare predictions against measured latencies for one graph."""
        names, actual_list, predicted_list = [], [], []
        for vertex in graph:
            if kinds is not None and vertex.kind not in kinds:
                continue
            if vertex.index not in actual:
                continue
            names.append(vertex.name)
            actual_list.append(actual[vertex.index])
            predicted_list.append(self.predict_layer(graph, vertex, hardware))
        return RegressionReport(names, actual_list, predicted_list)
