"""Latency-estimation substrate.

The paper's testbed (Raspberry Pi 4 / Jetson Nano device, Core i7-8700 edge
machines, RTX 2080 Ti cloud server) is replaced by:

* :mod:`repro.profiling.hardware` — calibrated hardware capability presets;
* :mod:`repro.profiling.cost_model` — an analytic roofline-style per-layer
  latency model that plays the role of "running the layer on the hardware"
  (the simulated ground truth);
* :mod:`repro.profiling.profiler` — the D3 profiler: it samples noisy layer
  latencies on each tier and monitors the inter-tier bandwidth;
* :mod:`repro.profiling.regression` — the paper's regression model: it learns
  per-layer latency from layer configuration + hardware features and is what
  HPA actually consumes.
"""

from repro.profiling.hardware import (
    CLOUD_SERVER,
    EDGE_DESKTOP,
    HardwareSpec,
    JETSON_NANO,
    RASPBERRY_PI_4,
    TIER_PRESETS,
)
from repro.profiling.cost_model import AnalyticCostModel, LayerCost
from repro.profiling.features import LayerFeatureExtractor, FEATURE_NAMES
from repro.profiling.regression import LatencyRegressionModel, RegressionReport
from repro.profiling.profiler import LatencyProfile, Profiler, ProfiledMeasurement

__all__ = [
    "AnalyticCostModel",
    "CLOUD_SERVER",
    "EDGE_DESKTOP",
    "FEATURE_NAMES",
    "HardwareSpec",
    "JETSON_NANO",
    "LatencyProfile",
    "LatencyRegressionModel",
    "LayerCost",
    "LayerFeatureExtractor",
    "ProfiledMeasurement",
    "Profiler",
    "RASPBERRY_PI_4",
    "RegressionReport",
    "TIER_PRESETS",
]
