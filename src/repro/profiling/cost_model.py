"""Analytic per-layer latency model (the simulated testbed).

The paper measures per-layer latencies by running the networks on physical
machines.  We replace the machines with a roofline-style analytic model:

``latency = max(compute_time, memory_time) + overhead``

* ``compute_time`` — the layer's FLOPs divided by the node's sustained
  throughput, de-rated by a per-layer-kind *arithmetic efficiency* (small 1x1
  convolutions and element-wise layers achieve a much lower fraction of peak
  than large GEMM-like convolutions);
* ``memory_time`` — the bytes the layer must stream (inputs + outputs +
  weights) divided by the node's memory bandwidth;
* ``overhead`` — a fixed per-kernel launch/framework overhead.

This is the **ground truth** of the reproduction: the profiler samples noisy
observations of it, the regression model learns to predict it, and the runtime
simulator charges it when executing a partition.  The absolute values are not
expected to match the paper's testbed, but the model preserves the properties
the algorithms rely on: convolutions dominate latency, latency drops by orders
of magnitude from device to cloud, and feature-map sizes shrink monotonically
through the network while early layers stay cheap to ship.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.dag import DnnGraph, Vertex
from repro.graph.shapes import tensor_bytes
from repro.profiling.hardware import HardwareSpec

#: Memoized per-vertex costs, keyed by graph (weakly, so retired graphs don't
#: pin their cost tables) then by ``(hardware, engine, vertex index)``.  Graphs
#: are immutable once built ("a static, fully annotated artefact"), hardware
#: specs are frozen dataclasses, and the model below is deterministic, so a
#: cached entry can never go stale.  This is what lets repeated plan
#: evaluations — HPA sweeps, the profiler's repeated measurements, and the
#: serving loop — stop recomputing identical roofline latencies.
_COST_CACHE: "weakref.WeakKeyDictionary[DnnGraph, Dict[Tuple[HardwareSpec, bool, int], LayerCost]]" = (
    weakref.WeakKeyDictionary()
)

#: Fraction of the node's sustained throughput each layer kind achieves on a
#: CPU execution engine.
CPU_EFFICIENCY: Dict[str, float] = {
    "conv": 0.55,
    "linear": 0.65,
    "maxpool": 0.20,
    "avgpool": 0.20,
    "globalavgpool": 0.15,
    "batchnorm": 0.12,
    "relu": 0.10,
    "leakyrelu": 0.10,
    "lrn": 0.15,
    "softmax": 0.10,
    "add": 0.12,
    "concat": 0.10,
    "flatten": 0.10,
    "dropout": 0.10,
    "input": 1.0,
}

#: Fraction of the node's sustained throughput each layer kind achieves on a
#: GPU execution engine.  GPUs are comparatively worse at tiny, bandwidth-bound
#: layers, which is what keeps per-layer overheads visible in Fig. 4b.
GPU_EFFICIENCY: Dict[str, float] = {
    "conv": 0.50,
    "linear": 0.35,
    "maxpool": 0.15,
    "avgpool": 0.15,
    "globalavgpool": 0.10,
    "batchnorm": 0.10,
    "relu": 0.08,
    "leakyrelu": 0.08,
    "lrn": 0.10,
    "softmax": 0.08,
    "add": 0.10,
    "concat": 0.08,
    "flatten": 0.08,
    "dropout": 0.08,
    "input": 1.0,
}

_DEFAULT_EFFICIENCY = 0.10


@dataclass(frozen=True)
class LayerCost:
    """Latency breakdown for one layer on one hardware node."""

    vertex_name: str
    kind: str
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        """Roofline latency: compute and memory overlap, overhead does not."""
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds


class AnalyticCostModel:
    """Roofline-style analytic latency model for one hardware node.

    Parameters
    ----------
    hardware:
        The node to model.
    use_gpu:
        Force CPU execution even on GPU nodes when ``False``; by default the
        fastest available engine is used.
    """

    def __init__(self, hardware: HardwareSpec, use_gpu: Optional[bool] = None) -> None:
        self.hardware = hardware
        if use_gpu is None:
            use_gpu = hardware.has_gpu
        if use_gpu and not hardware.has_gpu:
            raise ValueError(f"{hardware.name} has no GPU")
        self.use_gpu = use_gpu

    # ------------------------------------------------------------------ #
    @property
    def _throughput_gflops(self) -> float:
        return self.hardware.gpu_gflops if self.use_gpu else self.hardware.cpu_gflops

    def _efficiency(self, kind: str) -> float:
        table = GPU_EFFICIENCY if self.use_gpu else CPU_EFFICIENCY
        return table.get(kind, _DEFAULT_EFFICIENCY)

    # ------------------------------------------------------------------ #
    def layer_cost(self, graph: DnnGraph, vertex: Vertex) -> LayerCost:
        """Latency breakdown of one vertex of ``graph`` on this node (memoized)."""
        per_graph = _COST_CACHE.get(graph)
        if per_graph is None:
            per_graph = _COST_CACHE.setdefault(graph, {})
        key = (self.hardware, self.use_gpu, vertex.index)
        cached = per_graph.get(key)
        if cached is not None:
            return cached
        cost = self._compute_layer_cost(graph, vertex)
        per_graph[key] = cost
        return cost

    def _compute_layer_cost(self, graph: DnnGraph, vertex: Vertex) -> LayerCost:
        input_bytes = sum(p.output_bytes for p in graph.predecessors(vertex.index))
        output_bytes = vertex.output_bytes
        weight_bytes = vertex.weight_count * 4
        moved_bytes = input_bytes + output_bytes + weight_bytes

        throughput = self._throughput_gflops * 1e9 * self._efficiency(vertex.kind)
        compute_seconds = vertex.flops / throughput if vertex.flops else 0.0
        bandwidth = self.hardware.memory_bandwidth_gbps * 1e9
        memory_seconds = moved_bytes / bandwidth if moved_bytes else 0.0
        overhead = 0.0 if vertex.kind == "input" else self.hardware.per_layer_overhead_s
        return LayerCost(
            vertex_name=vertex.name,
            kind=vertex.kind,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead,
        )

    def layer_latency(self, graph: DnnGraph, vertex: Vertex) -> float:
        """Total latency in seconds of one vertex on this node."""
        return self.layer_cost(graph, vertex).total_seconds

    def graph_latencies(self, graph: DnnGraph) -> Dict[int, float]:
        """Per-vertex latency of the whole graph, keyed by vertex index."""
        return {v.index: self.layer_latency(graph, v) for v in graph}

    def total_latency(self, graph: DnnGraph) -> float:
        """Latency of executing the whole graph sequentially on this node."""
        return sum(self.graph_latencies(graph).values())

    # ------------------------------------------------------------------ #
    def tiled_conv_latency(
        self,
        graph: DnnGraph,
        vertex: Vertex,
        tile_input_elements: int,
        full_input_elements: int,
    ) -> float:
        """Latency of running ``vertex`` on a spatial tile of its input.

        Used by the VSM runtime model: a fused tile carries
        ``tile_input_elements / full_input_elements`` of the work of the full
        layer (including the overlap-induced redundancy, because the ratio is
        computed from the *padded tile* the edge node actually processes).
        """
        if full_input_elements <= 0:
            raise ValueError("full_input_elements must be positive")
        fraction = tile_input_elements / full_input_elements
        cost = self.layer_cost(graph, vertex)
        scaled = max(cost.compute_seconds * fraction, cost.memory_seconds * fraction)
        return scaled + cost.overhead_seconds


def per_layer_table(
    graph: DnnGraph,
    hardware: HardwareSpec,
    kinds: Optional[Sequence[str]] = None,
) -> List[LayerCost]:
    """Convenience helper returning the per-layer cost table of a graph.

    ``kinds`` restricts the table to the given layer kinds (e.g. only conv and
    fc layers, which is what the paper's Fig. 1 plots).
    """
    model = AnalyticCostModel(hardware)
    rows = []
    for vertex in graph:
        if kinds is not None and vertex.kind not in kinds:
            continue
        rows.append(model.layer_cost(graph, vertex))
    return rows
