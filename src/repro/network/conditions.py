"""Network operating points of the evaluation (Table III of the paper).

The device and edge nodes always share a 5 GHz Wi-Fi LAN; the backbone link
from the LAN to the cloud is the experimental variable (Wi-Fi, 4G, 5G or an
optical network).  When the edge uses the optical network, the device still
reaches the cloud over its Wi-Fi link.

All rates are average uplink rates in Mbps, copied verbatim from Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.link import NetworkLink

#: Table III of the paper: average uplink rate (Mbps) between two nodes.
TABLE_III_UPLINK_MBPS: Dict[str, Dict[str, float]] = {
    "wifi": {"device-edge": 84.95, "edge-cloud": 31.53, "device-cloud": 18.75},
    "4g": {"device-edge": 84.95, "edge-cloud": 13.79, "device-cloud": 6.12},
    "5g": {"device-edge": 84.95, "edge-cloud": 22.75, "device-cloud": 11.64},
    "optical": {"device-edge": 84.95, "edge-cloud": 50.23, "device-cloud": 18.75},
}

#: Display names matching the paper's figure captions.
CONDITION_DISPLAY_NAMES = {
    "wifi": "Wi-Fi",
    "4g": "4G",
    "5g": "5G",
    "optical": "Optical Network",
}


@dataclass(frozen=True)
class NetworkCondition:
    """One network scenario: the bandwidth of every tier pair.

    The paper assumes symmetric two-way delays between tiers and negligible
    delay within a tier, which is reflected by :meth:`bandwidth_mbps` being
    symmetric and :meth:`transfer_seconds` returning zero for same-tier pairs.
    """

    name: str
    device_edge_mbps: float
    edge_cloud_mbps: float
    device_cloud_mbps: float
    intra_tier_mbps: float = 0.0  # 0 means "infinite" (negligible delay)

    def __post_init__(self) -> None:
        for value in (self.device_edge_mbps, self.edge_cloud_mbps, self.device_cloud_mbps):
            if value <= 0:
                raise ValueError("bandwidths must be positive")

    # ------------------------------------------------------------------ #
    def bandwidth_mbps(self, source, destination) -> float:
        """Symmetric bandwidth between two tiers (``inf`` within a tier)."""
        src = getattr(source, "value", source)
        dst = getattr(destination, "value", destination)
        if src == dst:
            return float("inf")
        pair = frozenset((src, dst))
        if pair == frozenset(("device", "edge")):
            return self.device_edge_mbps
        if pair == frozenset(("edge", "cloud")):
            return self.edge_cloud_mbps
        if pair == frozenset(("device", "cloud")):
            return self.device_cloud_mbps
        raise KeyError(f"unknown tier pair ({src}, {dst})")

    def transfer_seconds(self, payload_bytes: int, source, destination) -> float:
        """Transmission delay of a payload between two tiers."""
        src = getattr(source, "value", source)
        dst = getattr(destination, "value", destination)
        if src == dst:
            if self.intra_tier_mbps > 0:
                return payload_bytes / (self.intra_tier_mbps * 1e6 / 8.0)
            return 0.0
        return payload_bytes / (self.bandwidth_mbps(src, dst) * 1e6 / 8.0)

    def links(self) -> List[NetworkLink]:
        """The three inter-tier links of this condition."""
        return [
            NetworkLink("device", "edge", self.device_edge_mbps),
            NetworkLink("edge", "cloud", self.edge_cloud_mbps),
            NetworkLink("device", "cloud", self.device_cloud_mbps),
        ]

    # ------------------------------------------------------------------ #
    def with_backbone_mbps(self, bandwidth_mbps: float) -> "NetworkCondition":
        """Copy with the LAN-to-cloud bandwidth set to ``bandwidth_mbps``.

        Used by the Fig. 11 sweep ("bandwidth between the LAN and the cloud
        node"): both the edge-to-cloud and device-to-cloud rates are set to the
        swept value while the LAN link is unchanged.
        """
        return NetworkCondition(
            name=f"{self.name}@{bandwidth_mbps:g}Mbps",
            device_edge_mbps=self.device_edge_mbps,
            edge_cloud_mbps=bandwidth_mbps,
            device_cloud_mbps=bandwidth_mbps,
            intra_tier_mbps=self.intra_tier_mbps,
        )

    def scaled_backbone(self, factor: float) -> "NetworkCondition":
        """Copy with the LAN-to-cloud rates multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return NetworkCondition(
            name=f"{self.name}(x{factor:g})",
            device_edge_mbps=self.device_edge_mbps,
            edge_cloud_mbps=self.edge_cloud_mbps * factor,
            device_cloud_mbps=self.device_cloud_mbps * factor,
            intra_tier_mbps=self.intra_tier_mbps,
        )

    @property
    def display_name(self) -> str:
        return CONDITION_DISPLAY_NAMES.get(self.name, self.name)


def _build_conditions() -> Dict[str, NetworkCondition]:
    conditions = {}
    for name, rates in TABLE_III_UPLINK_MBPS.items():
        conditions[name] = NetworkCondition(
            name=name,
            device_edge_mbps=rates["device-edge"],
            edge_cloud_mbps=rates["edge-cloud"],
            device_cloud_mbps=rates["device-cloud"],
        )
    return conditions


#: The four evaluation scenarios of the paper, keyed by short name.
NETWORK_CONDITIONS: Dict[str, NetworkCondition] = _build_conditions()


def list_conditions() -> List[str]:
    """Names of the available network conditions, in the paper's order."""
    return ["wifi", "4g", "5g", "optical"]


def get_condition(name: str) -> NetworkCondition:
    """Look up a named network condition (case-insensitive)."""
    key = name.lower().replace(" ", "").replace("-", "")
    aliases = {"wifi": "wifi", "4g": "4g", "5g": "5g", "optical": "optical", "opticalnetwork": "optical"}
    if key not in aliases:
        raise KeyError(f"unknown network condition {name!r}; available: {list_conditions()}")
    return NETWORK_CONDITIONS[aliases[key]]


@dataclass
class BandwidthTrace:
    """A piecewise-constant bandwidth trace.

    ``samples`` is a sequence of ``(start_time_s, value)`` pairs; the value in
    effect at time ``t`` is the one of the latest sample with
    ``start_time_s <= t`` (the first sample before that).  Two uses:

    * with a ``base`` :class:`NetworkCondition`, values are *multipliers*
      applied to the base's backbone bandwidth (the dynamics experiments:
      congestion episodes that HPA's re-partitioner reacts to), and
    * without a base, values are absolute link rates in *Mbps* — this is the
      form a :class:`~repro.network.topology.LinkSpec` accepts, so any
      physical link of a topology can drift on its own schedule.

    Timestamps must be strictly increasing: a duplicate timestamp would make
    the value at that instant ambiguous, so it is rejected outright rather
    than silently resolved by ordering.
    """

    base: Optional[NetworkCondition] = None
    samples: Sequence[Tuple[float, float]] = field(default_factory=lambda: [(0.0, 1.0)])

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("trace needs at least one sample")
        times = [t for t, _ in self.samples]
        for earlier, later in zip(times, times[1:]):
            if later == earlier:
                raise ValueError(f"duplicate trace timestamp {later!r}")
            if later < earlier:
                raise ValueError("trace samples must be ordered by time")
        if any(value <= 0 for _, value in self.samples):
            raise ValueError("trace values must be positive")

    def sample_at(self, time_s: float) -> float:
        """The raw sample value (multiplier or Mbps) in effect at ``time_s``.

        Before the first timestamp no sample is in effect yet: a multiplier
        trace (``base`` set) reports the undisturbed base (``1.0``), an
        absolute-rate trace reports its first declared rate rather than
        extrapolating a value that was never observed.
        """
        first_start, first_value = self.samples[0]
        if time_s < first_start:
            return 1.0 if self.base is not None else first_value
        current = first_value
        for start, value in self.samples:
            if time_s >= start:
                current = value
            else:
                break
        return current

    def multiplier_at(self, time_s: float) -> float:
        """Backbone multiplier in effect at ``time_s`` (alias of :meth:`sample_at`)."""
        return self.sample_at(time_s)

    def condition_at(self, time_s: float) -> NetworkCondition:
        """The effective network condition at ``time_s`` (requires ``base``)."""
        if self.base is None:
            raise ValueError(
                "this trace has no base NetworkCondition; its samples are "
                "absolute link rates, not backbone multipliers"
            )
        return self.base.scaled_backbone(self.multiplier_at(time_s))
