"""Point-to-point network links between computing tiers.

A :class:`NetworkLink` converts tensor sizes into transmission delays, which is
how the paper computes the link weights ``T_{(v_i, v_j)}``: "the output data
size of ``v_i`` divided by the network bandwidth between ``l_i`` and ``l_j``"
(section III-D), plus an optional fixed propagation/round-trip component.
"""

from __future__ import annotations

from dataclasses import dataclass

MBPS_TO_BYTES_PER_SECOND = 1e6 / 8.0


def transfer_seconds(payload_bytes: int, bandwidth_mbps: float, latency_s: float = 0.0) -> float:
    """Time to ship ``payload_bytes`` over a link of ``bandwidth_mbps``.

    Parameters
    ----------
    payload_bytes:
        Size of the serialized tensor (or message) in bytes.
    bandwidth_mbps:
        Link uplink rate in megabits per second (the unit of Table III).
    latency_s:
        Fixed one-way propagation latency added to every transfer.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes cannot be negative")
    if bandwidth_mbps <= 0:
        raise ValueError("bandwidth must be positive")
    if payload_bytes == 0:
        return 0.0
    return payload_bytes / (bandwidth_mbps * MBPS_TO_BYTES_PER_SECOND) + latency_s


@dataclass
class SharedLink:
    """Stateful capacity of one inter-tier link under concurrent load.

    The stateless :class:`NetworkLink` converts a payload into a transmission
    delay assuming the link is idle — correct for the paper's one-shot
    evaluation.  Under a multi-request workload several in-flight inferences
    contend for the same physical link, so the serving engine routes every
    transfer through a :class:`SharedLink`, which serializes transmissions in
    FIFO order: a transfer asked to start at ``ready_s`` while an earlier one
    is still on the wire is delayed until the link frees.  (FIFO serialization
    and fair sharing finish a backlog at the same time; FIFO additionally
    keeps per-transfer completion times deterministic and easy to reason
    about, which the event-queue invariant tests rely on.)

    Attributes
    ----------
    source, destination:
        Tier names of the unordered pair this link connects.
    available_at:
        Simulation time at which the wire is next free.
    busy_seconds:
        Total time the wire spent transmitting (utilisation bookkeeping).
    bytes_carried:
        Total payload shipped over the link, both directions.
    """

    source: str
    destination: str
    available_at: float = 0.0
    busy_seconds: float = 0.0
    bytes_carried: int = 0
    transfer_count: int = 0
    #: Name of the :class:`~repro.network.topology.LinkSpec` this wire
    #: realizes; lets the cluster resolve the spec (bandwidth, trace) back
    #: from the stateful link.  ``None`` for hand-built links.
    link_id: "str | None" = None

    @property
    def key(self) -> tuple:
        """Unordered endpoint pair, matching :attr:`NetworkLink.key`."""
        return tuple(sorted((self.source, self.destination)))

    def reset(self) -> None:
        """Clear contention state before a new simulation run."""
        self.available_at = 0.0
        self.busy_seconds = 0.0
        self.bytes_carried = 0
        self.transfer_count = 0

    def reserve(self, ready_s: float, duration_s: float, payload_bytes: int = 0) -> tuple[float, float]:
        """Reserve the wire for one transfer; returns its (start, end) times.

        The transfer starts no earlier than ``ready_s`` and no earlier than
        the end of the previous reservation (FIFO serialization).
        """
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        start = max(ready_s, self.available_at)
        end = start + duration_s
        self.available_at = end
        self.busy_seconds += duration_s
        self.bytes_carried += payload_bytes
        self.transfer_count += 1
        return start, end

    def record(self, duration_s: float, payload_bytes: int = 0) -> None:
        """Account a transfer without serializing it (uncontended bookkeeping)."""
        self.busy_seconds += duration_s
        self.bytes_carried += payload_bytes
        self.transfer_count += 1


@dataclass(frozen=True)
class NetworkLink:
    """A directed link between two computing tiers.

    Attributes
    ----------
    source, destination:
        Tier names ("device", "edge", "cloud").
    bandwidth_mbps:
        Average uplink rate in Mbps.
    latency_s:
        Fixed propagation latency (defaults to zero; the paper folds it into
        the measured rates).
    """

    source: str
    destination: str
    bandwidth_mbps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Transmission delay of ``payload_bytes`` over this link."""
        return transfer_seconds(payload_bytes, self.bandwidth_mbps, self.latency_s)

    def with_bandwidth(self, bandwidth_mbps: float) -> "NetworkLink":
        """Copy of the link with a different bandwidth (for sweeps/dynamics)."""
        return NetworkLink(self.source, self.destination, bandwidth_mbps, self.latency_s)

    @property
    def key(self) -> tuple:
        """Unordered tier pair, matching the paper's symmetric-delay assumption."""
        return tuple(sorted((self.source, self.destination)))
