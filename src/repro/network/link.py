"""Point-to-point network links between computing tiers.

A :class:`NetworkLink` converts tensor sizes into transmission delays, which is
how the paper computes the link weights ``T_{(v_i, v_j)}``: "the output data
size of ``v_i`` divided by the network bandwidth between ``l_i`` and ``l_j``"
(section III-D), plus an optional fixed propagation/round-trip component.
"""

from __future__ import annotations

from dataclasses import dataclass

MBPS_TO_BYTES_PER_SECOND = 1e6 / 8.0


def transfer_seconds(payload_bytes: int, bandwidth_mbps: float, latency_s: float = 0.0) -> float:
    """Time to ship ``payload_bytes`` over a link of ``bandwidth_mbps``.

    Parameters
    ----------
    payload_bytes:
        Size of the serialized tensor (or message) in bytes.
    bandwidth_mbps:
        Link uplink rate in megabits per second (the unit of Table III).
    latency_s:
        Fixed one-way propagation latency added to every transfer.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes cannot be negative")
    if bandwidth_mbps <= 0:
        raise ValueError("bandwidth must be positive")
    if payload_bytes == 0:
        return 0.0
    return payload_bytes / (bandwidth_mbps * MBPS_TO_BYTES_PER_SECOND) + latency_s


@dataclass(frozen=True)
class NetworkLink:
    """A directed link between two computing tiers.

    Attributes
    ----------
    source, destination:
        Tier names ("device", "edge", "cloud").
    bandwidth_mbps:
        Average uplink rate in Mbps.
    latency_s:
        Fixed propagation latency (defaults to zero; the paper folds it into
        the measured rates).
    """

    source: str
    destination: str
    bandwidth_mbps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Transmission delay of ``payload_bytes`` over this link."""
        return transfer_seconds(payload_bytes, self.bandwidth_mbps, self.latency_s)

    def with_bandwidth(self, bandwidth_mbps: float) -> "NetworkLink":
        """Copy of the link with a different bandwidth (for sweeps/dynamics)."""
        return NetworkLink(self.source, self.destination, bandwidth_mbps, self.latency_s)

    @property
    def key(self) -> tuple:
        """Unordered tier pair, matching the paper's symmetric-delay assumption."""
        return tuple(sorted((self.source, self.destination)))
