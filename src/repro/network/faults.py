"""Declarative failure injection: timed faults over a deployment topology.

The serving engine of :mod:`repro.runtime.serving` simulates a deployment in
which, until now, every machine and wire stayed healthy forever.  Production
edge/cloud fleets do not behave like that: nodes crash and reboot, wires go
dark and come back.  This module makes the *failure scenario* itself a
first-class, serializable artifact, mirroring how
:class:`~repro.network.topology.Topology` made the deployment declarative:

* :class:`NodeDown` / :class:`NodeUp` / :class:`LinkDown` / :class:`LinkUp` —
  one timed fault each, targeting a topology node or link by name;
* :class:`FaultSchedule` — the ordered event list with JSON round-tripping
  (the dialect ``repro serve --faults schedule.json`` consumes), point-in-time
  state queries (:meth:`FaultSchedule.state_at`), and validation against a
  topology;
* :meth:`FaultSchedule.chaos` — a seeded random generator of crash/recover
  cycles with per-tier mean-time-between-failure rates, so chaos experiments
  are reproducible artefacts too (``repro serve --faults chaos:<seed>``).

The schedule is purely declarative; the serving engine consumes it as
first-class simulation events (aborting in-flight work, triggering failover
replanning) and the planning layer samples :meth:`state_at` to plan each
request against the deployment shape in effect at its arrival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import ClassVar, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

#: Event kinds a schedule may contain, in serialization spelling.
FAULT_KINDS = ("node_down", "node_up", "link_down", "link_up")


class FaultScheduleError(ValueError):
    """Raised when a fault schedule is structurally invalid."""


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: at ``time_s``, ``target`` changes availability.

    ``target`` names a topology node (for ``node_*`` kinds) or link (for
    ``link_*`` kinds).  Use the concrete subclasses — :class:`NodeDown`,
    :class:`NodeUp`, :class:`LinkDown`, :class:`LinkUp` — rather than this
    base directly.
    """

    time_s: float
    target: str
    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultScheduleError(
                f"abstract FaultEvent cannot be scheduled; use one of "
                f"NodeDown/NodeUp/LinkDown/LinkUp"
            )
        if self.time_s < 0:
            raise FaultScheduleError(f"fault time cannot be negative ({self.time_s})")
        if not self.target:
            raise FaultScheduleError("fault needs a non-empty target name")

    @property
    def is_node_event(self) -> bool:
        return self.kind.startswith("node_")

    @property
    def is_failure(self) -> bool:
        """True for down events, False for recoveries."""
        return self.kind.endswith("_down")


class NodeDown(FaultEvent):
    """Node ``target`` crashes at ``time_s``: in-flight work on it aborts."""

    kind = "node_down"


class NodeUp(FaultEvent):
    """Node ``target`` recovers at ``time_s`` and may be scheduled again."""

    kind = "node_up"


class LinkDown(FaultEvent):
    """Link ``target`` goes dark at ``time_s``: in-flight transfers abort."""

    kind = "link_down"


class LinkUp(FaultEvent):
    """Link ``target`` comes back at ``time_s`` and routes over it reopen."""

    kind = "link_up"


_EVENT_TYPES: Dict[str, type] = {
    "node_down": NodeDown,
    "node_up": NodeUp,
    "link_down": LinkDown,
    "link_up": LinkUp,
}


class TimedSchedule:
    """Shared container contract of the declarative timed-event schedules.

    :class:`FaultSchedule` (failures) and
    :class:`repro.runtime.elasticity.ElasticitySchedule` (capacity changes)
    are both ordered lists of timed events: kept sorted by time (stably, so
    same-time events apply in declaration order), truthy only when non-empty
    (an empty schedule behaves exactly like no schedule at all), with a
    horizon.  Subclasses declare which event family they accept and own the
    event semantics, point-in-time queries and JSON dialects.
    """

    #: Event base class instances must derive from.
    event_base: ClassVar[type] = object
    #: Serialization spellings of the accepted event kinds.
    kinds: ClassVar[Tuple[str, ...]] = ()
    #: Error type raised on structurally invalid input.
    error: ClassVar[type] = ValueError
    #: Human word for the family, used in error messages ("fault", ...).
    family: ClassVar[str] = "timed"

    def __init__(self, events: Sequence = (), name: str = "events") -> None:
        for event in events:
            if not isinstance(event, self.event_base) or event.kind not in self.kinds:
                raise self.error(f"not a {self.family} event: {event!r}")
        self.name = name
        self.events: List = sorted(events, key=lambda e: e.time_s)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        # A schedule object with zero events behaves like "no schedule";
        # `serve(faults=FaultSchedule([]))` stays bit-identical to
        # `serve(faults=None)`, and the same holds for elasticity.
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, type(self))
            and self.name == other.name
            and self.events == other.events
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {len(self.events)} events)"

    @property
    def horizon_s(self) -> float:
        """Time of the last scheduled event."""
        return self.events[-1].time_s if self.events else 0.0


class FaultSchedule(TimedSchedule):
    """An ordered, validated list of timed fault events.

    Down/up events are idempotent: a second ``NodeDown`` for an already-down
    node changes nothing, and an ``up`` for a healthy target is a no-op —
    which lets seeded generators and hand-written schedules compose without
    bookkeeping.
    """

    event_base = FaultEvent
    kinds = FAULT_KINDS
    error = FaultScheduleError
    family = "fault"

    def __init__(self, events: Sequence[FaultEvent] = (), name: str = "faults") -> None:
        super().__init__(events, name=name)

    # ------------------------------------------------------------------ #
    def state_at(self, time_s: float) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """The ``(down_nodes, down_links)`` in effect at ``time_s``.

        Events scheduled exactly at ``time_s`` are already applied (a request
        arriving the instant a node dies sees it dead, matching the serving
        engine's fault-before-arrival tie-break).
        """
        down_nodes: set = set()
        down_links: set = set()
        for event in self.events:
            if event.time_s > time_s:
                break
            targets = down_nodes if event.is_node_event else down_links
            if event.is_failure:
                targets.add(event.target)
            else:
                targets.discard(event.target)
        return frozenset(down_nodes), frozenset(down_links)

    def validate_against(self, topology) -> None:
        """Check every event targets a node/link the topology declares."""
        for event in self.events:
            pool = topology.nodes if event.is_node_event else topology.links
            if event.target not in pool:
                what = "node" if event.is_node_event else "link"
                raise FaultScheduleError(
                    f"fault schedule {self.name!r} targets unknown {what} "
                    f"{event.target!r} (topology {topology.name!r})"
                )

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to the JSON dialect :meth:`from_json` accepts."""
        payload = {
            "name": self.name,
            "events": [
                {"at": event.time_s, "kind": event.kind, "target": event.target}
                for event in self.events
            ],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, data: Union[str, Mapping]) -> "FaultSchedule":
        """Parse a schedule from a JSON string or an already-decoded mapping."""
        if isinstance(data, str):
            try:
                payload = json.loads(data)
            except json.JSONDecodeError as error:
                raise FaultScheduleError(f"invalid fault schedule JSON: {error}") from None
        else:
            payload = dict(data)
        if not isinstance(payload, dict):
            raise FaultScheduleError("fault schedule JSON must be an object")
        events = []
        for entry in payload.get("events", []):
            kind = entry.get("kind")
            if kind not in _EVENT_TYPES:
                raise FaultScheduleError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            events.append(_EVENT_TYPES[kind](float(entry["at"]), str(entry["target"])))
        return cls(events, name=str(payload.get("name", "faults")))

    # ------------------------------------------------------------------ #
    # Seeded chaos generation
    # ------------------------------------------------------------------ #
    @classmethod
    def chaos(
        cls,
        topology,
        seed: int = 0,
        horizon_s: float = 60.0,
        tier_mtbf_s: Optional[Mapping[str, float]] = None,
        mttr_s: float = 3.0,
        link_mtbf_s: Optional[float] = None,
    ) -> "FaultSchedule":
        """A seeded random crash/recover schedule over ``topology``.

        Every node whose tier appears in ``tier_mtbf_s`` (default: edge nodes
        with a 15 s mean time between failures) cycles through crashes drawn
        from an exponential inter-failure process and recoveries after an
        exponential repair time of mean ``mttr_s``.  With ``link_mtbf_s``,
        every declared wire runs the same process.  The device tier is
        excluded by default — a dead source device does not fail over, it
        takes its requests down with it — but can be opted in via
        ``tier_mtbf_s``.

        Fully determined by ``(topology, seed, horizon, rates)``: the node and
        link iteration order is the topology's declaration order and each
        target consumes its draws in sequence, so the schedule is a
        reproducible artefact.
        """
        if horizon_s <= 0:
            raise FaultScheduleError("chaos horizon must be positive")
        if mttr_s <= 0:
            raise FaultScheduleError("mean time to repair must be positive")
        rates = dict(tier_mtbf_s) if tier_mtbf_s is not None else {"edge": 15.0}
        if any(mtbf <= 0 for mtbf in rates.values()):
            raise FaultScheduleError("mean time between failures must be positive")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []

        def cycle(target: str, mtbf: float, down_type: type, up_type: type) -> None:
            clock = 0.0
            while True:
                clock += float(rng.exponential(mtbf))
                if clock >= horizon_s:
                    return
                repair = float(rng.exponential(mttr_s))
                events.append(down_type(clock, target))
                events.append(up_type(clock + repair, target))
                clock += repair

        for node in topology.nodes.values():
            mtbf = rates.get(node.tier)
            if mtbf is not None:
                cycle(node.name, mtbf, NodeDown, NodeUp)
        if link_mtbf_s is not None:
            if link_mtbf_s <= 0:
                raise FaultScheduleError("link mean time between failures must be positive")
            for link in topology.links.values():
                cycle(link.name, link_mtbf_s, LinkDown, LinkUp)
        return cls(events, name=f"chaos:{seed}")


def load_fault_schedule(
    spec: Union[str, FaultSchedule],
    topology=None,
    horizon_s: Optional[float] = None,
    **chaos_kwargs,
) -> FaultSchedule:
    """Resolve a fault schedule from a spec string or pass one through.

    This is what ``repro serve --faults`` accepts:

    * ``"chaos:<seed>"`` — a seeded random schedule over ``topology``
      (``horizon_s`` bounds the generator; defaults to 60 s);
    * a path to a JSON file in the dialect of :meth:`FaultSchedule.to_json`;
    * an existing :class:`FaultSchedule` (returned unchanged).
    """
    import os

    if isinstance(spec, FaultSchedule):
        return spec
    if spec.startswith("chaos:"):
        if topology is None:
            raise FaultScheduleError("chaos schedules need a topology to target")
        try:
            seed = int(spec.split(":", 1)[1])
        except ValueError:
            raise FaultScheduleError(
                f"invalid chaos spec {spec!r}; expected chaos:<integer seed>"
            ) from None
        return FaultSchedule.chaos(
            topology, seed=seed, horizon_s=horizon_s or 60.0, **chaos_kwargs
        )
    if os.path.exists(spec):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                schedule = FaultSchedule.from_json(handle.read())
        except OSError as error:
            raise FaultScheduleError(
                f"cannot read fault schedule {spec!r}: {error}"
            ) from None
        if topology is not None:
            schedule.validate_against(topology)
        return schedule
    raise FaultScheduleError(
        f"unknown fault schedule {spec!r}: not chaos:<seed> and not a readable JSON file"
    )
