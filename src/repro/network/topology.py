"""Declarative deployment topologies: arbitrary nodes-and-links clusters.

The paper evaluates D3 on exactly one testbed shape — a single device, a rack
of identical edge desktops, one cloud server and the three tier-pair
bandwidths of Table III — and the original ``Cluster``/``NetworkCondition``
API baked that shape in.  This module makes the deployment description itself
a first-class, serializable artifact:

* :class:`NodeSpec` — one named machine: a computing tier (``device``,
  ``edge``, ``cloud``, or a non-computing ``relay`` such as a gateway) plus a
  :class:`~repro.profiling.hardware.HardwareSpec`, so devices can be plural
  and edge racks heterogeneous;
* :class:`LinkSpec` — one named physical wire between two endpoints (node
  names, or tier aliases meaning "every node of that tier shares this wire"),
  whose bandwidth is a static Mbps value, a
  :class:`~repro.network.conditions.BandwidthTrace` of absolute Mbps samples
  (so any link — not just the backbone — can drift), or ``None`` meaning
  "inherit the tier-pair rate of the active NetworkCondition" (how the
  canonical testbed stays bit-identical to the original fixed-shape API);
* :class:`Topology` — the validated graph of both, with routing (transfers
  between nodes follow the fewest-hop path over the declared links), a
  planning view (:meth:`Topology.planning_condition` reduces any shape to the
  effective tier-pair bandwidths HPA and the baselines plan against), a
  :meth:`Topology.fingerprint` for plan-cache keys, and JSON round-tripping.

:meth:`Topology.three_tier` reproduces the paper's testbed exactly;
:func:`get_topology` serves the preset fleet shapes (``multi_device``,
``hetero_edge``, ``device_gateway``) and :func:`load_topology` additionally
accepts a path to a topology JSON file.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import astuple, dataclass, field, fields
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.network.conditions import BandwidthTrace, NetworkCondition, get_condition
from repro.profiling.hardware import (
    CLOUD_SERVER,
    EDGE_DESKTOP,
    EnergyModel,
    HardwareSpec,
    RASPBERRY_PI_4,
    get_hardware,
    hardware_preset_name,
)

#: Tiers that carry computation (placement plans only ever target these).
COMPUTE_TIERS = ("device", "edge", "cloud")

#: All tiers a node may declare; relays forward traffic but run no layers.
NODE_TIERS = COMPUTE_TIERS + ("relay",)

#: The bandwidth of a link: inherit from the NetworkCondition (``None``),
#: a static Mbps value, or an absolute-Mbps trace.
Bandwidth = Union[None, float, BandwidthTrace]

#: Default $/s billed for keeping one node of each tier up, used when a
#: :class:`NodeSpec` does not declare its own ``price_per_s``.  Devices are
#: user-owned (no bill), an edge box runs ~$0.07/h and the GPU cloud server
#: ~$3.20/h — on-demand cloud-GPU territory.  Relays forward for free.
DEFAULT_TIER_PRICES: Dict[str, float] = {
    "device": 0.0,
    "edge": 2.0e-5,
    "cloud": 8.9e-4,
    "relay": 0.0,
}


class TopologyError(ValueError):
    """Raised when a topology description is structurally invalid."""


class RouteUnavailableError(TopologyError):
    """Raised when no route exists between two nodes over the usable links.

    Subclasses :class:`TopologyError` so pre-failure callers that caught the
    broad error keep working; the serving engine catches this *typed* error to
    distinguish "the deployment is mis-wired" from "a failure severed the
    path" and trigger failover replanning for the latter.
    """


class InsufficientMemoryError(TopologyError):
    """Raised when no compute node can hold even the cheapest model placement.

    The cheapest single-model placement packs all of one model's stages onto
    the deployment's roomiest compute node; when its
    :attr:`~repro.profiling.hardware.HardwareSpec.memory_gb` cannot hold that
    model's weights + peak activation, every partition of every model in the
    workload is infeasible and serving would only thrash cold starts that can
    never be admitted.  Subclasses :class:`TopologyError` so existing broad
    handlers keep working.
    """


def hardware_to_json(spec: HardwareSpec) -> Dict[str, object]:
    """Field-driven JSON form of a :class:`HardwareSpec`.

    Walks ``dataclasses.fields`` instead of an explicit field list, so a
    field added to the spec (or its nested :class:`EnergyModel`) can never be
    silently dropped — the bug that previously lost ``per_layer_overhead_s``
    class additions on round-trip.  The unmetered default energy model is
    omitted, keeping pre-energy documents byte-stable.
    """
    payload: Dict[str, object] = {}
    for spec_field in fields(HardwareSpec):
        value = getattr(spec, spec_field.name)
        if isinstance(value, EnergyModel):
            if value == EnergyModel():
                continue  # the default: implied, keeps old documents stable
            payload[spec_field.name] = {
                energy_field.name: getattr(value, energy_field.name)
                for energy_field in fields(EnergyModel)
            }
        else:
            payload[spec_field.name] = value
    return payload


def hardware_from_json(mapping: Mapping) -> HardwareSpec:
    """Parse the mapping form of a :class:`HardwareSpec` losslessly.

    The exact inverse of :func:`hardware_to_json`: every declared dataclass
    field is read back (absent optional fields take the dataclass default),
    and unknown keys are rejected so typos do not silently vanish.
    """
    known = {spec_field.name for spec_field in fields(HardwareSpec)}
    unknown = set(mapping) - known
    if unknown:
        raise TopologyError(
            f"unknown hardware field(s) {sorted(unknown)}; expected a subset of "
            f"{sorted(known)}"
        )
    kwargs: Dict[str, object] = {}
    try:
        for spec_field in fields(HardwareSpec):
            if spec_field.name not in mapping:
                continue
            value = mapping[spec_field.name]
            if spec_field.name == "energy":
                if isinstance(value, EnergyModel):
                    kwargs[spec_field.name] = value
                    continue
                energy_known = {f.name for f in fields(EnergyModel)}
                energy_unknown = set(value) - energy_known
                if energy_unknown:
                    raise TopologyError(
                        f"unknown energy field(s) {sorted(energy_unknown)}; "
                        f"expected a subset of {sorted(energy_known)}"
                    )
                kwargs[spec_field.name] = EnergyModel(
                    **{key: float(item) for key, item in value.items()}
                )
            elif spec_field.name == "name":
                kwargs[spec_field.name] = str(value)
            else:
                kwargs[spec_field.name] = float(value)
        kwargs.setdefault("name", "custom")
        return HardwareSpec(**kwargs)
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, TopologyError):
            raise
        raise TopologyError(f"invalid hardware spec: {error}") from None


def canonical_links() -> List["LinkSpec"]:
    """The paper's three inherited wires (one shared medium per tier pair).

    Single source of truth for the canonical wiring: the three_tier and
    hetero_edge presets and the topology a hand-built ``Cluster`` synthesizes
    all share these link ids, which plan caches and ``link_busy_s`` reports
    key on.
    """
    return [
        LinkSpec("device-edge", "device", "edge"),
        LinkSpec("edge-cloud", "edge", "cloud"),
        LinkSpec("device-cloud", "device", "cloud"),
    ]


@dataclass(frozen=True)
class NodeSpec:
    """One named machine of a deployment.

    ``price_per_s`` is what keeping this node up costs in $/s; ``None``
    inherits the tier default from :data:`DEFAULT_TIER_PRICES`, so existing
    topology documents price themselves sensibly without edits.
    """

    name: str
    tier: str
    hardware: Optional[HardwareSpec] = None
    price_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node needs a non-empty name")
        if self.tier not in NODE_TIERS:
            raise TopologyError(
                f"node {self.name!r} has unknown tier {self.tier!r}; "
                f"expected one of {NODE_TIERS}"
            )
        if self.tier in COMPUTE_TIERS and self.hardware is None:
            raise TopologyError(f"compute node {self.name!r} needs a hardware spec")
        if self.price_per_s is not None and self.price_per_s < 0:
            raise TopologyError(f"node {self.name!r} has a negative price_per_s")

    @property
    def is_compute(self) -> bool:
        return self.tier in COMPUTE_TIERS

    @property
    def resolved_price_per_s(self) -> float:
        """The node's $/s, falling back to its tier's default price."""
        if self.price_per_s is not None:
            return self.price_per_s
        return DEFAULT_TIER_PRICES[self.tier]


@dataclass(frozen=True)
class LinkSpec:
    """One named physical wire between two endpoints.

    Endpoints are node names or tier aliases; a tier alias means every node of
    that tier shares this one wire (the paper's LAN: one Wi-Fi medium between
    the device and all edge nodes).  ``bandwidth`` is ``None`` (inherit the
    tier-pair rate from the active :class:`NetworkCondition`), a static Mbps
    float, or a :class:`BandwidthTrace` of absolute Mbps samples.
    """

    name: str
    a: str
    b: str
    bandwidth: Bandwidth = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("link needs a non-empty name")
        if self.a == self.b:
            raise TopologyError(f"link {self.name!r} connects {self.a!r} to itself")
        if isinstance(self.bandwidth, (int, float)) and self.bandwidth <= 0:
            raise TopologyError(f"link {self.name!r} has non-positive bandwidth")

    @property
    def is_inherited(self) -> bool:
        return self.bandwidth is None

    def mbps_at(self, time_s: float = 0.0) -> Optional[float]:
        """The link's own rate at ``time_s``; ``None`` for inherited links."""
        if self.bandwidth is None:
            return None
        if isinstance(self.bandwidth, BandwidthTrace):
            return self.bandwidth.sample_at(time_s)
        return float(self.bandwidth)


class Topology:
    """A validated nodes-and-links deployment description.

    Parameters
    ----------
    name:
        Short identifier; goes into fingerprints and derived condition names.
    nodes, links:
        The machines and wires, in declaration order (order matters: the first
        node of a tier is that tier's *primary* node — the one that runs
        non-tiled work and anchors the planning view).
    base_network:
        The :class:`NetworkCondition` that inherited links price against when
        the caller does not supply one.
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[NodeSpec],
        links: Sequence[LinkSpec],
        base_network: Optional[NetworkCondition] = None,
    ) -> None:
        self.name = name
        self.nodes: Dict[str, NodeSpec] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise TopologyError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.links: Dict[str, LinkSpec] = {}
        for link in links:
            if link.name in self.links:
                raise TopologyError(f"duplicate link name {link.name!r}")
            self.links[link.name] = link
        self.base_network = base_network
        self._routes: Dict[Tuple[str, str], List[str]] = {}
        self._adjacency_cache: Optional[Dict[str, List[Tuple[str, str]]]] = None
        self._fingerprint: Optional[Tuple] = None
        self.validate()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def nodes_of_tier(self, tier: str) -> List[NodeSpec]:
        return [node for node in self.nodes.values() if node.tier == tier]

    def primary(self, tier: str) -> NodeSpec:
        """The first-declared node of a tier (runs non-tiled work)."""
        for node in self.nodes.values():
            if node.tier == tier:
                return node
        raise TopologyError(f"topology {self.name!r} has no {tier!r} node")

    def tier_price_per_s(self, tier: str) -> float:
        """The $/s of a tier's primary node (the planning view of pricing)."""
        return self.primary(tier).resolved_price_per_s

    @property
    def has_traced_links(self) -> bool:
        """True when any link's bandwidth drifts on its own trace."""
        return any(
            isinstance(link.bandwidth, BandwidthTrace) for link in self.links.values()
        )

    def endpoint_nodes(self, endpoint: str) -> List[str]:
        """The node names an endpoint label resolves to (name or tier alias)."""
        if endpoint in self.nodes:
            return [endpoint]
        if endpoint in NODE_TIERS:
            return [node.name for node in self.nodes.values() if node.tier == endpoint]
        return []

    def link_tier_pair(self, link: LinkSpec) -> Tuple[str, str]:
        """The tiers of a link's two endpoints (alias endpoints are their tier)."""
        tiers = []
        for endpoint in (link.a, link.b):
            if endpoint in self.nodes:
                tiers.append(self.nodes[endpoint].tier)
            else:
                tiers.append(endpoint)
        return tiers[0], tiers[1]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, min_model_bytes: Optional[int] = None) -> None:
        """Check structural soundness; optionally check memory feasibility.

        ``min_model_bytes`` — the full footprint (weights + peak activation)
        of the *smallest* model a deployment must serve — turns the dormant
        :attr:`HardwareSpec.memory_gb` into a hard constraint: if even the
        roomiest compute node cannot hold that model whole, the deployment
        is rejected with :class:`InsufficientMemoryError` before any request
        is planned.
        """
        if not self.name:
            raise TopologyError("topology needs a non-empty name")
        for tier in COMPUTE_TIERS:
            if not self.nodes_of_tier(tier):
                raise TopologyError(f"topology {self.name!r} needs at least one {tier} node")
        for link in self.links.values():
            side_a = self.endpoint_nodes(link.a)
            side_b = self.endpoint_nodes(link.b)
            if not side_a:
                raise TopologyError(f"link {link.name!r} has dangling endpoint {link.a!r}")
            if not side_b:
                raise TopologyError(f"link {link.name!r} has dangling endpoint {link.b!r}")
            if set(side_a) & set(side_b):
                raise TopologyError(f"link {link.name!r} connects a node set to itself")
            if link.is_inherited:
                tier_a, tier_b = self.link_tier_pair(link)
                pair = {tier_a, tier_b}
                if not (pair <= set(COMPUTE_TIERS)) or len(pair) != 2:
                    raise TopologyError(
                        f"link {link.name!r} inherits its bandwidth but does not "
                        f"connect two distinct compute tiers ({tier_a!r}, {tier_b!r})"
                    )
        # Reachability: planning and execution both need device -> edge,
        # edge -> cloud and device -> cloud paths over the declared wires.
        for device in self.nodes_of_tier("device"):
            reachable = self._reachable_from(device.name)
            if not any(self.nodes[n].tier == "cloud" for n in reachable):
                raise TopologyError(f"cloud is unreachable from {device.name!r}")
            if not any(self.nodes[n].tier == "edge" for n in reachable):
                raise TopologyError(f"edge is unreachable from {device.name!r}")
        edge_primary = self.primary("edge")
        reachable = self._reachable_from(edge_primary.name)
        if not any(self.nodes[n].tier == "cloud" for n in reachable):
            raise TopologyError(f"cloud is unreachable from {edge_primary.name!r}")
        if min_model_bytes is not None:
            roomiest = max(
                (
                    node
                    for tier in COMPUTE_TIERS
                    for node in self.nodes_of_tier(tier)
                    if node.hardware is not None
                ),
                key=lambda node: node.hardware.memory_gb,
            )
            capacity = int(roomiest.hardware.memory_gb * (1024**3))
            if capacity < min_model_bytes:
                raise InsufficientMemoryError(
                    f"topology {self.name!r} cannot serve the workload: its "
                    f"roomiest compute node {roomiest.name!r} holds "
                    f"{roomiest.hardware.memory_gb:.3f} GiB but the cheapest "
                    f"single-model placement needs "
                    f"{min_model_bytes / (1024**3):.3f} GiB"
                )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _adjacency(self) -> Dict[str, List[Tuple[str, str]]]:
        # Nodes and links are immutable after construction, so the expanded
        # adjacency (tier aliases fanned out to node pairs) is built once.
        if self._adjacency_cache is not None:
            return self._adjacency_cache
        adjacency: Dict[str, List[Tuple[str, str]]] = {name: [] for name in self.nodes}
        for link in self.links.values():
            for src in self.endpoint_nodes(link.a):
                for dst in self.endpoint_nodes(link.b):
                    adjacency[src].append((dst, link.name))
                    adjacency[dst].append((src, link.name))
        self._adjacency_cache = adjacency
        return adjacency

    def _reachable_from(self, start: str) -> List[str]:
        adjacency = self._adjacency()
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor, _ in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return sorted(seen)

    def route(
        self,
        src: str,
        dst: str,
        down_nodes: FrozenSet[str] = frozenset(),
        down_links: FrozenSet[str] = frozenset(),
    ) -> List[str]:
        """Fewest-hop path of link names from node ``src`` to node ``dst``.

        Deterministic: ties are broken by link/node declaration order.
        ``down_nodes``/``down_links`` mask failed components: the search never
        crosses a down link nor routes *through* a down node (relays
        included), and raises :class:`RouteUnavailableError` when the masked
        graph leaves the destination unreachable.
        """
        masked = bool(down_nodes) or bool(down_links)
        key: Tuple = (src, dst)
        if masked:
            key = (src, dst, tuple(sorted(down_nodes)), tuple(sorted(down_links)))
        if key in self._routes:
            return self._routes[key]
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise TopologyError(f"unknown node {missing!r} in topology {self.name!r}")
        if src in down_nodes or dst in down_nodes:
            raise RouteUnavailableError(
                f"no route from {src!r} to {dst!r}: an endpoint is down"
            )
        if src == dst:
            self._routes[key] = []
            return []
        adjacency = self._adjacency()
        parents: Dict[str, Tuple[str, str]] = {}
        queue = deque([src])
        seen = {src}
        while queue:
            current = queue.popleft()
            for neighbor, link_name in adjacency[current]:
                if neighbor in seen:
                    continue
                if masked and (link_name in down_links or neighbor in down_nodes):
                    continue
                seen.add(neighbor)
                parents[neighbor] = (current, link_name)
                if neighbor == dst:
                    queue.clear()
                    break
                queue.append(neighbor)
        if dst not in parents:
            raise RouteUnavailableError(
                f"no route from {src!r} to {dst!r} in topology {self.name!r}"
                + (" under the current failures" if masked else "")
            )
        hops: List[str] = []
        cursor = dst
        while cursor != src:
            cursor, link_name = parents[cursor]
            hops.append(link_name)
        hops.reverse()
        self._routes[key] = hops
        return hops

    # ------------------------------------------------------------------ #
    # Failure masking
    # ------------------------------------------------------------------ #
    def masked(
        self,
        down_nodes: FrozenSet[str] = frozenset(),
        down_links: FrozenSet[str] = frozenset(),
    ) -> "Topology":
        """The degraded deployment with failed nodes/links removed.

        Down nodes disappear (taking any link that names them directly), down
        links disappear; tier-alias links survive as long as their tier still
        has live members.  The result is a fully validated topology — its
        :meth:`fingerprint` keys degraded plans separately from healthy ones
        in the plan cache — and construction raises :class:`TopologyError`
        when the degraded shape can no longer serve (a whole compute tier
        down, or the cloud unreachable), which the serving layer maps to
        failed requests.
        """
        if not down_nodes and not down_links:
            return self
        nodes = [node for node in self.nodes.values() if node.name not in down_nodes]
        links = [
            link
            for link in self.links.values()
            if link.name not in down_links
            and link.a not in down_nodes
            and link.b not in down_nodes
        ]
        return Topology(self.name, nodes, links, base_network=self.base_network)

    # ------------------------------------------------------------------ #
    # Planning view
    # ------------------------------------------------------------------ #
    def hop_mbps(
        self,
        link: LinkSpec,
        at_s: float = 0.0,
        base: Optional[NetworkCondition] = None,
    ) -> float:
        """The rate of one link at ``at_s``, resolving inherited bandwidths."""
        own = link.mbps_at(at_s)
        if own is not None:
            return own
        base = base or self.base_network
        if base is None:
            raise TopologyError(
                f"link {link.name!r} inherits its bandwidth but no base "
                f"NetworkCondition was provided"
            )
        tier_a, tier_b = self.link_tier_pair(link)
        return base.bandwidth_mbps(tier_a, tier_b)

    def link_bandwidths_at(
        self, at_s: float = 0.0, base: Optional[NetworkCondition] = None
    ) -> Dict[str, float]:
        """Every link's effective rate at ``at_s``, keyed by link name."""
        return {name: self.hop_mbps(link, at_s, base) for name, link in self.links.items()}

    def planning_condition(
        self,
        base: Optional[NetworkCondition] = None,
        at_s: float = 0.0,
        source: Optional[str] = None,
    ) -> NetworkCondition:
        """Reduce the topology to the tier-pair view the planners consume.

        The effective bandwidth of a tier pair is the store-and-forward rate
        along the route between the two tiers' representative nodes:
        ``1 / sum(1 / rate_hop)`` (serial hops add transmission times).
        ``source`` anchors the device tier at that node instead of the
        primary device, so a fleet member on its own (slower) uplink is
        planned against *its* wires.  When every tier pair is one inherited
        hop — the canonical testbed — the base condition is returned
        unchanged, which keeps the original fixed-shape API bit-identical.
        """
        base = base or self.base_network
        reps = {tier: self.primary(tier).name for tier in COMPUTE_TIERS}
        if source is not None:
            node = self.nodes.get(source)
            if node is None or node.tier != "device":
                raise TopologyError(
                    f"planning source {source!r} is not a device node of "
                    f"topology {self.name!r}"
                )
            reps["device"] = source
        pair_routes = {
            ("device", "edge"): self.route(reps["device"], reps["edge"]),
            ("edge", "cloud"): self.route(reps["edge"], reps["cloud"]),
            ("device", "cloud"): self.route(reps["device"], reps["cloud"]),
        }
        if base is not None and all(
            len(hops) == 1 and self.links[hops[0]].is_inherited
            for hops in pair_routes.values()
        ):
            return base
        effective = {}
        for pair, hops in pair_routes.items():
            if not hops:
                raise TopologyError(f"tiers {pair} map to the same node; cannot plan")
            rates = [self.hop_mbps(self.links[h], at_s, base) for h in hops]
            effective[pair] = 1.0 / sum(1.0 / rate for rate in rates)
        return NetworkCondition(
            name=f"{self.name}",
            device_edge_mbps=effective[("device", "edge")],
            edge_cloud_mbps=effective[("edge", "cloud")],
            device_cloud_mbps=effective[("device", "cloud")],
        )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Tuple:
        """Hashable signature of everything that shapes plans and schedules.

        Memoized: nodes and links are immutable after construction, and plan
        caches consult the fingerprint once per request.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        # astuple recurses into nested dataclasses (the energy model), so any
        # field added to HardwareSpec joins the fingerprint automatically —
        # the explicit field list this replaced silently dropped new fields.
        node_part = tuple(
            (
                node.name,
                node.tier,
                node.price_per_s,
                None if node.hardware is None else astuple(node.hardware),
            )
            for node in self.nodes.values()
        )
        link_part = []
        for link in self.links.values():
            bandwidth = link.bandwidth
            if isinstance(bandwidth, BandwidthTrace):
                signature: object = ("trace", tuple(tuple(s) for s in bandwidth.samples))
            elif bandwidth is None:
                signature = "inherit"
            else:
                signature = float(bandwidth)
            link_part.append((link.name, link.a, link.b, signature))
        self._fingerprint = (self.name, node_part, tuple(link_part))
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Topology) and self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, {len(self.nodes)} nodes, {len(self.links)} links)"

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to the JSON dialect :meth:`from_json` accepts."""
        payload: Dict[str, object] = {"name": self.name}
        if self.base_network is not None:
            condition = self.base_network
            try:
                registered = get_condition(condition.name)
            except KeyError:
                registered = None
            if registered == condition:
                payload["network"] = condition.name
            else:
                payload["network"] = {
                    "name": condition.name,
                    "device_edge_mbps": condition.device_edge_mbps,
                    "edge_cloud_mbps": condition.edge_cloud_mbps,
                    "device_cloud_mbps": condition.device_cloud_mbps,
                }
        nodes = []
        for node in self.nodes.values():
            entry: Dict[str, object] = {"name": node.name, "tier": node.tier}
            if node.hardware is not None:
                preset = hardware_preset_name(node.hardware)
                entry["hardware"] = preset or hardware_to_json(node.hardware)
            if node.price_per_s is not None:
                entry["price_per_s"] = node.price_per_s
            nodes.append(entry)
        links = []
        for link in self.links.values():
            entry = {"name": link.name, "between": [link.a, link.b]}
            if isinstance(link.bandwidth, BandwidthTrace):
                entry["trace"] = [list(sample) for sample in link.bandwidth.samples]
            elif link.bandwidth is not None:
                entry["mbps"] = float(link.bandwidth)
            links.append(entry)
        payload["nodes"] = nodes
        payload["links"] = links
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(
        cls, data: Union[str, Mapping], network: Optional[NetworkCondition | str] = None
    ) -> "Topology":
        """Parse a topology from a JSON string or an already-decoded mapping.

        A topology document is a complete artifact: when it declares a
        ``"network"``, that base condition wins; ``network`` is only the
        fallback for documents that leave it out.  Inherited links need one
        of the two to be present only when they are actually priced.
        """
        if isinstance(data, str):
            try:
                payload = json.loads(data)
            except json.JSONDecodeError as error:
                raise TopologyError(f"invalid topology JSON: {error}") from None
        else:
            payload = dict(data)
        if not isinstance(payload, dict):
            raise TopologyError("topology JSON must be an object")

        base: Optional[NetworkCondition] = None
        raw_network = payload.get("network", network)
        if isinstance(raw_network, NetworkCondition):
            base = raw_network
        elif isinstance(raw_network, str):
            base = get_condition(raw_network)
        elif isinstance(raw_network, Mapping):
            base = NetworkCondition(
                name=str(raw_network.get("name", "custom")),
                device_edge_mbps=float(raw_network["device_edge_mbps"]),
                edge_cloud_mbps=float(raw_network["edge_cloud_mbps"]),
                device_cloud_mbps=float(raw_network["device_cloud_mbps"]),
            )

        nodes = []
        for entry in payload.get("nodes", []):
            hardware = entry.get("hardware")
            if isinstance(hardware, str):
                hardware = get_hardware(hardware)
            elif isinstance(hardware, Mapping):
                hardware = hardware_from_json(hardware)
            price = entry.get("price_per_s")
            nodes.append(
                NodeSpec(
                    name=entry["name"],
                    tier=entry["tier"],
                    hardware=hardware,
                    price_per_s=None if price is None else float(price),
                )
            )

        links = []
        for entry in payload.get("links", []):
            between = entry.get("between")
            if not isinstance(between, (list, tuple)) or len(between) != 2:
                raise TopologyError(
                    f"link {entry.get('name')!r} needs a two-element 'between' list"
                )
            bandwidth: Bandwidth = None
            if "trace" in entry:
                bandwidth = BandwidthTrace(
                    samples=[(float(t), float(v)) for t, v in entry["trace"]]
                )
            elif "mbps" in entry:
                bandwidth = float(entry["mbps"])
            links.append(
                LinkSpec(name=entry["name"], a=between[0], b=between[1], bandwidth=bandwidth)
            )

        return cls(
            name=str(payload.get("name", "custom")),
            nodes=nodes,
            links=links,
            base_network=base,
        )

    # ------------------------------------------------------------------ #
    # Builders / presets
    # ------------------------------------------------------------------ #
    @classmethod
    def three_tier(
        cls,
        num_edge_nodes: int = 1,
        network: NetworkCondition | str = "wifi",
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Topology":
        """The paper's canonical testbed of section IV, as a topology.

        All three wires inherit their rates from ``network``, so planning,
        execution and plan-cache keys are bit-identical to the original
        fixed-shape ``Cluster.build`` API.
        """
        if num_edge_nodes <= 0:
            raise TopologyError("num_edge_nodes must be positive")
        condition = get_condition(network) if isinstance(network, str) else network
        nodes = [NodeSpec("device-0", "device", device_hardware)]
        nodes += [
            NodeSpec(f"edge-{i}", "edge", edge_hardware) for i in range(num_edge_nodes)
        ]
        nodes.append(NodeSpec("cloud-0", "cloud", cloud_hardware))
        return cls("three_tier", nodes, canonical_links(), base_network=condition)

    @classmethod
    def multi_device(
        cls,
        num_devices: int = 3,
        num_edge_nodes: int = 4,
        network: NetworkCondition | str = "wifi",
        device_mbps: Optional[Sequence[float]] = None,
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Topology":
        """A fleet of devices sharing one edge LAN and one cloud.

        Each device owns its *own* uplink into the LAN and its own direct
        cloud link (default rates: the Table III values of ``network``), so
        per-device congestion is modelled per wire instead of on one shared
        tier-pair number.
        """
        if num_devices <= 0:
            raise TopologyError("num_devices must be positive")
        if num_edge_nodes <= 0:
            raise TopologyError("num_edge_nodes must be positive")
        condition = get_condition(network) if isinstance(network, str) else network
        if device_mbps is not None and len(device_mbps) != num_devices:
            raise TopologyError("device_mbps must have one rate per device")
        nodes = [NodeSpec(f"device-{i}", "device", device_hardware) for i in range(num_devices)]
        nodes += [NodeSpec(f"edge-{i}", "edge", edge_hardware) for i in range(num_edge_nodes)]
        nodes.append(NodeSpec("cloud-0", "cloud", cloud_hardware))
        links = []
        for i in range(num_devices):
            lan_rate = device_mbps[i] if device_mbps else condition.device_edge_mbps
            links.append(LinkSpec(f"device-{i}-lan", f"device-{i}", "edge", lan_rate))
            links.append(
                LinkSpec(
                    f"device-{i}-cloud", f"device-{i}", "cloud", condition.device_cloud_mbps
                )
            )
        links.append(LinkSpec("edge-cloud", "edge", "cloud"))
        return cls("multi_device", nodes, links, base_network=condition)

    @classmethod
    def hetero_edge(
        cls,
        network: NetworkCondition | str = "wifi",
        speed_factors: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Topology":
        """An edge rack of unequal machines (same wires as the canonical testbed).

        Each edge node's compute throughput is ``edge_hardware`` scaled by the
        matching factor; the serving engine slows that node's share of VSM
        tile stacks accordingly.
        """
        if not speed_factors:
            raise TopologyError("need at least one edge speed factor")
        condition = get_condition(network) if isinstance(network, str) else network
        nodes = [NodeSpec("device-0", "device", device_hardware)]
        for i, factor in enumerate(speed_factors):
            hardware = edge_hardware if factor == 1.0 else edge_hardware.scaled(factor)
            nodes.append(NodeSpec(f"edge-{i}", "edge", hardware))
        nodes.append(NodeSpec("cloud-0", "cloud", cloud_hardware))
        return cls("hetero_edge", nodes, canonical_links(), base_network=condition)

    @classmethod
    def device_gateway(
        cls,
        network: NetworkCondition | str = "wifi",
        num_edge_nodes: int = 2,
        device_gateway_mbps: Optional[float] = None,
        gateway_edge_mbps: Optional[float] = None,
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Topology":
        """A multi-hop chain: device -> gateway -> edge -> cloud.

        The gateway is a non-computing relay (a home router, a cell tower):
        every byte leaving the device crosses two wires before reaching the
        edge and three before the cloud, so the planning view's effective
        tier-pair rates are the store-and-forward harmonic sums.
        """
        if num_edge_nodes <= 0:
            raise TopologyError("num_edge_nodes must be positive")
        condition = get_condition(network) if isinstance(network, str) else network
        nodes = [
            NodeSpec("device-0", "device", device_hardware),
            NodeSpec("gateway-0", "relay"),
        ]
        nodes += [NodeSpec(f"edge-{i}", "edge", edge_hardware) for i in range(num_edge_nodes)]
        nodes.append(NodeSpec("cloud-0", "cloud", cloud_hardware))
        links = [
            LinkSpec(
                "device-gateway",
                "device-0",
                "gateway-0",
                device_gateway_mbps
                if device_gateway_mbps is not None
                else condition.device_edge_mbps,
            ),
            LinkSpec(
                "gateway-edge",
                "gateway-0",
                "edge",
                gateway_edge_mbps
                if gateway_edge_mbps is not None
                else condition.device_edge_mbps * 2,
            ),
            LinkSpec("edge-cloud", "edge", "cloud"),
        ]
        return cls("device_gateway", nodes, links, base_network=condition)


# --------------------------------------------------------------------------- #
# Preset registry
# --------------------------------------------------------------------------- #
TOPOLOGY_PRESETS: Dict[str, Callable[..., Topology]] = {
    "three_tier": Topology.three_tier,
    "multi_device": Topology.multi_device,
    "hetero_edge": Topology.hetero_edge,
    "device_gateway": Topology.device_gateway,
}


def list_topologies() -> List[str]:
    """Names of the built-in topology presets."""
    return list(TOPOLOGY_PRESETS)


def get_topology(name: str, **kwargs) -> Topology:
    """Build a preset topology by name (kwargs forwarded to the builder)."""
    try:
        factory = TOPOLOGY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown topology preset {name!r}; available: {list_topologies()}"
        ) from None
    return factory(**kwargs)


def load_topology(
    spec: Union[str, Topology],
    network: Optional[NetworkCondition | str] = None,
) -> Topology:
    """Resolve a topology from a preset name, a JSON file path, or pass through.

    This is what the CLI's ``--topology`` flag accepts: ``hetero_edge`` (a
    preset, built under ``network``) or ``deployments/fleet.json`` (a file in
    the JSON dialect of :meth:`Topology.to_json`).
    """
    if isinstance(spec, Topology):
        return spec
    if spec in TOPOLOGY_PRESETS:
        if network is not None:
            return get_topology(spec, network=network)
        return get_topology(spec)
    if os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as handle:
            return Topology.from_json(handle.read(), network=network)
    raise KeyError(
        f"unknown topology {spec!r}: not a preset ({list_topologies()}) "
        f"and not a readable JSON file"
    )
