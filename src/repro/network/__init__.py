"""Inter-tier communication substrate.

Models the links of the edge-computing deployment of section IV: the device
and the edge nodes share a LAN (5 GHz Wi-Fi), while both reach the cloud node
through a backbone link whose technology (Wi-Fi, 4G, 5G, or optical fibre) is
the experimental variable of the evaluation.  The average uplink rates come
from Table III of the paper.
"""

from repro.network.link import NetworkLink, SharedLink, transfer_seconds
from repro.network.conditions import (
    BandwidthTrace,
    NetworkCondition,
    NETWORK_CONDITIONS,
    TABLE_III_UPLINK_MBPS,
    get_condition,
    list_conditions,
)
from repro.network.topology import (
    LinkSpec,
    NodeSpec,
    RouteUnavailableError,
    Topology,
    TopologyError,
    TOPOLOGY_PRESETS,
    get_topology,
    list_topologies,
    load_topology,
)
from repro.network.faults import (
    FaultEvent,
    FaultSchedule,
    FaultScheduleError,
    LinkDown,
    LinkUp,
    NodeDown,
    NodeUp,
    load_fault_schedule,
)

__all__ = [
    "BandwidthTrace",
    "FaultEvent",
    "FaultSchedule",
    "FaultScheduleError",
    "LinkDown",
    "LinkSpec",
    "LinkUp",
    "NETWORK_CONDITIONS",
    "NetworkCondition",
    "NetworkLink",
    "NodeDown",
    "NodeSpec",
    "NodeUp",
    "RouteUnavailableError",
    "SharedLink",
    "TABLE_III_UPLINK_MBPS",
    "TOPOLOGY_PRESETS",
    "Topology",
    "TopologyError",
    "get_condition",
    "get_topology",
    "list_conditions",
    "list_topologies",
    "load_fault_schedule",
    "load_topology",
    "transfer_seconds",
]
