"""Online execution engine — a simulated device/edge/cloud substrate.

The paper implements the online engine with gRPC processes on a physical
testbed.  Here the engine is a discrete-event simulation: compute nodes with
per-layer latencies (from the same profiles HPA uses), inter-tier links with
the Table III bandwidths, explicit tensor-transfer messages, and a scheduler
that executes a placement plan (optionally with VSM fused-tile parallelism on
several edge nodes) while respecting data dependencies and node availability.

The simulation produces the quantities the paper reports: end-to-end inference
latency, per-tier processing time and per-image bytes shipped to the cloud.
"""

from repro.runtime.node import ComputeNode
from repro.runtime.cluster import Cluster
from repro.runtime.messages import TensorTransfer
from repro.runtime.simulator import ExecutionReport, TimelineEvent
from repro.runtime.executor import DistributedExecutor
from repro.runtime.scheduler import (
    BatchingScheduler,
    DeadlineScheduler,
    FifoScheduler,
    Scheduler,
    get_scheduler,
)
from repro.runtime.serving import (
    BatchRecord,
    RequestRecord,
    ServingReport,
    ServingRequest,
    ServingSimulator,
)
from repro.runtime.workload import Request, Workload

__all__ = [
    "BatchRecord",
    "BatchingScheduler",
    "Cluster",
    "ComputeNode",
    "DeadlineScheduler",
    "DistributedExecutor",
    "ExecutionReport",
    "FifoScheduler",
    "Request",
    "RequestRecord",
    "Scheduler",
    "ServingReport",
    "ServingRequest",
    "ServingSimulator",
    "TensorTransfer",
    "TimelineEvent",
    "Workload",
    "get_scheduler",
]
