"""Streaming (online) statistics for million-request serving runs.

The default :class:`~repro.runtime.serving.ServingReport` keeps one
:class:`~repro.runtime.serving.RequestRecord` per request and computes every
aggregate by scanning the record list.  That is the right trade at golden-trace
scale (tens of requests, full timelines pinned bit-exactly) and the wrong one
at benchmark scale: a million records with per-event timelines cost gigabytes
and O(n log n) percentile sorts.  This module provides the streaming
counterpart the engine accumulates into when ``stream_stats`` is enabled:

:class:`OnlineStats`
    Exact running count / sum / min / max / mean (one float add per sample —
    summation order is the engine's completion order, so results are
    deterministic run to run).

:class:`StreamingPercentiles`
    Percentile estimator that is *exact below a threshold* (it keeps the raw
    sample list, so small runs — including every golden workload — report
    bit-identical percentiles to the record-scanning path) and degrades to a
    seeded reservoir sample beyond it (Vitter's Algorithm R with a fixed
    ``random.Random`` seed, so large runs stay deterministic too).

:class:`ServingStats`
    The full online mirror of a serving report's aggregates: terminal-status
    counts, SLO attainment, latency mean/percentiles (overall, per priority
    class, and over retried requests), queueing delay, backbone bytes and the
    makespan window.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Sample-count threshold under which percentiles stay exact by default.
#: Chosen well above every golden/test workload and small enough that the
#: exact list is never the memory bottleneck.
DEFAULT_EXACT_THRESHOLD = 4096

#: Reservoir size once an estimator degrades past its exact threshold.
DEFAULT_RESERVOIR_SIZE = 4096


class OnlineStats:
    """Running count / total / extrema of a float stream (O(1) memory)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 on an empty stream, like the report helpers)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class StreamingPercentiles:
    """Percentile estimator: exact at small N, seeded reservoir beyond.

    Up to ``exact_threshold`` samples the estimator keeps every value and its
    percentiles are *bit-identical* to sorting the full sample (it delegates
    to :func:`repro.experiments.reporting.percentile`).  Past the threshold
    it switches to a fixed-size reservoir (Algorithm R) driven by a
    ``random.Random(seed)``, so the estimate is deterministic for a given
    insertion order and converges at the usual O(1/sqrt(reservoir)) rank
    error.
    """

    __slots__ = ("exact_threshold", "reservoir_size", "_values", "_rng", "count")

    def __init__(
        self,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        seed: int = 0,
    ) -> None:
        if exact_threshold < 0:
            raise ValueError("exact_threshold cannot be negative")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.exact_threshold = max(exact_threshold, reservoir_size)
        self.reservoir_size = reservoir_size
        self._values: List[float] = []
        self._rng = random.Random(seed)
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if self.count <= self.exact_threshold:
            self._values.append(value)
            return
        if len(self._values) > self.reservoir_size:
            # First sample past the threshold: shrink the exact list into a
            # uniform reservoir (Fisher-Yates prefix of a seeded shuffle).
            self._rng.shuffle(self._values)
            del self._values[self.reservoir_size :]
        slot = self._rng.randrange(self.count)
        if slot < self.reservoir_size:
            self._values[slot] = value

    @property
    def is_exact(self) -> bool:
        """True while no sample has been discarded."""
        return self.count <= self.exact_threshold

    @property
    def sample(self) -> List[float]:
        """The retained values (the full stream while :attr:`is_exact`)."""
        return list(self._values)

    def percentile(self, q: float, interpolation: str = "linear") -> float:
        """The ``q``-th percentile of the stream (0.0 when empty)."""
        from repro.experiments.reporting import percentile

        if not self._values:
            return 0.0
        return percentile(self._values, q, interpolation=interpolation)

    def percentiles(
        self,
        quantiles: Sequence[float] = (50.0, 95.0, 99.0),
        interpolation: str = "linear",
    ) -> Dict[str, float]:
        """Named percentile summary matching the report's shape."""
        from repro.experiments.reporting import latency_percentiles

        if not self._values:
            return {f"p{q:g}": 0.0 for q in quantiles}
        return latency_percentiles(
            self._values, quantiles, interpolation=interpolation
        )


class ServingStats:
    """Online mirror of a :class:`ServingReport`'s aggregates.

    Fed one terminal request at a time by the serving engine (in completion
    order); the report's properties read these counters instead of scanning
    records when the engine ran with ``stream_stats``.
    """

    __slots__ = (
        "num_requests",
        "num_completed",
        "num_failed",
        "num_rejected",
        "num_retried",
        "num_met_slo",
        "has_slos",
        "bytes_to_cloud",
        "latency",
        "queueing",
        "percentiles",
        "retried_percentiles",
        "by_class",
        "arrival_min",
        "completion_max",
        "_exact_threshold",
    )

    def __init__(self, exact_threshold: int = DEFAULT_EXACT_THRESHOLD) -> None:
        self.num_requests = 0
        self.num_completed = 0
        self.num_failed = 0
        self.num_rejected = 0
        self.num_retried = 0
        self.num_met_slo = 0
        self.has_slos = False
        self.bytes_to_cloud = 0
        self.latency = OnlineStats()
        self.queueing = OnlineStats()
        self.percentiles = StreamingPercentiles(exact_threshold)
        self.retried_percentiles = StreamingPercentiles(exact_threshold)
        self.by_class: Dict[int, StreamingPercentiles] = {}
        self.arrival_min = math.inf
        self.completion_max = -math.inf
        self._exact_threshold = exact_threshold

    def add(
        self,
        status: str,
        arrival_s: float,
        completion_s: float,
        retries: int,
        slo_ms: Optional[float],
        priority: int,
        ideal_latency_s: Optional[float],
        bytes_to_cloud: int,
    ) -> None:
        """Account one terminal request (mirrors ``RequestRecord`` semantics)."""
        self.num_requests += 1
        if arrival_s < self.arrival_min:
            self.arrival_min = arrival_s
        if completion_s > self.completion_max:
            self.completion_max = completion_s
        if slo_ms is not None:
            self.has_slos = True
        if retries > 0:
            self.num_retried += 1
        self.bytes_to_cloud += bytes_to_cloud
        if status == "rejected":
            self.num_rejected += 1
            return
        if status == "failed":
            self.num_failed += 1
            return
        self.num_completed += 1
        latency = completion_s - arrival_s
        if slo_ms is None or latency <= slo_ms / 1e3 + 1e-12:
            self.num_met_slo += 1
        self.latency.add(latency)
        self.percentiles.add(latency)
        estimator = self.by_class.get(priority)
        if estimator is None:
            estimator = self.by_class[priority] = StreamingPercentiles(
                self._exact_threshold
            )
        estimator.add(latency)
        if retries > 0:
            self.retried_percentiles.add(latency)
        if ideal_latency_s is not None and retries == 0:
            self.queueing.add(latency - ideal_latency_s)

    @property
    def makespan_window(self) -> Tuple[float, float]:
        """``(start, end)`` of the observed run, ``(0, 0)`` when empty."""
        if self.num_requests == 0:
            return 0.0, 0.0
        return self.arrival_min, self.completion_max
