"""Timeline bookkeeping for the discrete-event execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.placement import Tier
from repro.runtime.messages import TensorTransfer


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled activity on one node (a layer execution or a tile task)."""

    node: str
    tier: Tier
    label: str
    kind: str  # "compute" | "gather"
    start_s: float
    end_s: float
    #: Request the event belongs to; ``None`` for one-shot simulations.
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("event ends before it starts")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ExecutionReport:
    """Result of simulating one inference through a partitioned DNN."""

    model_name: str
    end_to_end_latency_s: float
    events: List[TimelineEvent] = field(default_factory=list)
    transfers: List[TensorTransfer] = field(default_factory=list)
    #: Request this report belongs to; ``None`` for one-shot simulations.
    #: Under the serving engine event/transfer timestamps are absolute
    #: simulation times while ``end_to_end_latency_s`` stays relative to the
    #: request's arrival.
    request_id: Optional[str] = None

    # ------------------------------------------------------------------ #
    def node_busy_seconds(self) -> Dict[str, float]:
        """Total compute time charged to each node."""
        busy: Dict[str, float] = {}
        for event in self.events:
            busy[event.node] = busy.get(event.node, 0.0) + event.duration_s
        return busy

    def tier_busy_seconds(self) -> Dict[Tier, float]:
        """Total compute time charged to each tier (Table II's quantity)."""
        busy: Dict[Tier, float] = {tier: 0.0 for tier in Tier}
        for event in self.events:
            busy[event.tier] += event.duration_s
        return busy

    def tier_makespan_seconds(self) -> Dict[Tier, float]:
        """Wall-clock span of each tier's activity (accounts for parallelism)."""
        spans: Dict[Tier, float] = {tier: 0.0 for tier in Tier}
        by_tier: Dict[Tier, List[TimelineEvent]] = {tier: [] for tier in Tier}
        for event in self.events:
            by_tier[event.tier].append(event)
        for tier, events in by_tier.items():
            if events:
                spans[tier] = max(e.end_s for e in events) - min(e.start_s for e in events)
        return spans

    @property
    def transfer_seconds(self) -> float:
        return sum(t.duration_s for t in self.transfers)

    @property
    def bytes_to_cloud(self) -> int:
        """Backbone traffic entering the cloud (Fig. 13's metric)."""
        return sum(t.payload_bytes for t in self.transfers if t.crosses_backbone)

    @property
    def bytes_device_to_edge(self) -> int:
        return sum(
            t.payload_bytes
            for t in self.transfers
            if t.source_tier == Tier.DEVICE and t.destination_tier == Tier.EDGE
        )

    @property
    def megabits_to_cloud(self) -> float:
        return self.bytes_to_cloud * 8.0 / 1e6

    def summary(self) -> str:
        """Multi-line human-readable report."""
        busy = self.tier_busy_seconds()
        lines = [
            f"{self.model_name}: end-to-end {self.end_to_end_latency_s * 1e3:.2f} ms",
            f"  device busy {busy[Tier.DEVICE] * 1e3:.2f} ms, "
            f"edge busy {busy[Tier.EDGE] * 1e3:.2f} ms, "
            f"cloud busy {busy[Tier.CLOUD] * 1e3:.2f} ms",
            f"  transfers {self.transfer_seconds * 1e3:.2f} ms, "
            f"to-cloud {self.megabits_to_cloud:.3f} Mb",
        ]
        return "\n".join(lines)
