"""The simulated deployment, realized from a declarative :class:`Topology`.

Historically this module hardcoded the paper's testbed shape (one device, N
identical edge nodes, one cloud, three tier-pair wires).  The deployment is
now described by a :class:`~repro.network.topology.Topology` — arbitrary named
nodes and links — and the :class:`Cluster` is its live realization: one
:class:`~repro.runtime.node.ComputeNode` per compute node, one stateful
:class:`~repro.network.link.SharedLink` per declared wire (keyed by link id,
not tier pair), plus routing and per-hop pricing for the engines.

:meth:`Cluster.build` keeps the original fixed-shape constructor as a shim
over :meth:`Topology.three_tier`, bit-identical to the pre-topology runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.placement import Tier
from repro.network.conditions import BandwidthTrace, NetworkCondition, get_condition
from repro.network.link import MBPS_TO_BYTES_PER_SECOND, SharedLink, transfer_seconds
from repro.network.topology import NodeSpec, Topology, canonical_links
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, HardwareSpec, RASPBERRY_PI_4
from repro.runtime.node import ComputeNode


def _condition_divisor(condition: NetworkCondition, tier_a, tier_b) -> float:
    """Bytes-per-second divisor of ``condition.transfer_seconds`` for a tier pair.

    ``0.0`` is the "always zero seconds" sentinel (same-tier with negligible
    intra-tier delay).  Ops mirror :meth:`NetworkCondition.transfer_seconds`
    exactly so precomputed pricing stays bit-identical.
    """
    src = getattr(tier_a, "value", tier_a)
    dst = getattr(tier_b, "value", tier_b)
    if src == dst:
        if condition.intra_tier_mbps > 0:
            return condition.intra_tier_mbps * 1e6 / 8.0
        return 0.0
    return condition.bandwidth_mbps(src, dst) * 1e6 / 8.0


@dataclass
class Cluster:
    """A live deployment: compute nodes, stateful links, and routing.

    Attributes
    ----------
    device:
        The *primary* device node (the default origin of requests).
    edge_nodes:
        The edge nodes, in topology declaration order; VSM spreads fused tile
        stacks across all of them.
    cloud:
        The primary cloud node.
    network:
        The planning-view network condition (tier-pair effective bandwidths
        derived from the topology's links).
    shared_links:
        The stateful contention wires, keyed by the topology's link ids.
    extra_devices, extra_clouds:
        Further device/cloud nodes of multi-device / multi-region topologies.
    topology:
        The declarative description this cluster realizes; synthesized from
        the node lists (canonical three-tier wires) when not given.
    """

    device: ComputeNode
    edge_nodes: List[ComputeNode]
    cloud: ComputeNode
    network: NetworkCondition
    shared_links: Dict[str, SharedLink] = field(default_factory=dict)
    extra_devices: List[ComputeNode] = field(default_factory=list)
    extra_clouds: List[ComputeNode] = field(default_factory=list)
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if not self.edge_nodes:
            raise ValueError("a cluster needs at least one edge node")
        if self.device.tier != Tier.DEVICE or self.cloud.tier != Tier.CLOUD:
            raise ValueError("device/cloud nodes must carry the matching tier")
        if any(node.tier != Tier.EDGE for node in self.edge_nodes):
            raise ValueError("edge nodes must carry the edge tier")
        if any(node.tier != Tier.DEVICE for node in self.extra_devices):
            raise ValueError("extra device nodes must carry the device tier")
        if any(node.tier != Tier.CLOUD for node in self.extra_clouds):
            raise ValueError("extra cloud nodes must carry the cloud tier")
        if self.topology is None:
            self.topology = self._synthesize_topology()
        if not self.shared_links:
            self.shared_links = {
                name: SharedLink(source=spec.a, destination=spec.b, link_id=name)
                for name, spec in self.topology.links.items()
            }
        self._nodes_by_name = {node.name: node for node in self.all_nodes}
        self._routes: Dict[tuple, List[SharedLink]] = {}
        #: Lazily built per-link pricing table (see :meth:`hop_seconds`):
        #: topology link specs never change, so the classification and the
        #: static/inherited divisors are computed once per link instead of
        #: once per hop.  Inherited entries memoize one divisor per network
        #: condition (id-keyed; the ref list pins the conditions so a
        #: recycled id can never alias a different one).
        self._hop_pricing: Dict[str, tuple] = {}
        #: Failure state: names of currently-down topology nodes and links.
        #: Mutated by the serving engine while it consumes a fault schedule;
        #: :meth:`reset` restores full health.
        self._down_nodes: set = set()
        self._down_links: set = set()
        self._apply_speed_factors()

    def _synthesize_topology(self) -> Topology:
        """Canonical three-wire topology over this cluster's actual nodes."""
        nodes = [
            NodeSpec(node.name, node.tier.value, node.hardware) for node in self.all_nodes
        ]
        return Topology("three_tier", nodes, canonical_links(), base_network=self.network)

    def _apply_speed_factors(self) -> None:
        """Throughput of every node relative to its tier's primary node."""
        for group in (self.devices, self.edge_nodes, self.cloud_nodes):
            reference = group[0].hardware.effective_gflops
            for node in group:
                node.speed_factor = node.hardware.effective_gflops / reference

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: NetworkCondition | str = "wifi",
        num_edge_nodes: int = 1,
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Cluster":
        """Build the paper's testbed of section IV: a Raspberry Pi 4 device,
        i7-8700 edge nodes and a 2080 Ti cloud server (Table II instead uses a
        Jetson Nano device; pass ``device_hardware=JETSON_NANO`` for that)."""
        if num_edge_nodes <= 0:
            raise ValueError("num_edge_nodes must be positive")
        topology = Topology.three_tier(
            num_edge_nodes=num_edge_nodes,
            network=network,
            device_hardware=device_hardware,
            edge_hardware=edge_hardware,
            cloud_hardware=cloud_hardware,
        )
        return cls.from_topology(topology)

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        network: Optional[NetworkCondition | str] = None,
    ) -> "Cluster":
        """Realize a declarative topology as a live cluster.

        ``network`` overrides the topology's base condition; inherited links
        price against it and the planning view is derived from it.
        """
        if isinstance(network, str):
            network = get_condition(network)
        base = network or topology.base_network
        condition = topology.planning_condition(base=base)
        by_tier: Dict[str, List[ComputeNode]] = {"device": [], "edge": [], "cloud": []}
        for spec in topology.nodes.values():
            if not spec.is_compute:
                continue
            by_tier[spec.tier].append(
                ComputeNode(
                    spec.name,
                    Tier(spec.tier),
                    spec.hardware,
                    price_per_s=spec.resolved_price_per_s,
                )
            )
        # Pin the topology's base so with_network()/scratch clusters keep
        # pricing inherited links consistently.  __post_init__ builds the
        # shared links from the realized topology.
        realized = Topology(
            topology.name,
            list(topology.nodes.values()),
            list(topology.links.values()),
            base_network=base,
        )
        return cls(
            device=by_tier["device"][0],
            edge_nodes=by_tier["edge"],
            cloud=by_tier["cloud"][0],
            network=condition,
            extra_devices=by_tier["device"][1:],
            extra_clouds=by_tier["cloud"][1:],
            topology=realized,
        )

    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> List[ComputeNode]:
        """All device nodes (the primary first)."""
        return [self.device, *self.extra_devices]

    @property
    def cloud_nodes(self) -> List[ComputeNode]:
        """All cloud nodes (the primary first)."""
        return [self.cloud, *self.extra_clouds]

    @property
    def all_nodes(self) -> List[ComputeNode]:
        return [*self.devices, *self.edge_nodes, *self.cloud_nodes]

    @property
    def num_edge_nodes(self) -> int:
        return len(self.edge_nodes)

    def node(self, name: str) -> ComputeNode:
        """Look a compute node up by its topology name."""
        try:
            return self._nodes_by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; cluster nodes: {sorted(self._nodes_by_name)}"
            ) from None

    def tier_hardware(self) -> Dict[str, HardwareSpec]:
        """Tier-name -> hardware mapping used by the profiler.

        Heterogeneous tiers are profiled against their *primary* node; other
        nodes' speed factors stretch task durations at simulation time.
        """
        return {
            Tier.DEVICE.value: self.device.hardware,
            Tier.EDGE.value: self.edge_nodes[0].hardware,
            Tier.CLOUD.value: self.cloud.hardware,
        }

    def primary_node(self, tier: Tier) -> ComputeNode:
        """The node that executes non-tiled work of a tier."""
        if tier == Tier.DEVICE:
            return self.device
        if tier == Tier.CLOUD:
            return self.cloud
        return self.edge_nodes[0]

    # ------------------------------------------------------------------ #
    # Failure state
    # ------------------------------------------------------------------ #
    @property
    def down_nodes(self) -> frozenset:
        """Names of currently-failed topology nodes."""
        return frozenset(self._down_nodes)

    @property
    def down_nodes_live(self) -> set:
        """The live down-node name set itself, mutated in place by
        ``fail_node``/``recover_node``/``reset``.

        The serving engine aliases it once per run so that per-dispatch
        liveness tests reduce to a membership test that short-circuits on
        the (usually empty) set.  Callers must not mutate it.
        """
        return self._down_nodes

    @property
    def down_links(self) -> frozenset:
        """Ids of currently-failed topology links."""
        return frozenset(self._down_links)

    def node_is_up(self, name: str) -> bool:
        return name not in self._down_nodes

    def link_is_up(self, link_id: str) -> bool:
        return link_id not in self._down_links

    def fail_node(self, name: str) -> None:
        """Mark a topology node (compute or relay) as down; idempotent."""
        if name not in self.topology.nodes:
            raise KeyError(f"unknown node {name!r} in topology {self.topology.name!r}")
        self._down_nodes.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a failed node back; a no-op for healthy or unknown names."""
        self._down_nodes.discard(name)

    def fail_link(self, link_id: str) -> None:
        """Mark a topology link as dark; idempotent."""
        if link_id not in self.topology.links:
            raise KeyError(f"unknown link {link_id!r} in topology {self.topology.name!r}")
        self._down_links.add(link_id)

    def recover_link(self, link_id: str) -> None:
        """Relight a failed link; a no-op for healthy or unknown ids."""
        self._down_links.discard(link_id)

    def active_nodes(self, tier: Tier) -> List[ComputeNode]:
        """The *up* compute nodes of a tier, in topology declaration order."""
        if tier == Tier.DEVICE:
            group = self.devices
        elif tier == Tier.CLOUD:
            group = self.cloud_nodes
        else:
            group = self.edge_nodes
        return [node for node in group if node.name not in self._down_nodes]

    def masked_topology(self) -> Topology:
        """The degraded deployment description under the current failures.

        Raises :class:`~repro.network.topology.TopologyError` when the
        degraded shape can no longer serve at all.
        """
        return self.topology.masked(frozenset(self._down_nodes), frozenset(self._down_links))

    # ------------------------------------------------------------------ #
    # Routing and per-hop pricing
    # ------------------------------------------------------------------ #
    def route(self, source_node: str, destination_node: str) -> List[SharedLink]:
        """The stateful wires a transfer crosses between two nodes, in order.

        Failure-aware: with down nodes/links the path avoids them (possibly
        taking a longer detour) and raises
        :class:`~repro.network.topology.RouteUnavailableError` when the
        failures sever every path.  The healthy route cache key is unchanged,
        so fault-free simulations route exactly as before.
        """
        if self._down_nodes or self._down_links:
            key: tuple = (
                source_node,
                destination_node,
                tuple(sorted(self._down_nodes)),
                tuple(sorted(self._down_links)),
            )
            if key not in self._routes:
                hops = self.topology.route(
                    source_node,
                    destination_node,
                    down_nodes=frozenset(self._down_nodes),
                    down_links=frozenset(self._down_links),
                )
                self._routes[key] = [self.shared_links[name] for name in hops]
            return self._routes[key]
        key = (source_node, destination_node)
        if key not in self._routes:
            hops = self.topology.route(source_node, destination_node)
            self._routes[key] = [self.shared_links[name] for name in hops]
        return self._routes[key]

    def hop_seconds(
        self,
        link: SharedLink,
        payload_bytes: int,
        condition: NetworkCondition,
        time_s: float,
    ) -> float:
        """Transmission time of one payload over one wire at ``time_s``.

        Inherited links price against ``condition`` (the per-request network
        condition, exactly the pre-topology semantics); static and traced
        links price against their own rate.
        """
        entry = self._hop_pricing.get(link.link_id)
        if entry is None:
            entry = self._hop_pricing[link.link_id] = self._hop_pricing_for(link)
        kind = entry[0]
        if kind == "static":
            if payload_bytes < 0:
                raise ValueError("payload_bytes cannot be negative")
            if payload_bytes == 0:
                return 0.0
            return payload_bytes / entry[1] + 0.0
        if kind == "inherited":
            _, tier_a, tier_b, memo, refs = entry
            divisor = memo.get(id(condition))
            if divisor is None:
                divisor = _condition_divisor(condition, tier_a, tier_b)
                memo[id(condition)] = divisor
                refs.append(condition)
            if divisor:
                return payload_bytes / divisor
            return 0.0
        return transfer_seconds(payload_bytes, entry[1].mbps_at(time_s))

    def _hop_pricing_for(self, link: SharedLink) -> tuple:
        """Classify one wire's pricing once (its topology spec never changes)."""
        spec = self.topology.links[link.link_id]
        bandwidth = spec.bandwidth
        if bandwidth is None:
            tier_a, tier_b = self.topology.link_tier_pair(spec)
            return ("inherited", tier_a, tier_b, {}, [])
        if isinstance(bandwidth, BandwidthTrace):
            return ("traced", spec)
        own = float(bandwidth)
        if own <= 0:
            # Non-positive static rate: defer to transfer_seconds so the
            # "bandwidth must be positive" error surfaces unchanged.
            return ("traced", spec)
        return ("static", own * MBPS_TO_BYTES_PER_SECOND)

    def shared_link(self, source, destination) -> SharedLink:
        """The single wire between two tiers/nodes (KeyError when multi-hop)."""
        src = getattr(source, "value", source)
        dst = getattr(destination, "value", destination)
        src_node = src if src in self._nodes_by_name else self.primary_node(Tier(src)).name
        dst_node = dst if dst in self._nodes_by_name else self.primary_node(Tier(dst)).name
        hops = self.route(src_node, dst_node)
        if len(hops) != 1:
            raise KeyError(f"no single shared link between {src!r} and {dst!r}")
        return hops[0]

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reset the scheduling state of every node and link, and heal faults."""
        for node in self.all_nodes:
            node.reset()
        for link in self.shared_links.values():
            link.reset()
        self._down_nodes.clear()
        self._down_links.clear()

    def with_network(self, network: NetworkCondition) -> "Cluster":
        """The same topology under a different network condition (fresh state)."""
        return Cluster.from_topology(self.topology, network=network)
