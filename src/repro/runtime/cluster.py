"""The simulated deployment: one device node, N edge nodes, one cloud node."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.placement import Tier
from repro.network.conditions import NetworkCondition, get_condition
from repro.network.link import SharedLink
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, HardwareSpec, RASPBERRY_PI_4
from repro.runtime.node import ComputeNode

#: The three inter-tier wires of the deployment, as unordered tier pairs.
LINK_PAIRS = (
    ("device", "edge"),
    ("edge", "cloud"),
    ("device", "cloud"),
)


@dataclass
class Cluster:
    """The device/edge/cloud deployment of section IV.

    Attributes
    ----------
    device:
        The single mobile device node that collects the input.
    edge_nodes:
        One or more edge nodes in the same LAN as the device; VSM spreads fused
        tile stacks across all of them.
    cloud:
        The remote cloud server.
    network:
        The inter-tier bandwidths in effect.
    """

    device: ComputeNode
    edge_nodes: List[ComputeNode]
    cloud: ComputeNode
    network: NetworkCondition
    shared_links: Dict[frozenset, SharedLink] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.edge_nodes:
            raise ValueError("a cluster needs at least one edge node")
        if self.device.tier != Tier.DEVICE or self.cloud.tier != Tier.CLOUD:
            raise ValueError("device/cloud nodes must carry the matching tier")
        if any(node.tier != Tier.EDGE for node in self.edge_nodes):
            raise ValueError("edge nodes must carry the edge tier")
        if not self.shared_links:
            self.shared_links = {
                frozenset(pair): SharedLink(source=pair[0], destination=pair[1])
                for pair in LINK_PAIRS
            }

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: NetworkCondition | str = "wifi",
        num_edge_nodes: int = 1,
        device_hardware: HardwareSpec = RASPBERRY_PI_4,
        edge_hardware: HardwareSpec = EDGE_DESKTOP,
        cloud_hardware: HardwareSpec = CLOUD_SERVER,
    ) -> "Cluster":
        """Build the paper's testbed of section IV: a Raspberry Pi 4 device,
        i7-8700 edge nodes and a 2080 Ti cloud server (Table II instead uses a
        Jetson Nano device; pass ``device_hardware=JETSON_NANO`` for that)."""
        if isinstance(network, str):
            network = get_condition(network)
        if num_edge_nodes <= 0:
            raise ValueError("num_edge_nodes must be positive")
        device = ComputeNode("device-0", Tier.DEVICE, device_hardware)
        edge_nodes = [
            ComputeNode(f"edge-{i}", Tier.EDGE, edge_hardware) for i in range(num_edge_nodes)
        ]
        cloud = ComputeNode("cloud-0", Tier.CLOUD, cloud_hardware)
        return cls(device=device, edge_nodes=edge_nodes, cloud=cloud, network=network)

    # ------------------------------------------------------------------ #
    @property
    def all_nodes(self) -> List[ComputeNode]:
        return [self.device, *self.edge_nodes, self.cloud]

    @property
    def num_edge_nodes(self) -> int:
        return len(self.edge_nodes)

    def tier_hardware(self) -> Dict[str, HardwareSpec]:
        """Tier-name -> hardware mapping used by the profiler."""
        return {
            Tier.DEVICE.value: self.device.hardware,
            Tier.EDGE.value: self.edge_nodes[0].hardware,
            Tier.CLOUD.value: self.cloud.hardware,
        }

    def primary_node(self, tier: Tier) -> ComputeNode:
        """The node that executes non-tiled work of a tier."""
        if tier == Tier.DEVICE:
            return self.device
        if tier == Tier.CLOUD:
            return self.cloud
        return self.edge_nodes[0]

    def shared_link(self, source, destination) -> SharedLink:
        """The stateful contention wire between two (distinct) tiers."""
        src = getattr(source, "value", source)
        dst = getattr(destination, "value", destination)
        key = frozenset((src, dst))
        if key not in self.shared_links:
            raise KeyError(f"no shared link between {src!r} and {dst!r}")
        return self.shared_links[key]

    def reset(self) -> None:
        """Reset the scheduling state of every node and link."""
        for node in self.all_nodes:
            node.reset()
        for link in self.shared_links.values():
            link.reset()

    def with_network(self, network: NetworkCondition) -> "Cluster":
        """Same nodes under a different network condition (fresh node state)."""
        return Cluster.build(
            network=network,
            num_edge_nodes=self.num_edge_nodes,
            device_hardware=self.device.hardware,
            edge_hardware=self.edge_nodes[0].hardware,
            cloud_hardware=self.cloud.hardware,
        )
