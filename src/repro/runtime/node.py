"""Simulated computation nodes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.placement import Tier
from repro.profiling.hardware import HardwareSpec


@dataclass
class ComputeNode:
    """One computation node of the device, edge or cloud tier.

    The node keeps the single piece of state a list scheduler needs —
    ``available_at``, the simulation time at which the node becomes free —
    plus bookkeeping of how long it was busy (used for the utilisation and
    bottleneck analyses).
    """

    name: str
    tier: Tier
    hardware: HardwareSpec
    available_at: float = 0.0
    busy_seconds: float = 0.0
    #: Compute throughput relative to the tier's *primary* node (the one the
    #: latency profile was built against).  1.0 on homogeneous clusters; a
    #: heterogeneous topology sets e.g. 0.5 on a half-speed edge machine, and
    #: the engines stretch that node's task durations by 1/0.5.
    speed_factor: float = 1.0
    #: Dollars billed per powered-on second (resolved from the node's
    #: :class:`~repro.network.topology.NodeSpec` / tier default); only read
    #: by the opt-in economics accounting at report-build time.
    price_per_s: float = 0.0

    def reset(self) -> None:
        """Clear scheduling state before a new simulation run."""
        self.available_at = 0.0
        self.busy_seconds = 0.0

    def schedule(self, ready_at: float, duration: float) -> tuple[float, float]:
        """Reserve the node for ``duration`` seconds, no earlier than ``ready_at``.

        Returns the (start, end) times of the reservation and advances the
        node's availability.
        """
        if duration < 0:
            raise ValueError("duration cannot be negative")
        start = max(ready_at, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_seconds += duration
        return start, end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComputeNode({self.name!r}, {self.tier.value}, {self.hardware.name!r})"
