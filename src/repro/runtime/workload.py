"""Request streams for the multi-request serving engine.

A :class:`Workload` is an ordered stream of :class:`Request`s — each naming a
model (or carrying an explicit graph) and an arrival time.  The two arrival
processes of interest are *deterministic* (fixed inter-arrival gap, the
closed-loop load generator) and *Poisson* (exponential inter-arrival gaps, the
open-loop load generator of virtually every serving paper).  Both are seeded so
that a workload is a reproducible artefact: the same seed yields the same
arrival times and the same model choices, which keeps serving experiments and
their regression tests deterministic.

The degenerate single-request workload (:meth:`Workload.single`) is how the
original one-shot pipeline is expressed on top of the serving engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.dag import DnnGraph

#: A model reference: a zoo name ("vgg16") or an already-built graph.
ModelRef = Union[str, DnnGraph]


def _model_name(model: ModelRef) -> str:
    return model.name if isinstance(model, DnnGraph) else model


@dataclass(frozen=True)
class Request:
    """One inference request of a workload.

    Attributes
    ----------
    index:
        Position of the request in the workload (also its arrival order).
    model:
        Name of the requested model (a zoo name unless ``graph`` is given).
    arrival_s:
        Time at which the request enters the system, in seconds from the
        start of the workload.
    graph:
        Optional explicit DNN graph; when ``None`` the serving layer resolves
        ``model`` through :func:`repro.models.zoo.build_model`.
    source:
        Name of the device node the request originates at; ``None`` (the
        back-compat default) means the cluster's single/primary device.
        Multi-device topologies pin requests to distinct fleet members here.
    slo_ms:
        Latency service-level objective in milliseconds; ``None`` (the
        default) is best-effort.  SLO-aware schedulers order and shed by it,
        and the serving report's goodput/attainment metrics judge against it.
    priority:
        Priority class, 0 = most important.  The deadline scheduler serves
        classes strictly in order; per-class latency percentiles are
        reported.
    """

    index: int
    model: str
    arrival_s: float
    graph: Optional[DnnGraph] = None
    source: Optional[str] = None
    slo_ms: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive when set")
        if self.priority < 0:
            raise ValueError("priority class cannot be negative")

    @property
    def request_id(self) -> str:
        return f"req-{self.index}"


@dataclass
class Workload:
    """An ordered stream of inference requests over one or several models."""

    requests: List[Request]
    name: str = "workload"

    def __post_init__(self) -> None:
        # Single pairwise pass — no copied list, no O(n log n) sorted() probe
        # (a million-request workload validates in linear time).
        previous = None
        for request in self.requests:
            arrival = request.arrival_s
            if previous is not None and arrival < previous:
                raise ValueError("workload requests must be ordered by arrival time")
            previous = arrival

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def models(self) -> List[str]:
        """Distinct model names, in first-appearance order."""
        seen: List[str] = []
        for request in self.requests:
            if request.model not in seen:
                seen.append(request.model)
        return seen

    @property
    def duration_s(self) -> float:
        """Time of the last arrival."""
        return self.requests[-1].arrival_s if self.requests else 0.0

    @property
    def mean_rate_rps(self) -> float:
        """Average arrival rate over the workload's span."""
        if len(self.requests) < 2 or self.duration_s == 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration_s

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single(
        cls,
        model: ModelRef,
        at_s: float = 0.0,
        source: Optional[str] = None,
        slo_ms: Optional[float] = None,
        priority: int = 0,
    ) -> "Workload":
        """The degenerate one-request workload (the original one-shot path)."""
        graph = model if isinstance(model, DnnGraph) else None
        request = Request(
            index=0,
            model=_model_name(model),
            arrival_s=at_s,
            graph=graph,
            source=source,
            slo_ms=slo_ms,
            priority=priority,
        )
        return cls(requests=[request], name=f"single:{request.model}")

    @classmethod
    def constant_rate(
        cls,
        models: Union[ModelRef, Sequence[ModelRef]],
        num_requests: int,
        interval_s: float,
        start_s: float = 0.0,
        sources: Optional[Sequence[str]] = None,
        slo_ms: Optional[float] = None,
        priorities: Optional[Sequence[int]] = None,
    ) -> "Workload":
        """Deterministic arrivals every ``interval_s`` seconds.

        With several models the stream cycles through them round-robin, so the
        mix is exact rather than merely expected; ``sources`` cycles the same
        way, pinning request *i* to device ``sources[i % len(sources)]``.
        ``slo_ms`` applies one latency SLO to every request; ``priorities``
        cycles priority classes round-robin (e.g. ``(0, 2)`` interleaves
        premium and background traffic exactly 1:1).
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if interval_s < 0:
            raise ValueError("interval cannot be negative")
        choices = _as_model_list(models)
        origins = _as_source_list(sources)
        classes = list(priorities) if priorities else [0]
        requests = [
            Request(
                index=i,
                model=_model_name(choices[i % len(choices)]),
                arrival_s=start_s + i * interval_s,
                graph=choices[i % len(choices)] if isinstance(choices[i % len(choices)], DnnGraph) else None,
                source=origins[i % len(origins)] if origins else None,
                slo_ms=slo_ms,
                priority=classes[i % len(classes)],
            )
            for i in range(num_requests)
        ]
        names = "+".join(_model_name(c) for c in choices)
        return cls(requests=requests, name=f"constant:{names}@{interval_s:g}s")

    @classmethod
    def poisson(
        cls,
        models: Union[ModelRef, Sequence[ModelRef]],
        num_requests: int,
        rate_rps: float,
        seed: int = 0,
        start_s: float = 0.0,
        weights: Optional[Sequence[float]] = None,
        sources: Optional[Sequence[str]] = None,
        slo_ms: Optional[float] = None,
        priorities: Optional[Sequence[int]] = None,
    ) -> "Workload":
        """Poisson arrivals at ``rate_rps`` requests per second.

        Inter-arrival gaps are exponential with mean ``1 / rate_rps``; with
        several models each request samples its model from ``weights``
        (uniform when omitted).  ``sources`` pins request *i* to device
        ``sources[i % len(sources)]`` — round-robin, so a fleet's devices
        contribute exactly evenly.  ``slo_ms`` applies one latency SLO to
        every request and ``priorities`` cycles priority classes round-robin.
        Fully determined by ``seed``.
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if rate_rps <= 0:
            raise ValueError("rate must be positive")
        choices = _as_model_list(models)
        if weights is not None and len(weights) != len(choices):
            raise ValueError("weights must match the number of models")
        probabilities = None
        if weights is not None:
            total = float(sum(weights))
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            probabilities = [w / total for w in weights]

        rng = np.random.default_rng(seed)
        gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
        picks = rng.choice(len(choices), size=num_requests, p=probabilities)
        origins = _as_source_list(sources)
        classes = list(priorities) if priorities else [0]
        arrival = start_s
        requests: List[Request] = []
        for i in range(num_requests):
            if i > 0:
                arrival += float(gaps[i])
            choice = choices[int(picks[i])]
            requests.append(
                Request(
                    index=i,
                    model=_model_name(choice),
                    arrival_s=arrival,
                    graph=choice if isinstance(choice, DnnGraph) else None,
                    source=origins[i % len(origins)] if origins else None,
                    slo_ms=slo_ms,
                    priority=classes[i % len(classes)],
                )
            )
        names = "+".join(_model_name(c) for c in choices)
        return cls(requests=requests, name=f"poisson:{names}@{rate_rps:g}rps")

    @classmethod
    def diurnal(
        cls,
        models: Union[ModelRef, Sequence[ModelRef]],
        duration_s: float,
        peak_rps: float,
        trough_rps: Optional[float] = None,
        period_s: Optional[float] = None,
        seed: int = 0,
        start_s: float = 0.0,
        weights: Optional[Sequence[float]] = None,
        sources: Optional[Sequence[str]] = None,
        slo_ms: Optional[float] = None,
        priorities: Optional[Sequence[int]] = None,
    ) -> "Workload":
        """A diurnal arrival curve: traffic ebbs and swells like a day of
        user load.

        An inhomogeneous Poisson process (sampled by thinning, so it is
        exact, not binned) whose rate follows a raised cosine from
        ``trough_rps`` up to ``peak_rps`` and back over each ``period_s``
        (default: one full cycle spanning ``duration_s``, starting and
        ending at the trough with the peak mid-way).  ``trough_rps``
        defaults to a tenth of the peak — the classic 10:1 day/night swing
        capacity planning is sized around.  Model mix, sources, SLOs and
        priorities behave exactly as in :meth:`poisson`.  Fully determined
        by ``seed``.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if peak_rps <= 0:
            raise ValueError("peak rate must be positive")
        if trough_rps is None:
            trough_rps = peak_rps / 10.0
        if not 0.0 <= trough_rps <= peak_rps:
            raise ValueError("trough rate must lie in [0, peak_rps]")
        period = duration_s if period_s is None else period_s
        if period <= 0:
            raise ValueError("period must be positive")
        choices = _as_model_list(models)
        if weights is not None and len(weights) != len(choices):
            raise ValueError("weights must match the number of models")
        probabilities = None
        if weights is not None:
            total = float(sum(weights))
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            probabilities = [w / total for w in weights]

        rng = np.random.default_rng(seed)
        swing = peak_rps - trough_rps
        two_pi = 2.0 * np.pi
        arrivals: List[float] = []
        t = 0.0
        while True:
            # Thinning: candidate arrivals at the peak rate, each kept with
            # probability rate(t) / peak — an exact inhomogeneous sampler.
            t += float(rng.exponential(scale=1.0 / peak_rps))
            if t >= duration_s:
                break
            rate = trough_rps + swing * 0.5 * (1.0 - float(np.cos(two_pi * t / period)))
            if float(rng.random()) * peak_rps <= rate:
                arrivals.append(start_s + t)
        picks = (
            rng.choice(len(choices), size=len(arrivals), p=probabilities)
            if arrivals
            else []
        )
        origins = _as_source_list(sources)
        classes = list(priorities) if priorities else [0]
        requests = []
        for i, arrival in enumerate(arrivals):
            choice = choices[int(picks[i])]
            requests.append(
                Request(
                    index=i,
                    model=_model_name(choice),
                    arrival_s=arrival,
                    graph=choice if isinstance(choice, DnnGraph) else None,
                    source=origins[i % len(origins)] if origins else None,
                    slo_ms=slo_ms,
                    priority=classes[i % len(classes)],
                )
            )
        names = "+".join(_model_name(c) for c in choices)
        return cls(
            requests=requests,
            name=f"diurnal:{names}@{trough_rps:g}-{peak_rps:g}rps",
        )

    @classmethod
    def merge(cls, *workloads: "Workload") -> "Workload":
        """Superpose several workloads into one stream (re-indexed by arrival)."""
        merged = sorted(
            (request for workload in workloads for request in workload),
            key=lambda r: (r.arrival_s, r.index),
        )
        requests = [
            Request(
                index=i,
                model=r.model,
                arrival_s=r.arrival_s,
                graph=r.graph,
                source=r.source,
                slo_ms=r.slo_ms,
                priority=r.priority,
            )
            for i, r in enumerate(merged)
        ]
        name = "|".join(w.name for w in workloads)
        return cls(requests=requests, name=name)

    def with_slo(
        self, slo_ms: Optional[float], priority: Optional[int] = None
    ) -> "Workload":
        """A copy of the workload with every request's SLO (and optionally
        priority class) replaced — how an existing stream is re-shaped into
        a premium or background class."""
        requests = [
            replace(
                request,
                slo_ms=slo_ms,
                priority=request.priority if priority is None else priority,
            )
            for request in self.requests
        ]
        return Workload(requests=requests, name=self.name)


def _as_model_list(models: Union[ModelRef, Sequence[ModelRef]]) -> List[ModelRef]:
    if isinstance(models, (str, DnnGraph)):
        return [models]
    choices = list(models)
    if not choices:
        raise ValueError("need at least one model")
    return choices


def _as_source_list(sources: Optional[Union[str, Sequence[str]]]) -> List[str]:
    if sources is None:
        return []
    if isinstance(sources, str):
        return [sources]
    return list(sources)
