"""One-shot execution of a placement plan — the degenerate serving case.

The :class:`DistributedExecutor` is the reproduction's stand-in for the paper's
online execution engine: it simulates a *single* inference of a partitioned
DNN on a cluster.  Since the runtime grew a multi-request discrete-event
engine (:mod:`repro.runtime.serving`), the one-shot path is expressed as the
degenerate single-request workload on that engine: one request, arrival time
zero, uncontended links (``link_contention="none"``, the paper's one-shot
assumption).  With a single request the event-driven schedule coincides with
the original list schedule — every vertex starts as soon as its inputs are
present and its node is free — so the reports (and the paper figures computed
from them) are unchanged.

The latency of a vertex on a tier comes from the same
:class:`~repro.profiling.profiler.LatencyProfile` that HPA used, so the
simulation evaluates plans under exactly the conditions they were computed
for; passing a *different* profile evaluates the regret of a stale plan (used
by the dynamics experiments).
"""

from __future__ import annotations

from typing import Optional

from repro.core.placement import PlacementPlan
from repro.core.vsm import VSMPlan
from repro.graph.dag import DnnGraph
from repro.profiling.profiler import LatencyProfile
from repro.runtime.cluster import Cluster
from repro.runtime.serving import ServingRequest, ServingSimulator
from repro.runtime.simulator import ExecutionReport


class DistributedExecutor:
    """Simulate one inference of a partitioned DNN on a cluster."""

    def __init__(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        profile: LatencyProfile,
        cluster: Cluster,
        vsm_plan: Optional[VSMPlan] = None,
        source: Optional[str] = None,
    ) -> None:
        if plan.graph is not graph:
            raise ValueError("the placement plan was computed for a different graph")
        plan.validate()
        self.graph = graph
        self.plan = plan
        self.profile = profile
        self.cluster = cluster
        self.vsm_plan = vsm_plan
        #: Device node the inference originates at (None: the primary device).
        self.source = source

    @classmethod
    def from_partition_plan(
        cls, partition, profile: LatencyProfile, cluster: Cluster
    ) -> "DistributedExecutor":
        """Build an executor from a normalized strategy artifact.

        ``partition`` is the :class:`~repro.core.strategy.PartitionPlan` any
        registered method produces; this is the bridge between the pluggable
        planning API and the one-shot execution engine.  A plan stamped with
        a topology fingerprint must match the cluster it runs on — executing
        a plan computed for a different deployment shape is a planning bug,
        not a runtime choice.  (Plans built without a
        :class:`~repro.core.strategy.ClusterSpec` carry no stamp and skip
        the check.)
        """
        fingerprint = getattr(partition, "topology_fingerprint", ())
        if (
            fingerprint
            and cluster.topology is not None
            and fingerprint != cluster.topology.fingerprint()
        ):
            raise ValueError(
                f"partition plan for {partition.graph.name!r} was computed for a "
                f"different topology than cluster {cluster.topology.name!r}"
            )
        return cls(
            partition.graph, partition.placement, profile, cluster, partition.vsm_plan
        )

    # ------------------------------------------------------------------ #
    def execute(self) -> ExecutionReport:
        """Simulate one inference; returns the full execution report."""
        simulator = ServingSimulator(self.cluster, link_contention="none")
        request = ServingRequest(
            index=0,
            request_id=None,
            graph=self.graph,
            plan=self.plan,
            profile=self.profile,
            condition=self.cluster.network,
            arrival_s=0.0,
            vsm_plan=self.vsm_plan,
            source=self.source,
        )
        records = simulator.run([request])
        report = records[0].report
        report.request_id = None
        return report
