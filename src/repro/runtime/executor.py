"""Discrete-event execution of a placement plan on a simulated cluster.

The :class:`DistributedExecutor` is the reproduction's stand-in for the paper's
online execution engine: it walks the DNN DAG in dependency order, schedules
each vertex on the node of its assigned tier, charges inter-tier transfers for
every cut edge, and — when a VSM plan covers a run of edge layers — fans the
run's fused tile stacks out over all available edge nodes and gathers the
results, reproducing the parallel edge inference of Fig. 8.

The latency of a vertex on a tier comes from the same
:class:`~repro.profiling.profiler.LatencyProfile` that HPA used, so the
simulation evaluates plans under exactly the conditions they were computed
for; passing a *different* profile evaluates the regret of a stale plan (used
by the dynamics experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import FusedRunPlan, VSMPlan
from repro.graph.dag import DnnGraph, Vertex
from repro.profiling.profiler import LatencyProfile
from repro.runtime.cluster import Cluster
from repro.runtime.messages import TensorTransfer
from repro.runtime.node import ComputeNode
from repro.runtime.simulator import ExecutionReport, TimelineEvent


@dataclass
class _VertexCompletion:
    """Where and when a vertex's output became available."""

    tier: Tier
    finish_s: float


class DistributedExecutor:
    """Simulate one inference of a partitioned DNN on a cluster."""

    def __init__(
        self,
        graph: DnnGraph,
        plan: PlacementPlan,
        profile: LatencyProfile,
        cluster: Cluster,
        vsm_plan: Optional[VSMPlan] = None,
    ) -> None:
        if plan.graph is not graph:
            raise ValueError("the placement plan was computed for a different graph")
        plan.validate()
        self.graph = graph
        self.plan = plan
        self.profile = profile
        self.cluster = cluster
        self.vsm_plan = vsm_plan

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _latency(self, vertex: Vertex, tier: Tier) -> float:
        return self.profile.get(vertex.index, tier)

    def _transfer(
        self,
        producer: Vertex,
        src_tier: Tier,
        dst_tier: Tier,
        ready_s: float,
        consumer_name: str,
        report: ExecutionReport,
    ) -> float:
        """Charge a tensor transfer and return the time the data is available."""
        if src_tier == dst_tier:
            return ready_s
        duration = self.cluster.network.transfer_seconds(
            producer.output_bytes, src_tier.value, dst_tier.value
        )
        report.transfers.append(
            TensorTransfer(
                producer=producer.name,
                consumer=consumer_name,
                source_tier=src_tier,
                destination_tier=dst_tier,
                payload_bytes=producer.output_bytes,
                start_s=ready_s,
                duration_s=duration,
            )
        )
        return ready_s + duration

    # ------------------------------------------------------------------ #
    # VSM run execution
    # ------------------------------------------------------------------ #
    def _run_fused(
        self,
        run: FusedRunPlan,
        inputs_ready_s: float,
        report: ExecutionReport,
    ) -> float:
        """Execute a fused run across all edge nodes; return its finish time.

        Each tile stack is charged the sum of its layers' edge latencies scaled
        by the stack's work fraction (which includes the overlap redundancy);
        stacks are assigned to edge nodes round-robin, and the run finishes when
        the slowest node finishes (the gather inside the LAN is negligible, per
        the paper's intra-tier assumption).
        """
        edge_nodes = self.cluster.edge_nodes
        finish_times: List[float] = []
        for stack_index, stack in enumerate(run.stacks):
            node = edge_nodes[stack_index % len(edge_nodes)]
            duration = 0.0
            for position, vertex in enumerate(run.vertices):
                fraction = stack.work_fraction(position, run.layer_output_area(position))
                duration += self._latency(vertex, Tier.EDGE) * fraction
            start, end = node.schedule(inputs_ready_s, duration)
            report.events.append(
                TimelineEvent(
                    node=node.name,
                    tier=Tier.EDGE,
                    label=f"tile{stack.grid_position}:{run.vertices[0].name}..{run.vertices[-1].name}",
                    kind="compute",
                    start_s=start,
                    end_s=end,
                )
            )
            finish_times.append(end)
        finish = max(finish_times)
        gather_node = self.cluster.primary_node(Tier.EDGE)
        report.events.append(
            TimelineEvent(
                node=gather_node.name,
                tier=Tier.EDGE,
                label=f"gather:{run.vertices[-1].name}",
                kind="gather",
                start_s=finish,
                end_s=finish,
            )
        )
        return finish

    # ------------------------------------------------------------------ #
    # Main simulation
    # ------------------------------------------------------------------ #
    def execute(self) -> ExecutionReport:
        """Simulate one inference; returns the full execution report."""
        self.cluster.reset()
        report = ExecutionReport(model_name=self.graph.name, end_to_end_latency_s=0.0)
        completions: Dict[int, _VertexCompletion] = {}
        fused_member: Dict[int, FusedRunPlan] = {}
        if self.vsm_plan is not None:
            for run in self.vsm_plan.runs:
                for vertex in run.vertices:
                    fused_member[vertex.index] = run
        executed_runs: set = set()

        for vertex in self.graph.topological_order():
            tier = self.plan.tier_of(vertex.index)

            # Fused runs are executed as a whole when their first vertex is hit.
            run = fused_member.get(vertex.index)
            if run is not None:
                run_id = id(run)
                if run_id in executed_runs:
                    continue
                executed_runs.add(run_id)
                first = run.vertices[0]
                ready = self._inputs_ready(first, Tier.EDGE, report, completions)
                finish = self._run_fused(run, ready, report)
                for member in run.vertices:
                    completions[member.index] = _VertexCompletion(Tier.EDGE, finish)
                continue

            node = self.cluster.primary_node(tier)
            ready = self._inputs_ready(vertex, tier, report, completions)
            duration = self._latency(vertex, tier)
            start, end = node.schedule(ready, duration)
            report.events.append(
                TimelineEvent(
                    node=node.name,
                    tier=tier,
                    label=vertex.name,
                    kind="compute",
                    start_s=start,
                    end_s=end,
                )
            )
            completions[vertex.index] = _VertexCompletion(tier, end)

        report.end_to_end_latency_s = max(c.finish_s for c in completions.values())
        return report

    def _inputs_ready(
        self,
        vertex: Vertex,
        tier: Tier,
        report: ExecutionReport,
        completions: Dict[int, _VertexCompletion],
    ) -> float:
        """Time at which all of ``vertex``'s inputs are present on ``tier``."""
        ready = 0.0
        for pred in self.graph.predecessors(vertex.index):
            completion = completions[pred.index]
            arrival = self._transfer(
                pred, completion.tier, tier, completion.finish_s, vertex.name, report
            )
            ready = max(ready, arrival)
        return ready
