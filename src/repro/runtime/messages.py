"""Simulated inter-node messages.

The real system moves tensors between nodes with gRPC; the simulation records
each transfer as a :class:`TensorTransfer` so experiments can account for the
traffic on every link (in particular the backbone traffic to the cloud, the
metric of Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.placement import Tier


@dataclass(frozen=True)
class TensorTransfer:
    """One tensor shipped from one node to another."""

    producer: str
    consumer: str
    source_tier: Tier
    destination_tier: Tier
    payload_bytes: int
    start_s: float
    duration_s: float
    #: Request the transfer belongs to; ``None`` for one-shot simulations.
    request_id: "str | None" = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        if self.duration_s < 0:
            raise ValueError("duration cannot be negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def crosses_backbone(self) -> bool:
        """True for traffic entering the cloud from another tier."""
        return self.destination_tier == Tier.CLOUD and self.source_tier != Tier.CLOUD

    @property
    def within_lan(self) -> bool:
        """True for device <-> edge traffic (the local area network)."""
        return {self.source_tier, self.destination_tier} == {Tier.DEVICE, Tier.EDGE}
