"""Discrete-event serving engine: many in-flight inferences on one cluster.

The one-shot :class:`~repro.runtime.executor.DistributedExecutor` walks a
single DNN DAG against idle nodes and uncontended links.  This module
generalises it into a true discrete-event simulator: a global event queue over
the cluster in which any number of partitioned inferences are in flight at
once, contending for

* **per-node compute** — every :class:`~repro.runtime.node.ComputeNode` runs
  one task at a time and keeps a FIFO ready-queue (ties broken by request
  arrival order, then DAG topological order, so the schedule is deterministic
  and the single-request case reproduces the one-shot timeline exactly), and
* **per-link bandwidth** — every cross-node transfer follows the topology's
  fewest-hop route and occupies each
  :class:`~repro.network.link.SharedLink` on it for that hop's transmission
  time (store-and-forward on multi-hop chains); with
  ``link_contention="fifo"`` concurrent transfers serialize per wire, with
  ``"none"`` links have infinite capacity (the paper's one-shot assumption,
  used by the degenerate single-request path so the seed figures are
  bit-identical).  Inherited links price transfers off the request's network
  condition; static and traced links price off their own rate at the moment
  the hop starts.

The engine also consumes a :class:`~repro.network.faults.FaultSchedule` as
first-class events.  When a node dies, the task it was executing is cut short
(its timeline event is truncated at the moment of death) and every request
with unfinished work bound to that node — or an in-flight transfer over a
severed wire — is *aborted and retried*: its pending work is discarded, a
fresh attempt is planned (through the ``replan`` callback when the serving
layer provides one, re-resolving onto surviving nodes otherwise) and execution
restarts from the input at the current time.  Retries are bounded by
``max_retries``; a request that exhausts its budget, loses its source device,
or cannot be replanned against the degraded deployment is recorded as
``failed``.  With no schedule the engine is bit-identical to its fault-free
behaviour.

Dispatch policy is pluggable through :mod:`repro.runtime.scheduler`: the
default :class:`~repro.runtime.scheduler.FifoScheduler` reproduces the
historical engine bit-for-bit (the golden traces pin it), while
:class:`~repro.runtime.scheduler.BatchingScheduler` coalesces same-layer
tasks on one node into micro-batches priced by the hardware's sublinear
batch-cost curve, and :class:`~repro.runtime.scheduler.DeadlineScheduler`
serves earliest-deadline-first over per-request SLOs with priority classes.
Schedulers with admission control shed arriving requests whose predicted
completion (idle critical path plus the current backlog on the nodes the
plan touches) already breaches their SLO; shed requests are recorded as
``rejected`` and surface as the report's shed count, goodput and
SLO-attainment metrics.  A batch whose node dies aborts as a unit — every
member request fails over together — and the retried attempts run
*unbatched*.

The engine consumes :class:`ServingRequest`s — a request plus its placement
plan, latency profile, optional VSM plan and the network condition its
transfers are charged under — and produces per-request
:class:`~repro.runtime.simulator.ExecutionReport`s plus the aggregate
:class:`ServingReport` (percentile latencies, throughput, goodput,
SLO attainment, batch occupancy, utilisation, backbone traffic,
availability).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import FusedRunPlan, VSMPlan
from repro.graph.dag import DnnGraph, Vertex
from repro.network.conditions import NetworkCondition
from repro.network.faults import FaultEvent, FaultSchedule
from repro.network.link import SharedLink
from repro.network.topology import RouteUnavailableError
from repro.profiling.hardware import batch_cost_s
from repro.profiling.profiler import LatencyProfile
from repro.runtime.accumulators import DEFAULT_EXACT_THRESHOLD, ServingStats
from repro.runtime.artifacts import CapacityError, MemoryModel, WeightCache
from repro.runtime.calibration import OnlineCostCalibrator
from repro.runtime.cluster import Cluster
from repro.runtime.elasticity import (
    Autoscaler,
    ElasticityEvent,
    ElasticitySchedule,
    LoadBalancer,
    resolve_autoscaler,
    resolve_balancer,
)
from repro.runtime.messages import TensorTransfer
from repro.runtime.node import ComputeNode
from repro.runtime.scheduler import (
    DeadlineScheduler,
    FifoScheduler,
    Scheduler,
    resolve_scheduler,
)
from repro.runtime.simulator import ExecutionReport, TimelineEvent

#: Link contention models understood by the engine.
LINK_CONTENTION_MODES = ("fifo", "none")

#: Terminal request outcomes (``rejected`` = shed by admission control).
REQUEST_STATUSES = ("completed", "failed", "rejected")

#: Default failover retry budget per request.
DEFAULT_MAX_RETRIES = 3

#: Signature of the failover replanning callback: ``(request, now_s,
#: down_nodes, down_links) -> replanned request or None`` (None = the request
#: cannot be served on the degraded deployment and fails).
ReplanCallback = Callable[
    ["ServingRequest", float, FrozenSet[str], FrozenSet[str]], Optional["ServingRequest"]
]


# --------------------------------------------------------------------------- #
# Inputs and outputs
# --------------------------------------------------------------------------- #
@dataclass
class ServingRequest:
    """One inference request, fully planned and ready to simulate."""

    index: int
    request_id: Optional[str]
    graph: DnnGraph
    plan: PlacementPlan
    profile: LatencyProfile
    condition: NetworkCondition
    arrival_s: float = 0.0
    vsm_plan: Optional[VSMPlan] = None
    #: Name of the device node the request originates at; ``None`` means the
    #: cluster's primary device (the pre-topology single-device behaviour).
    source: Optional[str] = None
    #: Latency SLO in milliseconds; ``None`` = best-effort (no deadline).
    slo_ms: Optional[float] = None
    #: Priority class (0 = most important); only the deadline scheduler and
    #: the per-class report metrics consult it.
    priority: int = 0
    #: Idle-cluster latency of the request's plan (from the plan cache);
    #: admission control predicts completion as this plus the live backlog.
    ideal_latency_s: Optional[float] = None


@dataclass
class RequestRecord:
    """Outcome of one request under the serving engine."""

    request_id: Optional[str]
    model: str
    arrival_s: float
    completion_s: float
    report: ExecutionReport
    #: Latency of the same plan on an idle cluster (filled by the serving
    #: layer from the plan cache); ``None`` when unknown.
    ideal_latency_s: Optional[float] = None
    #: Terminal outcome: ``"completed"``, ``"failed"`` (retry budget
    #: exhausted / source device lost / degraded deployment unservable) or
    #: ``"rejected"`` (shed at arrival by SLO admission control).
    status: str = "completed"
    #: Failover attempts this request consumed (0 on an undisturbed run).
    retries: int = 0
    #: The request's latency SLO in milliseconds (``None`` = best-effort).
    slo_ms: Optional[float] = None
    #: The request's priority class (0 = most important).
    priority: int = 0

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def met_slo(self) -> bool:
        """Completed within the SLO (best-effort requests count when served)."""
        if not self.completed:
            return False
        if self.slo_ms is None:
            return True
        return self.latency_s <= self.slo_ms / 1e3 + 1e-12

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion for completed requests; time-to-failure
        otherwise."""
        return self.completion_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Extra latency caused by contention, relative to an idle cluster."""
        if self.ideal_latency_s is None:
            return None
        return self.latency_s - self.ideal_latency_s


@dataclass(frozen=True)
class BatchRecord:
    """One micro-batch dispatch (size > 1) the engine executed."""

    node: str
    label: str
    size: int
    start_s: float
    end_s: float
    #: Longest member's solo duration — the lower bound on the batch's cost.
    longest_solo_s: float
    #: Sum of the members' solo durations — what FIFO would have paid.
    total_solo_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ServingReport:
    """Aggregate result of serving a workload on one cluster."""

    workload_name: str
    records: List[RequestRecord] = field(default_factory=list)
    makespan_s: float = 0.0
    node_busy_s: Dict[str, float] = field(default_factory=dict)
    link_busy_s: Dict[str, float] = field(default_factory=dict)
    #: Name of the dispatch policy the stream ran under.
    scheduler: str = "fifo"
    #: Dispatch-size histogram: ``{batch size: dispatches}``.  FIFO/EDF runs
    #: are all size 1; the batching scheduler's occupancy shows up here.
    batch_occupancy: Dict[int, int] = field(default_factory=dict)
    #: Every multi-member batch the engine executed (size > 1 only).
    batches: List[BatchRecord] = field(default_factory=list)
    #: Registry name of the partitioning method the stream was planned with
    #: (filled by :meth:`repro.core.d3.D3System.serve`; empty when the report
    #: was built directly from the simulator).
    method: str = ""
    #: Plan-cache statistics, filled by :meth:`repro.core.d3.D3System.serve`.
    plans_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    repartitions: int = 0
    #: Cached plans invalidated mid-stream (drift adaptations and membership
    #: churn both retire stale entries; churn-induced replanning cost shows
    #: up here and in ``cache_misses``).
    cache_invalidations: int = 0
    #: Failover replans performed mid-stream (a fault aborted in-flight work
    #: and the strategy re-planned the request against the degraded topology).
    failover_replans: int = 0
    #: Seconds each node spent down within the report's makespan window
    #: (empty on fault-free runs); feeds downtime-weighted utilisation.
    node_down_s: Dict[str, float] = field(default_factory=dict)
    #: Seconds each link spent dark within the makespan window.
    link_down_s: Dict[str, float] = field(default_factory=dict)
    #: Membership changes the run performed: autoscaler decisions plus
    #: declarative elasticity joins/drains that actually changed the fleet.
    scale_up_events: int = 0
    scale_down_events: int = 0
    #: Memory-constrained serving (all zero unless the run carried a
    #: :class:`~repro.runtime.artifacts.MemoryModel`): cold-start loads the
    #: stream performed (compressed transfer + decompress before a
    #: non-resident model's first task), per-node weight-cache lookups, and
    #: the high-water mark of resident bytes across every node cache.
    cold_starts: int = 0
    weight_cache_hits: int = 0
    weight_cache_misses: int = 0
    weight_evictions: int = 0
    peak_resident_bytes: int = 0
    #: Total simulated seconds spent loading weights (transfer + decompress).
    cold_start_s: float = 0.0
    #: Online cost calibration (all zero unless the run carried an
    #: :class:`~repro.runtime.calibration.OnlineCostCalibrator`): estimate
    #: updates the calibrator absorbed, drift repartitions split by trigger
    #: (forecast-ahead vs threshold-breach), and proactive triggers whose
    #: predicted breach never materialised within the horizon.
    calibration_updates: int = 0
    proactive_repartitions: int = 0
    reactive_repartitions: int = 0
    forecast_mispredicts: int = 0
    #: Arrival time of the first adaptation (proactive or reactive) the run
    #: triggered; ``None`` when the stream never left the band.  The
    #: adaptation scenario reads drift-response lag from this.
    first_adaptation_s: Optional[float] = None
    #: Metered economics (all zero unless the run was served with
    #: ``economics=True``): joules split by origin — compute energy off every
    #: node's executed work, radio energy off the bytes that crossed device
    #: uplinks, idle draw over each node's powered-on window — plus the
    #: fleet's dollar bill (powered-on seconds × per-node $/s).  All derived
    #: at report-build time from the engine's truncation-aware integrals
    #: (busy seconds, bytes carried, downtime), so faults and retries are
    #: billed exactly for the work that actually executed.
    economics_enabled: bool = False
    compute_energy_j: float = 0.0
    radio_energy_j: float = 0.0
    idle_energy_j: float = 0.0
    total_cost_usd: float = 0.0
    #: Online accumulators filled when the engine ran with ``stream_stats``;
    #: ``records`` is empty then and every aggregate below reads from here.
    #: Percentiles are exact while the run fits the accumulator's exact
    #: threshold and reservoir estimates beyond it.
    stats: Optional[ServingStats] = None

    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        if self.stats is not None and not self.records:
            return self.stats.num_requests
        return len(self.records)

    @property
    def num_completed(self) -> int:
        if self.stats is not None and not self.records:
            return self.stats.num_completed
        return sum(1 for record in self.records if record.completed)

    @property
    def num_failed(self) -> int:
        if self.stats is not None and not self.records:
            return self.stats.num_failed
        return sum(1 for record in self.records if record.status == "failed")

    @property
    def num_rejected(self) -> int:
        """Requests shed at arrival by SLO admission control."""
        if self.stats is not None and not self.records:
            return self.stats.num_rejected
        return sum(1 for record in self.records if record.rejected)

    @property
    def num_retried(self) -> int:
        """Requests that consumed at least one failover retry."""
        if self.stats is not None and not self.records:
            return self.stats.num_retried
        return sum(1 for record in self.records if record.retries > 0)

    @property
    def availability(self) -> float:
        """Fraction of *admitted* requests that completed (1.0 when empty).

        Deliberately shed requests are an overload-policy outcome, not an
        availability incident, so they leave the denominator.
        """
        admitted = self.num_requests - self.num_rejected
        if admitted <= 0:
            return 1.0
        return self.num_completed / admitted

    @property
    def latencies_s(self) -> List[float]:
        """Latencies of *completed* requests (failures have no latency).

        Under ``stream_stats`` this is the accumulator's retained sample —
        the full stream while the run fits the exact threshold, a seeded
        reservoir beyond it.
        """
        if self.stats is not None and not self.records:
            return self.stats.percentiles.sample
        return [record.latency_s for record in self.records if record.completed]

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated wall-clock."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_completed / self.makespan_s

    @property
    def num_met_slo(self) -> int:
        """Requests that completed within their SLO (best-effort = served)."""
        if self.stats is not None and not self.records:
            return self.stats.num_met_slo
        return sum(1 for record in self.records if record.met_slo)

    @property
    def goodput_rps(self) -> float:
        """SLO-meeting completions per second — the metric overload is
        judged on: shed and late requests contribute nothing."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_met_slo / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests that completed within their SLO.

        Shed requests count against attainment — admission control only pays
        off when the capacity it frees lets the survivors meet theirs.
        """
        if self.num_requests == 0:
            return 1.0
        return self.num_met_slo / self.num_requests

    def class_percentiles(
        self, quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[int, Dict[str, float]]:
        """Latency percentiles per priority class (completed requests)."""
        from repro.experiments.reporting import latency_percentiles

        if self.stats is not None and not self.records:
            return {
                cls: estimator.percentiles(quantiles)
                for cls, estimator in sorted(self.stats.by_class.items())
            }
        by_class: Dict[int, List[float]] = {}
        for record in self.records:
            if record.completed:
                by_class.setdefault(record.priority, []).append(record.latency_s)
        return {
            cls: latency_percentiles(values, quantiles)
            for cls, values in sorted(by_class.items())
        }

    @property
    def weight_cache_hit_rate(self) -> float:
        """Fraction of weight-cache lookups that found the model resident
        (1.0 when the run never consulted a cache)."""
        lookups = self.weight_cache_hits + self.weight_cache_misses
        if lookups == 0:
            return 1.0
        return self.weight_cache_hits / lookups

    def model_percentiles(
        self, quantiles: Tuple[float, ...] = (50.0, 99.0)
    ) -> Dict[str, Dict[str, float]]:
        """Latency percentiles per model (completed requests).

        Mixed-model streams only make sense record-by-record, so this reads
        ``records`` and returns ``{}`` under ``stream_stats``.
        """
        from repro.experiments.reporting import latency_percentiles

        by_model: Dict[str, List[float]] = {}
        for record in self.records:
            if record.completed:
                by_model.setdefault(record.model, []).append(record.latency_s)
        return {
            model: latency_percentiles(values, quantiles)
            for model, values in sorted(by_model.items())
        }

    @property
    def mean_batch_occupancy(self) -> float:
        """Average dispatch size (1.0 under FIFO/EDF; > 1 when batching bites)."""
        total = sum(self.batch_occupancy.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in self.batch_occupancy.items()) / total

    @property
    def bytes_to_cloud(self) -> int:
        """Total backbone traffic entering the cloud across all requests."""
        if self.stats is not None and not self.records:
            return self.stats.bytes_to_cloud
        return sum(record.report.bytes_to_cloud for record in self.records)

    def latency_percentiles(
        self,
        quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0),
        retried_only: bool = False,
        interpolation: str = "linear",
    ) -> Dict[str, float]:
        """Latency percentiles (``{"p50": ..., "p95": ..., "p99": ...}``).

        Computed over completed requests; with ``retried_only`` the sample is
        restricted to requests that survived at least one failover retry (the
        tail a fault-tolerant deployment is judged on).  An empty sample —
        an all-failed run, or no retried requests — returns zeros instead of
        raising, so degenerate reports stay well-formed.

        ``interpolation`` selects the estimator: ``"linear"`` (the default,
        matching ``numpy.percentile``) interpolates neighbouring order
        statistics; ``"nearest"`` is the classic nearest-rank percentile (an
        actually observed latency, preferred by some SLO auditors).
        """
        from repro.experiments.reporting import latency_percentiles

        if self.stats is not None and not self.records:
            estimator = (
                self.stats.retried_percentiles if retried_only else self.stats.percentiles
            )
            return estimator.percentiles(quantiles, interpolation=interpolation)
        values = [
            record.latency_s
            for record in self.records
            if record.completed and (record.retries > 0 or not retried_only)
        ]
        if not values:
            return {f"p{q:g}": 0.0 for q in quantiles}
        return latency_percentiles(values, quantiles, interpolation=interpolation)

    @property
    def mean_latency_s(self) -> float:
        from repro.experiments.reporting import mean

        if self.stats is not None and not self.records:
            return self.stats.latency.mean
        values = self.latencies_s
        return mean(values) if values else 0.0

    def mean_queueing_delay_s(self) -> Optional[float]:
        from repro.experiments.reporting import mean

        if self.stats is not None and not self.records:
            return self.stats.queueing.mean if self.stats.queueing.count else None
        delays = [r.queueing_delay_s for r in self.records if r.queueing_delay_s is not None]
        return mean(delays) if delays else None

    @property
    def total_energy_j(self) -> float:
        """Total metered joules of the run (compute + radio + idle)."""
        return self.compute_energy_j + self.radio_energy_j + self.idle_energy_j

    @property
    def energy_per_request_j(self) -> float:
        """Joules per offered request (0.0 on an empty stream)."""
        if self.num_requests == 0:
            return 0.0
        return self.total_energy_j / self.num_requests

    @property
    def dollars_per_1k_requests(self) -> float:
        """Fleet dollars per thousand offered requests (0.0 when empty)."""
        if self.num_requests == 0:
            return 0.0
        return self.total_cost_usd / self.num_requests * 1000.0

    @property
    def node_hours(self) -> float:
        """Node-hours of capacity the fleet kept up over the makespan.

        Every node contributes the makespan minus its downtime — parked and
        drained time counts as down, which is exactly the capacity an elastic
        fleet saves — converted to hours.  ``scenario autoscale`` judges the
        capacity-vs-latency trade-off on this.
        """
        if self.makespan_s <= 0:
            return 0.0
        total = 0.0
        for name in self.node_busy_s:
            total += max(0.0, self.makespan_s - self.node_down_s.get(name, 0.0))
        return total / 3600.0

    def replica_utilisation(self) -> Dict[str, float]:
        """Per-replica busy fraction over each replica's *active* time.

        Downtime-weighted by construction: a replica that joined for half the
        run but stayed saturated while active reports ~100%, which is the
        number an autoscaler is tuned against.
        """
        return self.node_utilisation(downtime_weighted=True)

    def node_utilisation(self, downtime_weighted: bool = False) -> Dict[str, float]:
        """Busy fraction of every node over the workload's makespan.

        With ``downtime_weighted`` each node's denominator shrinks by the time
        it spent down, so a node that was dead half the run but saturated
        while alive reports ~100%, not ~50%.
        """
        if self.makespan_s <= 0:
            return {name: 0.0 for name in self.node_busy_s}
        result = {}
        for name, busy in self.node_busy_s.items():
            window = self.makespan_s
            if downtime_weighted:
                window = max(window - self.node_down_s.get(name, 0.0), 0.0)
            result[name] = min(1.0, busy / window) if window > 0 else 0.0
        return result

    def summary(self) -> str:
        """Multi-line human-readable serving report."""
        via = f" via {self.method}" if self.method else ""
        scheduled = f" [{self.scheduler}]" if self.scheduler != "fifo" else ""
        lines = [
            f"{self.workload_name}: {self.num_requests} requests in "
            f"{self.makespan_s:.2f} s ({self.throughput_rps:.2f} req/s){via}{scheduled}"
        ]
        if self.stats is not None and not self.records:
            has_slos = self.stats.has_slos
        else:
            has_slos = any(record.slo_ms is not None for record in self.records)
        if has_slos or self.num_rejected:
            lines.append(
                f"  goodput {self.goodput_rps:.2f} req/s, "
                f"SLO attainment {self.slo_attainment:.1%}, "
                f"{self.num_rejected} shed"
            )
            per_class = self.class_percentiles()
            if len(per_class) > 1:
                lines.append(
                    "  per-class p95 "
                    + ", ".join(
                        f"class {cls} {pct['p95'] * 1e3:.1f} ms"
                        for cls, pct in per_class.items()
                    )
                )
        num_batches = len(self.batches) or sum(
            count for size, count in self.batch_occupancy.items() if size > 1
        )
        if num_batches:
            lines.append(
                f"  batching: {num_batches} batches, "
                f"mean occupancy {self.mean_batch_occupancy:.2f}, "
                f"largest {max(self.batch_occupancy)}"
            )
        if self.latencies_s:
            pct = self.latency_percentiles()
            lines.append(
                "  latency p50 {p50:.1f} ms, p95 {p95:.1f} ms, p99 {p99:.1f} ms, "
                "mean {mean:.1f} ms".format(
                    p50=pct["p50"] * 1e3,
                    p95=pct["p95"] * 1e3,
                    p99=pct["p99"] * 1e3,
                    mean=self.mean_latency_s * 1e3,
                )
            )
            queueing = self.mean_queueing_delay_s()
            if queueing is not None:
                # Clamp the float-epsilon negatives an idle stream produces.
                lines.append(f"  mean queueing delay {max(0.0, queueing) * 1e3:.1f} ms")
        per_model = self.model_percentiles() if self.records else {}
        if len(per_model) > 1:
            lines.append(
                "  per-model "
                + ", ".join(
                    f"{model} p50 {pct['p50'] * 1e3:.1f} ms / p99 {pct['p99'] * 1e3:.1f} ms"
                    for model, pct in per_model.items()
                )
            )
        faulted = (
            self.num_failed
            or self.num_retried
            or self.failover_replans
            or any(self.node_down_s.values())
            or any(self.link_down_s.values())
        )
        if faulted:
            lines.append(
                f"  availability {self.availability:.1%} "
                f"({self.num_failed}/{self.num_requests} failed, "
                f"{self.num_retried} retried, "
                f"{self.failover_replans} failover replans)"
            )
            retried = self.latency_percentiles(retried_only=True)
            if self.num_retried and any(retried.values()):
                lines.append(
                    f"  p99 over retried requests {retried['p99'] * 1e3:.1f} ms"
                )
        utilisation = self.node_utilisation(downtime_weighted=faulted)
        if utilisation:
            busiest = sorted(utilisation.items(), key=lambda kv: kv[1], reverse=True)
            lines.append(
                "  utilisation " + ", ".join(f"{name} {value:.0%}" for name, value in busiest)
            )
        if self.scale_up_events or self.scale_down_events:
            lines.append(
                f"  elasticity: {self.scale_up_events} scale-up(s), "
                f"{self.scale_down_events} scale-down(s), "
                f"fleet {self.node_hours:.4f} node-hours"
            )
        if self.cold_starts or self.weight_cache_misses:
            lines.append(
                f"  memory: {self.cold_starts} cold start(s) "
                f"({self.cold_start_s * 1e3:.1f} ms loading), "
                f"hit rate {self.weight_cache_hit_rate:.1%}, "
                f"{self.weight_evictions} eviction(s), "
                f"peak resident {self.peak_resident_bytes / 1e6:.1f} MB"
            )
        if self.calibration_updates or self.proactive_repartitions:
            lines.append(
                f"  calibration: {self.calibration_updates} estimate update(s), "
                f"{self.proactive_repartitions} proactive / "
                f"{self.reactive_repartitions} reactive repartition(s), "
                f"{self.forecast_mispredicts} mispredict(s)"
            )
        if self.economics_enabled:
            lines.append(
                f"  economics: {self.energy_per_request_j:.3f} J/request "
                f"(compute {self.compute_energy_j:.1f} J, "
                f"radio {self.radio_energy_j:.1f} J, "
                f"idle {self.idle_energy_j:.1f} J), "
                f"${self.dollars_per_1k_requests:.4f}/1k requests"
            )
        lines.append(f"  backbone to cloud {self.bytes_to_cloud * 8.0 / 1e6:.3f} Mb")
        lines.append(
            f"  plans computed {self.plans_computed} "
            f"(cache hits {self.cache_hits}, misses {self.cache_misses}, "
            f"repartitions {self.repartitions}, "
            f"invalidations {self.cache_invalidations})"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Internal simulation state
# --------------------------------------------------------------------------- #
#: Sentinel distinguishing "absent from the live set" from the stored ``None``.
_MISSING = object()


class _NoNodeAvailable(RuntimeError):
    """A request needs a tier of which no node is currently up."""


class _CompiledUnit:
    """The request-independent shape of one schedulable stage.

    Everything about a stage that is a pure function of ``(graph, plan,
    profile, vsm_plan, source node, set of live nodes)`` is computed once and
    shared by every request of the stream that carries the same plan objects:
    the member vertices, topological rank, executing nodes, per-task solo
    durations and labels, the cross-unit out-edges, and the per-node cost
    vector the admission predictor reads.  The per-request :class:`_Unit`
    copies the shared references and adds only the mutable countdown state.
    """

    __slots__ = (
        "pos",
        "tier",
        "vertices",
        "run",
        "topo_key",
        "waiting",
        "exec_nodes",
        "home_node",
        "tasks",
        "group_tasks",
        "group_cache",
        "node_costs",
        "out_edges",
        "gather_label",
        "task_nodes",
    )

    def __init__(self, tier: Tier, vertices: List[Vertex], run: Optional[FusedRunPlan]) -> None:
        self.pos = 0  # position in the compiled unit list
        self.tier = tier
        self.vertices = vertices
        self.run = run
        self.topo_key = 0
        self.waiting = 0
        self.exec_nodes: List[ComputeNode] = []
        self.home_node: Optional[ComputeNode] = None
        #: ``[(node, solo duration, label, node state)]`` — one entry per
        #: compute task, carrying the engine's per-node queue directly so
        #: enqueueing skips the name lookup.
        self.tasks: List[Tuple[ComputeNode, float, str, "_NodeState"]] = []
        #: Group-bound stages only: ``[(raw profile duration, label)]`` —
        #: the member (and its speed factor) is chosen per request by the
        #: balancer, so pricing happens at resolution time.  ``None`` for
        #: statically bound units.
        self.group_tasks: Optional[List[Tuple[float, str]]] = None
        #: Per-member priced task lists for group-bound stages, keyed by
        #: member name — the ``group_tasks`` arithmetic is a pure function of
        #: the member, so each member is priced once per compiled plan and
        #: every request resolving to it shares the list (the same sharing
        #: contract as ``tasks``).
        self.group_cache: Optional[Dict[str, List]] = None
        #: ``[(node name, solo seconds)]`` for the admission predictor.
        self.node_costs: List[Tuple[str, float]] = []
        #: Memory-constrained runs only: the task node names of a statically
        #: bound unit, filled lazily on its first residency scan.  ``tasks``
        #: is shared by every request carrying this plan, so once a request
        #: has pinned a superset of these names the whole scan is one frozen
        #: set comparison.  Stays ``None`` for group-bound stages (their
        #: member — and so their node — is chosen per request).
        self.task_nodes: Optional[FrozenSet[str]] = None
        #: Cross-unit data dependencies, in delivery order: ``[(producer
        #: vertex, consumer vertex, consumer unit position, same-node?)]``.
        #: Same-node edges are free (the paper's intra-tier assumption) and
        #: the flag is a compile-time constant, so completion delivers them
        #: without touching the transfer machinery.
        self.out_edges: List[Tuple[Vertex, Vertex, int, bool]] = []
        self.gather_label: Optional[str] = None


class _CompiledPlan:
    """Shared stage structure of one ``(plan objects, source, live nodes)``."""

    __slots__ = (
        "units",
        "touched_links",
        "touched_nodes",
        "refs",
        "node_entry_bytes",
        "node_weight_bytes",
        "group_entry_bytes",
        "group_weight_bytes",
    )

    def __init__(self, units: List[_CompiledUnit]) -> None:
        self.units = units
        #: Wires the plan's cross-unit edges traverse, memoized on fault-free
        #: runs for the admission predictor (route state never changes then).
        self.touched_links: Optional[List[SharedLink]] = None
        #: Names of every node the plan executes on (admission predictor).
        self.touched_nodes: FrozenSet[str] = frozenset()
        #: Strong references to the objects whose ids key this compilation,
        #: pinning them so a recycled id can never alias a different plan.
        self.refs: Tuple = ()
        #: Memory-constrained runs only: per node, the bytes the model must
        #: keep resident there (stage weights + peak activation working set)
        #: and the weight bytes a cold start moves; group-bound stages are
        #: attributed at resolution time via the ``group_*`` totals.
        self.node_entry_bytes: Optional[Dict[str, int]] = None
        self.node_weight_bytes: Optional[Dict[str, int]] = None
        self.group_entry_bytes = 0
        self.group_weight_bytes = 0


class _Unit:
    """One schedulable stage of a request: a vertex or a whole fused run.

    Instantiated from a :class:`_CompiledUnit` — the immutable structure
    (vertices, nodes, durations, edges) is shared across requests; only the
    dependency/task countdowns and the completion flag live per request.
    """

    __slots__ = (
        "state",
        "compiled",
        "tier",
        "waiting",
        "remaining_tasks",
        "topo_key",
        "home_node",
        "completed",
        "tasks",
        "out_edges",
    )

    def __init__(self, state: "_RequestState", compiled: _CompiledUnit) -> None:
        # Only what the per-task hot paths touch is copied into slots; the
        # cold structure (vertices, fused-run plan, executor lists, admission
        # costs, gather label) stays behind ``compiled`` and is reached via
        # the properties below — a request allocates 10 slot writes per unit
        # instead of 14, and this constructor runs once per unit per request.
        self.state = state
        self.compiled = compiled
        self.tier = compiled.tier
        self.topo_key = compiled.topo_key
        #: The node cross-unit transfers address (the gather node for fused
        #: runs, the executing node otherwise).
        self.home_node = compiled.home_node
        self.tasks = compiled.tasks
        self.out_edges = compiled.out_edges
        self.waiting = compiled.waiting  # incoming cross-unit edges not yet arrived
        self.remaining_tasks = 0  # compute tasks in flight once started
        self.completed = False

    @property
    def vertices(self) -> List[Vertex]:
        return self.compiled.vertices

    @property
    def run(self) -> Optional[FusedRunPlan]:
        return self.compiled.run

    @property
    def exec_nodes(self) -> List[ComputeNode]:
        """Nodes this unit's tasks run on, resolved against the nodes that
        were *up* when the attempt was compiled (one entry per tile stack
        for fused runs, a single entry otherwise).  Snapshotting at build
        time keeps the schedule deterministic and lets the engine detect
        which requests a dying node takes down."""
        return self.compiled.exec_nodes

    @property
    def node_costs(self) -> List[Tuple[str, float]]:
        """``[(node name, solo seconds)]`` — the admission predictor's view."""
        return self.compiled.node_costs

    @property
    def gather_label(self) -> Optional[str]:
        return self.compiled.gather_label

    def touches(self, node_name: str) -> bool:
        """True when any of this unit's work is bound to ``node_name``."""
        if self.home_node is not None and self.home_node.name == node_name:
            return True
        if self.compiled.group_tasks is not None:
            # Unresolved group-bound stage: it is bound to the member its
            # request's earlier stages already stuck to (if any).
            chosen = self.state.group_node_state
            return chosen is not None and chosen.node.name == node_name
        return any(node.name == node_name for node in self.compiled.exec_nodes)


class _RequestState:
    """Everything the engine tracks for one in-flight request."""

    __slots__ = (
        "request",
        "report",
        "unit_list",
        "remaining_units",
        "completion_s",
        "source_node",
        "epoch",
        "retries",
        "failed",
        "failed_at_s",
        "retry_pending",
        "rejected",
        "no_batch",
        "done",
        "bytes_to_cloud",
        "compiled",
        "group_node_state",
        "group_rev",
        "memory_ready",
        "memory_waiting",
    )

    def __init__(
        self, request: ServingRequest, source_node: ComputeNode, timeline: bool = True
    ) -> None:
        self.request = request
        #: Per-request timeline; ``None`` under ``stream_stats`` (events and
        #: transfers are not materialized at benchmark scale).
        self.report: Optional[ExecutionReport] = (
            ExecutionReport(
                model_name=request.graph.name,
                end_to_end_latency_s=0.0,
                request_id=request.request_id,
            )
            if timeline
            else None
        )
        self.unit_list: List[_Unit] = []
        self.remaining_units = 0
        self.completion_s = 0.0
        #: Device node all device-tier work of this request runs on.
        self.source_node = source_node
        #: Attempt counter: bumped on every abort, so stale task/transfer
        #: events from a discarded attempt are ignored when they fire.
        self.epoch = 0
        self.retries = 0
        self.failed = False
        self.failed_at_s = 0.0
        self.retry_pending = False
        #: Shed at arrival by admission control (terminal, never started).
        self.rejected = False
        #: Set when a batch died with its node: every retried attempt of this
        #: request dispatches unbatched from then on.
        self.no_batch = False
        #: Set the moment the last unit completes (cheaper to test than the
        #: unit-list scan, and it survives the streaming mode releasing the
        #: unit structures of finished requests).
        self.done = False
        #: Backbone bytes this request shipped into the cloud, accumulated
        #: directly under ``stream_stats`` (no transfer objects exist then).
        self.bytes_to_cloud = 0
        #: The shared :class:`_CompiledPlan` of the current attempt.
        self.compiled: Optional[_CompiledPlan] = None
        #: The replica the balancer stuck this request's group-bound stages
        #: to (a :class:`_NodeState`); ``None`` until the first group stage
        #: resolves, and reset per failover attempt.
        self.group_node_state: Optional["_NodeState"] = None
        #: Fleet-membership revision the sticky choice was made (or last
        #: re-verified) under; while the engine's revision matches, the
        #: member provably never went down, so resolution skips the
        #: liveness check.
        self.group_rev = 0
        #: Memory-constrained runs only: node names on which this request has
        #: verified (hit or finished loading) its model.  The residency check
        #: short-circuits to a set probe on every later dispatch touching the
        #: node — and the set doubles as the request's *pin claim*: while the
        #: request is live, :meth:`ServingSimulator._sync_pins` counts its
        #: model as unevictable on every node named here, so the warm path
        #: never touches the cache's pin table.  Reset when the attempt is
        #: aborted (the claims are void) and when the request retires.
        self.memory_ready: Optional[set] = None
        #: Node names whose load this request started or joined and which has
        #: not been verified yet; in-flight loads are claimed for pinning via
        #: the engine's loading table, keyed by ``(node, model)``.
        self.memory_waiting: Optional[set] = None

    @property
    def terminal(self) -> bool:
        """True once the request completed, failed or was shed."""
        return (
            self.done
            or self.failed
            or self.rejected
            or (bool(self.unit_list) and self.remaining_units == 0)
        )


class _Task:
    """One reservation-sized piece of work bound for a specific node.

    A plain ``__slots__`` class (not a dataclass): tasks are the engine's
    most-allocated object and identity hashing is exactly what the batching
    scheduler's tombstone set needs.
    """

    __slots__ = ("unit", "node", "duration_s", "label", "epoch", "enqueued_s")

    def __init__(
        self,
        unit: _Unit,
        node: ComputeNode,
        duration_s: float,
        label: str,
        epoch: int = 0,
        enqueued_s: float = 0.0,
    ) -> None:
        self.unit = unit
        self.node = node
        self.duration_s = duration_s
        self.label = label
        #: The owning request's attempt the task belongs to; a mismatch at
        #: dispatch/completion time means the attempt was aborted.
        self.epoch = epoch
        #: When the task entered its node's ready-queue; the batching
        #: scheduler's ``max_wait`` hold is anchored at the oldest member.
        self.enqueued_s = enqueued_s


@dataclass
class _Inflight:
    """One transfer currently on the wires, tracked for fault handling."""

    end_s: float
    link_ids: FrozenSet[str]
    src: str
    dst: str
    state: "_RequestState"
    epoch: int
    #: Per-hop ``(link, start, end, payload)`` reservations, kept so an abort
    #: can release wire time the bytes never actually used.
    hops: List[Tuple[SharedLink, float, float, int]]


class _NodeState:
    """Ready-queue (ordered by the scheduler's key) and busy flag of one node."""

    __slots__ = (
        "node",
        "queue",
        "busy",
        "run_id",
        "current",
        "flush_at",
        "dirty",
        "tombstones",
    )

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.queue: List[Tuple[Tuple, _Task]] = []
        self.busy = False
        #: Tasks lazily deleted from ``queue`` (the batching scheduler pulls
        #: batch members from the middle of the heap).  Tombstoned entries
        #: are purged when they surface at the root instead of rebuilding
        #: the heap on every flush.  Holds the task objects themselves so a
        #: recycled ``id()`` can never resurrect a tombstone.
        self.tombstones: set = set()
        #: Deadline of the pending flush event during a batching hold;
        #: ``None`` when no flush is outstanding (deduplicates the events a
        #: busy hold window would otherwise pile up).
        self.flush_at: Optional[float] = None
        #: Set when an abort/failure may have left stale tasks in the queue;
        #: cleared by the next prune.  Keeps the fault-free fast path free of
        #: per-dispatch validation scans.
        self.dirty = False
        #: Monotone id of the dispatch occupying the node; a ``task_end``
        #: event carrying a stale id was cancelled by a node failure.
        self.run_id = 0
        #: ``(members, end_s)`` of the running dispatch, where ``members`` is
        #: one ``(task, events_list, event_index)`` per batch member, kept so
        #: a node death can truncate every member's timeline event.
        self.current: Optional[Tuple[List[Tuple[_Task, list, int]], float]] = None


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class ServingSimulator:
    """Simulate a stream of partitioned inferences on a shared cluster.

    Parameters
    ----------
    cluster:
        The deployment all requests run on.  Its node, link and failure state
        is reset at the start of every :meth:`run`.
    link_contention:
        ``"fifo"`` serializes concurrent transfers on each inter-tier link
        (the serving default); ``"none"`` gives links infinite capacity,
        reproducing the one-shot semantics of the original executor.
    faults:
        Optional :class:`~repro.network.faults.FaultSchedule` consumed as
        first-class simulation events.  ``None`` (or an empty schedule) is
        bit-identical to the fault-free engine.
    max_retries:
        Failover budget per request: how many aborted attempts may be retried
        before the request is recorded as failed.
    replan:
        Optional failover replanning callback ``(request, now_s, down_nodes,
        down_links) -> ServingRequest | None`` invoked on every retry;
        :meth:`repro.core.d3.D3System.serve` wires the plan cache in here.
        Without it, retries re-resolve the existing plan onto surviving
        nodes.
    scheduler:
        Dispatch policy: a :class:`~repro.runtime.scheduler.Scheduler`
        instance, a registry name (``"fifo"``, ``"batch"``, ``"edf"``) or
        ``None`` for the default FIFO, which is bit-identical to the
        pre-scheduler engine.
    elasticity:
        Optional :class:`~repro.runtime.elasticity.ElasticitySchedule` of
        declarative NodeJoin/NodeDrain events.  Targets whose first event is
        a join start *parked* (down, unpaid); a drain stops new admissions,
        finishes in-flight work and takes the node down gracefully — never
        aborting a request.  ``None`` (or an empty schedule) is bit-identical
        to the static-fleet engine.
    autoscaler:
        Optional :class:`~repro.runtime.elasticity.Autoscaler` (or policy
        name) ticked on its interval with the edge replica group's mean
        utilisation / queue depth; its join/drain decisions flow through the
        same machinery as declarative elasticity events.
    balancer:
        Optional :class:`~repro.runtime.elasticity.LoadBalancer` (or name:
        ``"rr"``, ``"jsq"``, ``"p2c"``).  When given — or whenever
        elasticity/autoscaling is active — solo edge-tier stages bind to the
        edge *replica group* instead of the primary edge node, and the
        balancer resolves each request's work to a member at dispatch time
        (sticky per request, so intra-request edges stay node-local).
    memory:
        Optional :class:`~repro.runtime.artifacts.MemoryModel`.  When given,
        every compute node gets a byte-budgeted
        :class:`~repro.runtime.artifacts.WeightCache` and the first task of
        a non-resident model on a node waits on a first-class **cold-start
        event**: the compressed artifact crosses the declared wires from the
        cloud store, then decompresses, before dispatch.  Models with
        in-flight tasks are pinned against eviction.  ``None`` is
        bit-identical to the unconstrained engine (the golden traces pin
        this).
    stream_stats:
        Benchmark mode for huge workloads: per-request timelines and records
        are not materialized; aggregates stream into online accumulators
        (:class:`~repro.runtime.accumulators.ServingStats`) as requests
        reach a terminal state, and finished requests release their stage
        structures immediately.  :meth:`run` returns an empty record list
        and :meth:`build_report` produces a report whose aggregates read the
        accumulators — exact at small N (below ``exact_percentiles``
        samples the percentile path keeps the raw values), reservoir
        estimates beyond.  Off by default: the golden traces pin the
        record-keeping path bit-exactly.
    exact_percentiles:
        Sample-count threshold below which streamed percentiles stay exact.
    """

    def __init__(
        self,
        cluster: Cluster,
        link_contention: str = "fifo",
        faults: Optional[FaultSchedule] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        replan: Optional[ReplanCallback] = None,
        scheduler: "Scheduler | str | None" = None,
        stream_stats: bool = False,
        exact_percentiles: int = DEFAULT_EXACT_THRESHOLD,
        elasticity: Optional[ElasticitySchedule] = None,
        autoscaler: "Autoscaler | str | None" = None,
        balancer: "LoadBalancer | str | None" = None,
        memory: Optional[MemoryModel] = None,
        calibration: Optional[OnlineCostCalibrator] = None,
        economics: bool = False,
    ) -> None:
        if link_contention not in LINK_CONTENTION_MODES:
            raise ValueError(
                f"unknown link contention mode {link_contention!r}; "
                f"expected one of {LINK_CONTENTION_MODES}"
            )
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if elasticity is not None and not isinstance(elasticity, ElasticitySchedule):
            raise ValueError(
                f"elasticity must be an ElasticitySchedule, "
                f"got {type(elasticity).__name__}"
            )
        if memory is not None and not isinstance(memory, MemoryModel):
            raise ValueError(
                f"memory must be a MemoryModel, got {type(memory).__name__}"
            )
        if calibration is not None and not isinstance(calibration, OnlineCostCalibrator):
            raise ValueError(
                f"calibration must be an OnlineCostCalibrator, "
                f"got {type(calibration).__name__}"
            )
        self.memory = memory
        self.calibration = calibration
        #: Opt-in energy/dollar metering.  Deliberately NOT consulted on the
        #: hot path: the accounting derives entirely from integrals the engine
        #: maintains anyway (busy seconds, bytes carried, downtime windows),
        #: so enabling it only adds a per-node sweep at report-build time.
        self.economics = bool(economics)
        self.cluster = cluster
        self.link_contention = link_contention
        self.faults = faults
        self.max_retries = max_retries
        self._replan = replan
        self.scheduler = resolve_scheduler(scheduler)
        self.stream_stats = stream_stats
        self.exact_percentiles = exact_percentiles
        # An empty schedule is normalized away so every elastic code path is
        # provably dead on static runs (the golden traces pin this).
        self.elasticity = elasticity if elasticity else None
        self.autoscaler = resolve_autoscaler(autoscaler)
        elastic = self.elasticity is not None or self.autoscaler is not None
        self.balancer: Optional[LoadBalancer] = (
            resolve_balancer(balancer) if (balancer is not None or elastic) else None
        )
        self.failover_replans = 0
        #: Events popped off the queue by the last :meth:`run` (the
        #: benchmark harness's throughput denominator).
        self.events_processed = 0
        #: Dispatch-size histogram and multi-member batch log of the last run.
        self.batch_occupancy: Dict[int, int] = {}
        self.batches: List[BatchRecord] = []
        self._events: List[Tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._nodes: Dict[str, _NodeState] = {}
        self._states: List[_RequestState] = []
        #: Non-terminal requests in arrival order — what the admission
        #: predictor and fault sweeps iterate instead of every state the run
        #: has ever produced (iteration order matches ``_states`` filtered
        #: by ``terminal``, so the arithmetic is unchanged).
        self._live: Dict[_RequestState, None] = {}
        #: Requests that have not reached a terminal state yet.
        self._open = 0
        #: Online aggregates of the current run under ``stream_stats``.
        self._stats: Optional[ServingStats] = None
        #: Compiled stage templates keyed by the identities of the plan
        #: objects (plus source and the live-node signature); all requests
        #: of a stream share the plan-cache objects, so compilation is paid
        #: once per distinct plan instead of once per request.
        self._compiled: Dict[Tuple, _CompiledPlan] = {}
        #: Transfers currently on the wires, used to abort requests whose
        #: bytes a failure caught in flight (and to release their unused
        #: reservations).  Only populated when a fault schedule is active.
        self._inflight: List[_Inflight] = []
        self._node_down_intervals: Dict[str, List[List[Optional[float]]]] = {}
        self._link_down_intervals: Dict[str, List[List[Optional[float]]]] = {}
        self._default_source: Optional[ComputeNode] = None
        #: Names of nodes currently draining (up, but admitting no new work).
        self._draining: set = set()
        #: Names of nodes down because of *membership* (parked before their
        #: join, or drained out) rather than a crash — requests pinned to one
        #: of these re-resolve instead of failing as "client offline".
        self._elastic_down: set = set()
        #: Joins whose provisioning delay has not elapsed yet.
        self._provisioning: set = set()
        #: The autoscaler's replica group (edge nodes, declaration order).
        self._group_names: List[str] = []
        #: Per-node busy-seconds snapshot at the last autoscale tick.
        self._util_prev: Dict[str, float] = {}
        self._scale_up_count = 0
        self._scale_down_count = 0
        self._pending_arrivals = 0
        self._faulty = bool(self.faults)
        self._elastic = self.elasticity is not None or self.autoscaler is not None
        self._downable = self._faulty or self._elastic
        #: Alias of the cluster's live down-node name set (mutated in place
        #: by fail/recover): hot-path liveness tests reduce to a membership
        #: test that short-circuits on the empty set — no method call, and
        #: on runs where nothing is currently down, no hash either.
        self._down_live: set = self.cluster.down_nodes_live
        self._grouped = self.balancer is not None
        self._base_key = type(self.scheduler).queue_key is Scheduler.queue_key
        self._pop_select = type(self.scheduler).select in (
            FifoScheduler.select,
            DeadlineScheduler.select,
        )
        #: Memory-constrained-serving state: per-node weight caches, in-flight
        #: loads (``(node name, model) -> [(state, unit, epoch)]`` waiter
        #: lists), the cloud artifact-store node, and the run's counters.
        #: All provably dead when ``_memory_on`` is false.
        self._memory_on = self.memory is not None
        self._caches: Dict[str, WeightCache] = {}
        self._loading: Dict[Tuple[str, str], list] = {}
        self._store_node: Optional[ComputeNode] = None
        self._cold_starts = 0
        self._cold_start_s = 0.0
        #: Online-calibration predicate: every observation hook below is a
        #: single boolean test when no calibrator rides along, so the
        #: calibration-off hot path stays bit-identical (goldens pin it).
        #: The sampling gates are cached so the per-event admission check is
        #: inlined integer arithmetic, not a method call.
        self._calibrate = self.calibration is not None
        if self._calibrate:
            self._cal_task_gate = self.calibration.task_gate
            self._cal_flow_gate = self.calibration.flow_gate
            self._cal_request_gate = self.calibration.request_gate

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, requests: List[ServingRequest]) -> List[RequestRecord]:
        """Simulate all ``requests``; returns one record per request.

        Records come back in arrival order.  Event/transfer timestamps in the
        per-request reports are absolute simulation times; each report's
        ``end_to_end_latency_s`` is relative to its request's arrival.

        Under ``stream_stats`` no records are materialized — the run's
        aggregates stream into :meth:`build_report`'s accumulators instead
        and the returned list is empty.
        """
        self.cluster.reset()
        self._events = []
        self._sequence = itertools.count()
        self._nodes = {node.name: _NodeState(node) for node in self.cluster.all_nodes}
        self._states = []
        self._live = {}
        self._open = 0
        self._stats = ServingStats(self.exact_percentiles) if self.stream_stats else None
        self._compiled = {}
        self._inflight = []
        self._node_down_intervals = {}
        self._link_down_intervals = {}
        self.failover_replans = 0
        self.events_processed = 0
        self.batch_occupancy = {}
        self.batches = []
        self._default_source = None
        self._draining = set()
        self._elastic_down = set()
        self._provisioning = set()
        self._group_names = []
        self._util_prev = {}
        # Fleet-membership caches: everything below is a pure function of
        # (down nodes, draining nodes) and membership changes are rare (a
        # handful per run) while the consumers run per request — so each is
        # rebuilt lazily and invalidated by ``_membership_changed``.
        self._membership_rev = 0
        self._membership_key = None
        self._members_cache = None
        self._scale_up_count = 0
        self._scale_down_count = 0
        # Fast-path predicates, resolved once per run: with no fault schedule
        # nodes can never go down (``reset`` heals everything), a scheduler
        # that keeps the base queue key lets enqueue build keys inline, and
        # the plain pop-the-root policies (FIFO/EDF) dispatch without the
        # select() indirection or flush bookkeeping.
        self._faulty = bool(self.faults)
        self._elastic = self.elasticity is not None or self.autoscaler is not None
        self._downable = self._faulty or self._elastic
        self._down_live = self.cluster.down_nodes_live
        self._grouped = self.balancer is not None
        scheduler_type = type(self.scheduler)
        self._base_key = scheduler_type.queue_key is Scheduler.queue_key
        self._pop_select = scheduler_type.select in (
            FifoScheduler.select,
            DeadlineScheduler.select,
        )
        self._memory_on = self.memory is not None
        self._caches = {}
        self._loading = {}
        self._store_node = None
        self._cold_starts = 0
        self._cold_start_s = 0.0
        self._calibrate = self.calibration is not None
        if self._calibrate:
            self._cal_task_gate = self.calibration.task_gate
            self._cal_flow_gate = self.calibration.flow_gate
            self._cal_request_gate = self.calibration.request_gate

        # Fault events enter the queue first, so at equal timestamps a fault
        # precedes every arrival/task/transfer event: a node dying the instant
        # a task would finish kills the task (completion was never confirmed),
        # and a request arriving the instant a node dies sees it dead.
        if self.faults:
            self.faults.validate_against(self.cluster.topology)
            for fault in self.faults:
                self._push(fault.time_s, "fault", fault)

        if self._grouped:
            self.balancer.reset()
        if self.elasticity is not None:
            # Membership events share the faults' equal-timestamp convention:
            # entering the queue before arrivals, a join/drain effective the
            # instant a request arrives is already applied when it arrives.
            self.elasticity.validate_against(self.cluster.topology)
            for name in sorted(self.elasticity.initially_parked()):
                self._park(name)
            for event in self.elasticity:
                self._push(event.time_s, "elastic", event)
        if self.autoscaler is not None:
            self._setup_autoscaler()

        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        self._pending_arrivals = len(ordered)
        for request in ordered:
            self._push(request.arrival_s, "arrival", request)

        # Hot loop: bind everything referenced per event to locals and test
        # event kinds by descending frequency (task ends and transfer ends
        # dominate any serving run by an order of magnitude).
        events = self._events
        pop = heapq.heappop
        handle_task_end = self._handle_task_end
        handle_task_end_direct = self._handle_task_end_direct
        handle_transfer_end = self._handle_transfer_end
        handle_arrival = self._handle_arrival
        processed = 0
        while events:
            time_s, _, kind, payload = pop(events)
            processed += 1
            if kind == "task_end1":
                handle_task_end_direct(time_s, payload)  # type: ignore[arg-type]
            elif kind == "task_end":
                handle_task_end(time_s, payload)  # type: ignore[arg-type]
            elif kind == "transfer_end":
                handle_transfer_end(time_s, payload)  # type: ignore[arg-type]
            elif kind == "arrival":
                handle_arrival(time_s, payload)  # type: ignore[arg-type]
            elif kind == "fault":
                self._handle_fault(time_s, payload)  # type: ignore[arg-type]
            elif kind == "retry":
                self._handle_retry(time_s, payload)  # type: ignore[arg-type]
            elif kind == "coldstart":
                self._handle_cold_start(time_s, payload)  # type: ignore[arg-type]
            elif kind == "flush":
                # A batching hold expired: re-ask the scheduler (no-op when
                # the node went busy or the held work already dispatched).
                node_state = payload  # type: _NodeState
                if node_state.flush_at is not None and node_state.flush_at <= time_s + 1e-12:
                    node_state.flush_at = None
                self._dispatch(node_state, time_s)
            elif kind == "elastic":
                self._handle_elastic(time_s, payload)  # type: ignore[arg-type]
            elif kind == "provisioned":
                self._handle_provisioned(time_s, payload)  # type: ignore[arg-type]
            elif kind == "autoscale":
                self._handle_autoscale_tick(time_s)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        self.events_processed = processed

        if self._stats is not None:
            if self._open:
                raise RuntimeError(
                    f"{self._open} requests finished the event loop with "
                    f"unexecuted stages (dependency deadlock)"
                )
            return []

        # Requests are pushed pre-sorted by (arrival, index), so the state
        # list is already in index order whenever arrival order and index
        # order agree (every workload constructor guarantees it); re-sort
        # only on the exotic hand-built stream where they diverge.
        states = self._states
        for i in range(1, len(states)):
            if states[i - 1].request.index > states[i].request.index:
                states = sorted(states, key=lambda s: s.request.index)
                break
        records = []
        for state in states:
            request = state.request
            if state.rejected:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        model=request.graph.name,
                        arrival_s=request.arrival_s,
                        completion_s=request.arrival_s,
                        report=state.report,
                        status="rejected",
                        slo_ms=request.slo_ms,
                        priority=request.priority,
                    )
                )
                continue
            if state.failed:
                state.report.end_to_end_latency_s = state.failed_at_s - request.arrival_s
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        model=request.graph.name,
                        arrival_s=request.arrival_s,
                        completion_s=state.failed_at_s,
                        report=state.report,
                        status="failed",
                        retries=state.retries,
                        slo_ms=request.slo_ms,
                        priority=request.priority,
                    )
                )
                continue
            if state.remaining_units:
                raise RuntimeError(
                    f"request {request.request_id} finished the event loop "
                    f"with {state.remaining_units} unexecuted stages (dependency deadlock)"
                )
            state.report.end_to_end_latency_s = state.completion_s - request.arrival_s
            records.append(
                RequestRecord(
                    request_id=request.request_id,
                    model=request.graph.name,
                    arrival_s=request.arrival_s,
                    completion_s=state.completion_s,
                    report=state.report,
                    retries=state.retries,
                    slo_ms=request.slo_ms,
                    priority=request.priority,
                )
            )
        return records

    def build_report(self, workload_name: str, records: List[RequestRecord]) -> ServingReport:
        """Aggregate records plus the cluster's utilisation bookkeeping."""
        makespan = 0.0
        start = end = 0.0
        if records:
            start = min(record.arrival_s for record in records)
            end = max(record.completion_s for record in records)
            makespan = end - start
        elif self._stats is not None and self._stats.num_requests:
            start, end = self._stats.makespan_window
            makespan = end - start
        node_down = _clip_downtime(self._node_down_intervals, start, end)
        link_down = _clip_downtime(self._link_down_intervals, start, end)
        compute_j = radio_j = idle_j = cost_usd = 0.0
        if self.economics:
            compute_j, radio_j, idle_j, cost_usd = self._economics_totals(
                makespan, node_down
            )
        return ServingReport(
            workload_name=workload_name,
            records=records,
            makespan_s=makespan,
            node_busy_s={node.name: node.busy_seconds for node in self.cluster.all_nodes},
            link_busy_s={
                # Key by link id: two parallel wires between the same endpoints
                # are distinct links and must report separately.
                link.link_id or "-".join(link.key): link.busy_seconds
                for link in self.cluster.shared_links.values()
            },
            failover_replans=self.failover_replans,
            node_down_s=node_down,
            link_down_s=link_down,
            economics_enabled=self.economics,
            compute_energy_j=compute_j,
            radio_energy_j=radio_j,
            idle_energy_j=idle_j,
            total_cost_usd=cost_usd,
            scale_up_events=self._scale_up_count,
            scale_down_events=self._scale_down_count,
            cold_starts=self._cold_starts,
            weight_cache_hits=sum(c.hits for c in self._caches.values()),
            weight_cache_misses=sum(c.misses for c in self._caches.values()),
            weight_evictions=sum(c.evictions for c in self._caches.values()),
            peak_resident_bytes=max(
                (c.peak_resident_bytes for c in self._caches.values()), default=0
            ),
            cold_start_s=self._cold_start_s,
            scheduler=self.scheduler.name,
            batch_occupancy=dict(sorted(self.batch_occupancy.items())),
            batches=list(self.batches),
            calibration_updates=(
                self.calibration.updates if self.calibration is not None else 0
            ),
            stats=self._stats,
        )

    # ------------------------------------------------------------------ #
    # Economics accounting (report-build time only; never on the hot path)
    # ------------------------------------------------------------------ #
    def _economics_totals(
        self, makespan_s: float, node_down_s: Dict[str, float]
    ) -> Tuple[float, float, float, float]:
        """``(compute J, radio J, idle J, $)`` of the finished run.

        Everything derives from integrals the engine maintains regardless of
        metering, so the accounting is exact under faults, retries and
        elasticity by construction:

        * compute joules — each node's ``busy_seconds`` (already truncated at
          kill instants, never double-billed on retry) times its active power
          ``J/FLOP × effective GFLOP/s``;
        * radio joules — each wire's ``bytes_carried`` (reservations of
          never-started hops are unwound on abort; started wire time stays
          consumed) times the device endpoint's radio J/byte, charged only
          when exactly one endpoint is a radio-equipped device, matching the
          planner's :meth:`TierEconomics.transfer_joules`;
        * idle joules and dollars — each node's powered-on window (makespan
          minus downtime: crashes, parked-before-join and drained-out time
          draw nothing and bill nothing) times idle watts / ``price_per_s``.
        """
        compute_j = idle_j = cost_usd = 0.0
        for node in self.cluster.all_nodes:
            energy = node.hardware.energy
            up_s = max(0.0, makespan_s - node_down_s.get(node.name, 0.0))
            compute_j += node.busy_seconds * energy.active_watts(
                node.hardware.effective_gflops
            )
            idle_j += up_s * energy.idle_watts
            cost_usd += up_s * node.price_per_s
        radio_j = 0.0
        for link in self.cluster.shared_links.values():
            if not link.bytes_carried:
                continue
            src = self._device_radio(link.source)
            dst = self._device_radio(link.destination)
            if (src is None) != (dst is None):
                model = src if src is not None else dst
                radio_j += model.radio_joules(link.bytes_carried)
        return compute_j, radio_j, idle_j, cost_usd

    def _device_radio(self, endpoint: str):
        """The radio :class:`EnergyModel` of a wire endpoint, or ``None``.

        ``endpoint`` is a topology node name or a tier alias; only
        device-tier endpoints with a non-zero radio rate are metered.
        """
        try:
            node = self.cluster.node(endpoint)
        except KeyError:
            try:
                node = self.cluster.primary_node(Tier(endpoint))
            except ValueError:
                return None  # relay or other non-compute endpoint
        if node.tier != Tier.DEVICE:
            return None
        energy = node.hardware.energy
        return energy if energy.radio_joules_per_byte > 0 else None

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time_s, next(self._sequence), kind, payload))

    # ------------------------------------------------------------------ #
    # Request admission
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, time_s: float, request: ServingRequest) -> None:
        self._pending_arrivals -= 1
        state = _RequestState(request, self._resolve_source(request), self._stats is None)
        if self._stats is None:
            self._states.append(state)
        self._live[state] = None
        self._open += 1
        if self._downable:
            name = state.source_node.name
            if self._down_live and name in self._down_live:
                # A source down because its device drained out (or never
                # joined) re-resolves onto a live sibling — membership change
                # is not an outage.  A *crashed* source still fails: the
                # client itself is offline and there is nothing to fail over
                # to.
                fallback = self._resolve_live_source(name)
                if fallback is None:
                    self._fail(state, time_s)
                    return
                state.source_node = fallback
            elif self._draining and name in self._draining:
                # Draining sources stop admitting immediately; steering new
                # arrivals away is also what lets the drain ever finish.
                fallback = self._resolve_live_source(name)
                if fallback is not None:
                    state.source_node = fallback
        if self.scheduler.admission_control and request.slo_ms is not None:
            if not self._build(state):
                self._fail(state, time_s)
                return
            predicted = self._predicted_latency_s(state, time_s)
            if predicted > request.slo_ms / 1e3 + 1e-12:
                # Shedding at the door: serving this request would blow its
                # SLO *and* push everyone queued behind it further out.
                state.rejected = True
                state.epoch += 1
                self._retire(state, "rejected", request.arrival_s)
                return
            self._start_ready_units(state, time_s)
            return
        if not self._activate(state, time_s):
            self._fail(state, time_s)

    def _retire(self, state: _RequestState, status: str, completion_s: float) -> None:
        """Drop a request from the live set the moment it turns terminal.

        Under ``stream_stats`` this is also where the request is *accounted*
        — its aggregates stream into the accumulators — and where its stage
        structures are released (a million-request run never holds more than
        the in-flight window in memory).
        """
        if self._live.pop(state, _MISSING) is _MISSING:
            return  # already retired (idempotent by construction)
        self._open -= 1
        if self._calibrate and status == "completed" and state.retries == 0:
            gate = self._cal_request_gate
            gate.tick += 1
            if not gate.tick % gate.stride:
                request = state.request
                self.calibration.record_request(
                    request.graph.name,
                    completion_s - request.arrival_s,
                    request.ideal_latency_s or 0.0,
                )
        if state.memory_ready is not None:
            # The request left the live set, so _sync_pins will no longer
            # count its residency claims: every model it kept unevictable
            # becomes a candidate victim again.
            state.memory_ready = None
            state.memory_waiting = None
        if self._draining:
            # Every retirement may be the one a graceful drain was waiting
            # on: re-check each draining node for stranded references.
            self._sweep_drains(completion_s)
        if self._stats is not None:
            request = state.request
            self._stats.add(
                status=status,
                arrival_s=request.arrival_s,
                completion_s=completion_s,
                retries=state.retries,
                slo_ms=request.slo_ms,
                priority=request.priority,
                ideal_latency_s=(
                    request.ideal_latency_s
                    if status == "completed" and state.retries == 0
                    else None
                ),
                bytes_to_cloud=state.bytes_to_cloud,
            )
            state.unit_list = []

    def _predicted_latency_s(self, state: _RequestState, time_s: float) -> float:
        """Admission predictor: idle critical path + compute and wire backlog.

        The compute backlog of a node is the *committed, unfinished* solo
        work of every live request bound to it — not just what already sits
        in its ready-queue, since a chain enqueues one stage at a time and a
        queue-depth view would miss almost all of an admitted request's
        remaining work.  The backlog of a wire is its reservation watermark:
        store-and-forward booking pushes ``available_at`` out for every
        queued transfer, so a saturated uplink — the usual bottleneck of
        offloaded inference — is visible at the door.  Compute and wire
        backlogs are taken as one pessimistic maximum each and summed, since
        a request generally crosses its bottleneck wire *and* its bottleneck
        node in series.  Deliberately conservative: batching and parallelism
        can only beat the prediction, and under overload a conservative
        predictor sheds the borderline request that would have missed anyway.
        """
        ideal = state.request.ideal_latency_s or 0.0
        if self._calibrate:
            # Calibrated admission: scale the plan's idle-path estimate by
            # the learned achieved/planned inflation for this model, so a
            # systematically optimistic plan starts shedding earlier.
            ideal *= self.calibration.latency_factor(state.request.graph.name)
        compiled = state.compiled
        touched = (
            compiled.touched_nodes
            if compiled is not None
            else {node.name for unit in state.unit_list for node in unit.exec_nodes}
        )
        committed = self._committed_node_s(touched, exclude=state)
        node_backlog = max(committed.values(), default=0.0)
        link_backlog = 0.0
        if self.link_contention == "fifo":
            for link in self._touched_links(state):
                link_backlog = max(link_backlog, max(0.0, link.available_at - time_s))
        return ideal + node_backlog + link_backlog

    def _committed_node_s(
        self, touched: set, exclude: _RequestState
    ) -> Dict[str, float]:
        """Unfinished solo compute seconds bound to each node in ``touched``
        across every live request (the admitting request itself excluded).

        Iterates the live set — non-terminal requests in arrival order —
        which is exactly the subset (and the order) the historical full-state
        scan accumulated over, without touching the requests that already
        finished: the scan is O(in-flight window), not O(requests ever seen).
        """
        committed = {name: 0.0 for name in touched}
        for state in self._live:
            if state is exclude or state.terminal:
                continue
            for unit in state.unit_list:
                if unit.completed:
                    continue
                for name, duration in unit.compiled.node_costs:
                    if name in committed:
                        committed[name] += duration
        return committed

    def _touched_links(self, state: _RequestState) -> List[SharedLink]:
        """The wires the request's cross-unit edges will traverse.

        Memoized on the compiled plan for fault-free runs (routes cannot
        change then); recomputed against the live route state otherwise.
        """
        compiled = state.compiled
        # Group-bound stages resolve their home per request, so the links a
        # *request* touches are not a property of the compiled plan there.
        memoize = not self.faults and not self._grouped and compiled is not None
        if memoize and compiled.touched_links is not None:
            return compiled.touched_links
        links: Dict[int, SharedLink] = {}
        unit_list = state.unit_list
        for unit in unit_list:
            for _, _, dst_pos, local in unit.out_edges:
                if local:
                    continue
                src, dst = unit.home_node, unit_list[dst_pos].home_node
                if src is None or dst is None:
                    continue
                try:
                    route = self.cluster.route(src.name, dst.name)
                except RouteUnavailableError:
                    continue
                for link in route:
                    links[id(link)] = link
        resolved = list(links.values())
        if memoize:
            compiled.touched_links = resolved
        return resolved

    def _activate(self, state: _RequestState, time_s: float) -> bool:
        """(Re)build the request's stages against the live nodes and start
        every stage with no pending inputs; False when a needed tier is
        entirely down."""
        if not self._build(state):
            return False
        self._start_ready_units(state, time_s)
        return True

    def _build(self, state: _RequestState) -> bool:
        """(Re)build the request's stages; False when a needed tier is
        entirely down.  Admission control peeks between build and start."""
        try:
            self._build_units(state)
        except _NoNodeAvailable:
            return False
        return True

    def _start_ready_units(self, state: _RequestState, time_s: float) -> None:
        epoch = state.epoch
        for unit in state.unit_list:
            if unit.waiting == 0:
                self._start_unit(state, unit, time_s)
                if state.epoch != epoch or state.failed:
                    # A group-bound stage found no live replica and aborted
                    # the attempt; the remaining units belong to a discarded
                    # plan.
                    return

    def _build_units(self, state: _RequestState) -> None:
        """Instantiate the request's stages from the shared compiled plan."""
        compiled = self._compiled_for(state)
        state.compiled = compiled
        state.unit_list = [_Unit(state, unit) for unit in compiled.units]
        state.remaining_units = len(state.unit_list)
        if self._calibrate:
            # Task observation samples whole *requests*, not units: in a
            # discrete-event run the priced durations ARE the execution
            # times, so recording the compiled tasks here is value-identical
            # to recording them at dispatch while costing one inlined gate
            # check per request instead of one per unit (the difference is
            # most of the calibrated cell's hot-path budget).  Group-bound
            # stages have no tasks yet (their replica resolves at dispatch)
            # and simply fall out of the sample.
            gate = self._cal_task_gate
            gate.tick += 1
            if not gate.tick % gate.stride:
                calibration = self.calibration
                for unit in state.unit_list:
                    tasks = unit.tasks
                    if tasks:
                        tier = unit.tier
                        calibration.record_tasks(
                            tasks, getattr(tier, "value", tier)
                        )
        # A rebuilt attempt re-chooses its replica: the balancer's pick is
        # per attempt, and the failover may exist precisely because the old
        # member died.
        state.group_node_state = None

    def _compiled_for(self, state: _RequestState) -> _CompiledPlan:
        """The compiled stage structure for the request's current attempt.

        Keyed by the identity of the plan objects, the source node, and — on
        faulted runs only — the set of down nodes at compile time (node
        liveness can only change through fault events, so fault-free runs
        compile each distinct plan exactly once for the whole stream).
        ``refs`` pins the keyed objects so a recycled ``id()`` can never
        alias a different plan.
        """
        request = state.request
        if self._downable:
            # Membership changes (drains count: they stop admitting before
            # the node goes down) re-key compilation exactly like faults do.
            # The frozen pair is rebuilt only after a membership change —
            # per request it is a cache read.
            membership = self._membership_key
            if membership is None:
                membership = self._membership_key = (
                    frozenset(self.cluster.down_nodes),
                    frozenset(self._draining),
                )
        else:
            membership = None
        key = (
            id(request.graph),
            id(request.plan),
            id(request.profile),
            id(request.vsm_plan),
            state.source_node.name,
            membership,
        )
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self._compile_plan(request, state.source_node)
            compiled.refs = (
                request.graph,
                request.plan,
                request.profile,
                request.vsm_plan,
            )
            self._compiled[key] = compiled
        return compiled

    def _compile_plan(
        self, request: ServingRequest, source_node: ComputeNode
    ) -> _CompiledPlan:
        """Compile a request's plan into shared stage templates.

        Replicates — operation for operation, in the same order — what the
        engine historically recomputed per request: unit grouping and
        topological ranks, node binding against the nodes that are up *now*
        (raising :class:`_NoNodeAvailable` when a needed tier is dark),
        cross-unit dependency counts and edges, and the per-task solo
        durations and labels.  Keeping the float arithmetic identical is
        what keeps the golden traces bit-identical.
        """
        graph = request.graph
        profile = request.profile
        topo = graph.topological_order()
        topo_rank = {v.index: rank for rank, v in enumerate(topo)}

        fused_member: Dict[int, FusedRunPlan] = {}
        if request.vsm_plan is not None:
            for run in request.vsm_plan.runs:
                for vertex in run.vertices:
                    fused_member[vertex.index] = run

        units: List[_CompiledUnit] = []
        by_vertex: Dict[int, _CompiledUnit] = {}
        run_units: Dict[int, _CompiledUnit] = {}
        for vertex in topo:
            run = fused_member.get(vertex.index)
            if run is not None:
                unit = run_units.get(id(run))
                if unit is None:
                    unit = _CompiledUnit(Tier.EDGE, list(run.vertices), run)
                    unit.topo_key = topo_rank[run.vertices[0].index]
                    unit.pos = len(units)
                    run_units[id(run)] = unit
                    units.append(unit)
            else:
                tier = request.plan.tier_of(vertex.index)
                unit = _CompiledUnit(tier, [vertex], None)
                unit.topo_key = topo_rank[vertex.index]
                unit.pos = len(units)
                units.append(unit)
            by_vertex[vertex.index] = unit

        # Bind every unit to the nodes that are up now (snapshot): non-tiled
        # work on each tier's primary live node, fused runs fanned round-robin
        # over the live edge rack, device work pinned to the request's source.
        live: Dict[Tier, List[ComputeNode]] = {}

        def tier_nodes(tier: Tier) -> List[ComputeNode]:
            nodes = live.get(tier)
            if nodes is None:
                nodes = self.cluster.active_nodes(tier)
                if self._draining:
                    # Draining nodes admit no new plans; if a fault downed
                    # every non-draining sibling, binding to a draining node
                    # beats failing the request outright.
                    nodes = [n for n in nodes if n.name not in self._draining] or nodes
                if not nodes:
                    raise _NoNodeAvailable(tier.value)
                live[tier] = nodes
            return nodes

        grouped = self._grouped
        for unit in units:
            if unit.run is not None:
                edge_nodes = tier_nodes(Tier.EDGE)
                unit.exec_nodes = [
                    edge_nodes[i % len(edge_nodes)] for i in range(len(unit.run.stacks))
                ]
                unit.home_node = edge_nodes[0]
            elif unit.tier == Tier.DEVICE:
                unit.exec_nodes = [source_node]
                unit.home_node = source_node
            elif grouped and unit.tier == Tier.EDGE:
                # Group-bound: the stage targets the edge *replica group*;
                # the balancer resolves a member per request at dispatch
                # time.  Compilation only proves the tier is not dark.
                tier_nodes(Tier.EDGE)
            else:
                node = tier_nodes(unit.tier)[0]
                unit.exec_nodes = [node]
                unit.home_node = node

        # Incoming cross-unit edge counts, in the historical vertex order.
        for vertex in topo:
            unit = by_vertex[vertex.index]
            for pred in graph.predecessors(vertex.index):
                if by_vertex[pred.index] is not unit:
                    unit.waiting += 1

        # Outgoing cross-unit edges, in the historical delivery order
        # (member vertices in unit order, then graph successors).
        for unit in units:
            for vertex in unit.vertices:
                for successor in graph.successors(vertex.index):
                    successor_unit = by_vertex[successor.index]
                    if successor_unit is not unit:
                        unit.out_edges.append(
                            (
                                vertex,
                                successor,
                                successor_unit.pos,
                                unit.home_node is successor_unit.home_node,
                            )
                        )

        # Per-task solo durations and labels — the exact arithmetic (and
        # accumulation order) of the historical per-request start path.
        for unit in units:
            if unit.run is None:
                vertex = unit.vertices[0]
                if not unit.exec_nodes:
                    # Group-bound stage: store the raw profile duration; the
                    # per-request resolution divides by the chosen member's
                    # speed factor (members may be heterogeneous).
                    unit.group_tasks = [(profile.get(vertex.index, unit.tier), vertex.name)]
                    continue
                node = unit.exec_nodes[0]
                duration = profile.get(vertex.index, unit.tier)
                unit.tasks.append(
                    (node, duration / node.speed_factor, vertex.name, self._nodes[node.name])
                )
            else:
                run = unit.run
                for stack_index, stack in enumerate(run.stacks):
                    node = unit.exec_nodes[stack_index]
                    duration = 0.0
                    for position, vertex in enumerate(run.vertices):
                        fraction = stack.work_fraction(
                            position, run.layer_output_area(position)
                        )
                        duration += profile.get(vertex.index, Tier.EDGE) * fraction
                    label = (
                        f"tile{stack.grid_position}:"
                        f"{run.vertices[0].name}..{run.vertices[-1].name}"
                    )
                    unit.tasks.append(
                        (node, duration / node.speed_factor, label, self._nodes[node.name])
                    )
                unit.gather_label = f"gather:{unit.vertices[-1].name}"
            unit.node_costs = [(node.name, cost) for node, cost, _, _ in unit.tasks]

        plan = _CompiledPlan(units)
        plan.touched_nodes = frozenset(
            node.name for unit in units for node in unit.exec_nodes
        )
        if self._memory_on:
            # Per-node residency footprint of this plan's model: the weight
            # bytes of every stage bound to the node plus the peak activation
            # working set among them.  Group-bound stages resolve their node
            # per request, so their footprint is kept aside and added to
            # whichever member the balancer sticks the request to.
            artifact = self.memory.artifact_for(graph)
            node_weight: Dict[str, int] = {}
            node_activation: Dict[str, int] = {}
            group_weight = 0
            group_activation = 0
            for unit in units:
                indices = [v.index for v in unit.vertices]
                weight = artifact.weight_bytes_for(indices)
                activation = artifact.activation_bytes_for(indices)
                if unit.group_tasks is not None:
                    group_weight += weight
                    group_activation = max(group_activation, activation)
                    continue
                seen = set()
                for node in unit.exec_nodes:
                    if node.name in seen:
                        continue  # tile fans replicate weights once per node
                    seen.add(node.name)
                    node_weight[node.name] = node_weight.get(node.name, 0) + weight
                    node_activation[node.name] = max(
                        node_activation.get(node.name, 0), activation
                    )
            plan.node_weight_bytes = node_weight
            plan.node_entry_bytes = {
                name: weight + node_activation[name]
                for name, weight in node_weight.items()
            }
            plan.group_weight_bytes = group_weight
            plan.group_entry_bytes = group_weight + group_activation
        return plan

    # ------------------------------------------------------------------ #
    # Stage execution
    # ------------------------------------------------------------------ #
    def _resolve_source(self, request: ServingRequest) -> ComputeNode:
        """The device node a request's device-tier work runs on."""
        if request.source is None:
            # The primary device is a pure topology lookup (independent of
            # liveness, which is checked separately at arrival): cache it.
            node = self._default_source
            if node is None:
                node = self._default_source = self.cluster.primary_node(Tier.DEVICE)
            return node
        node = self.cluster.node(request.source)
        if node.tier != Tier.DEVICE:
            raise ValueError(
                f"request {request.request_id!r} pins source {request.source!r}, "
                f"which is a {node.tier.value} node, not a device"
            )
        return node

    def _start_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        """Enqueue the unit's compiled tasks (solo vertex or fused tile fan).

        Durations and labels were priced at compile time; starting a stage is
        just allocating one :class:`_Task` per compiled entry.
        """
        tasks = unit.tasks
        if not tasks:
            # Group-bound stage (the only units compiled without tasks):
            # resolve the replica for this request now.  Steady-state hit —
            # sticky member already chosen, membership unchanged, member
            # already priced — inlined; everything else takes the slow path.
            node_state = state.group_node_state
            if node_state is not None and state.group_rev == self._membership_rev:
                cache = unit.compiled.group_cache
                if cache is not None:
                    tasks = cache.get(node_state.node.name)
            if tasks:
                unit.tasks = tasks
                unit.home_node = node_state.node
            else:
                tasks = self._resolve_group_unit(state, unit, time_s)
                if tasks is None:
                    self._abort(state, time_s)
                    return
        if self._memory_on:
            # Residency fast path: when the request has already verified (and
            # pinned) its model on a superset of this unit's nodes, one frozen
            # set comparison replaces the whole per-task scan.
            ready_set = state.memory_ready
            names = unit.compiled.task_nodes
            if (
                ready_set is None or names is None or not ready_set >= names
            ) and not self._ensure_resident(state, unit, tasks, time_s):
                # The model is not resident on every task node yet: the unit
                # is parked as a loading waiter (or the attempt already
                # failed) and re-enters here when its cold start completes.
                return
        unit.remaining_tasks = len(tasks)
        epoch = state.epoch
        if self._base_key:
            # Base scheduler key is ``(request index, topo rank, seq)`` —
            # built inline, skipping the queue_key indirection per task.
            index = state.request.index
            topo = unit.topo_key
            sequence = self._sequence
            push = heapq.heappush
            direct = self._pop_select and not self._faulty
            stream = self._stats is not None
            events = self._events
            occupancy = self.batch_occupancy
            for node, duration, label, node_state in tasks:
                if direct and not node_state.busy and not node_state.queue:
                    # Idle node + empty queue + pop-the-root scheduler: this
                    # task is exactly what a queue round-trip would hand
                    # back, so run it now — no :class:`_Task`, no key tuple,
                    # no heappush/heappop, no dispatch call.  Fault-free
                    # runs only, which is also why no ``current`` membership
                    # is recorded: nothing can die mid-flight, so the kill
                    # path that reads it is unreachable.
                    if duration < 0:
                        raise ValueError("duration cannot be negative")
                    compute = node_state.node
                    available = compute.available_at
                    start = available if available > time_s else time_s
                    end = start + duration
                    compute.available_at = end
                    compute.busy_seconds += duration
                    node_state.busy = True
                    if not stream:
                        state.report.events.append(
                            TimelineEvent(
                                node=compute.name,
                                tier=unit.tier,
                                label=label,
                                kind="compute",
                                start_s=start,
                                end_s=end,
                                request_id=state.request.request_id,
                            )
                        )
                    run_id = node_state.run_id + 1
                    node_state.run_id = run_id
                    occupancy[1] = occupancy.get(1, 0) + 1
                    push(
                        events,
                        (end, next(sequence), "task_end1", (node_state, unit, run_id)),
                    )
                    continue
                task = _Task(unit, node, duration, label, epoch, time_s)
                push(node_state.queue, ((index, topo, next(sequence)), task))
                if not node_state.busy:
                    self._dispatch(node_state, time_s)
        else:
            for node, duration, label, node_state in tasks:
                task = _Task(unit, node, duration, label, epoch, time_s)
                key = self.scheduler.queue_key(task, next(self._sequence))
                heapq.heappush(node_state.queue, (key, task))
                if not node_state.busy:
                    self._dispatch(node_state, time_s)

    def _prune_queue(self, node_state: _NodeState) -> None:
        """Drop queued tasks of aborted or terminal attempts, so the
        scheduler only ever reasons over live work.

        Only runs when an abort flagged the node as dirty — on the fault-free
        path every queued task is live by construction and dispatch stays
        scan-free.
        """
        if not node_state.dirty:
            return
        node_state.dirty = False
        tombstones = node_state.tombstones
        node_state.queue = [
            entry
            for entry in node_state.queue
            if entry[1] not in tombstones
            and entry[1].epoch == entry[1].unit.state.epoch
            and not entry[1].unit.state.failed
        ]
        tombstones.clear()
        heapq.heapify(node_state.queue)

    def _mark_queues_dirty(self, state: _RequestState) -> None:
        """Flag the nodes that may hold queued tasks of a dying attempt."""
        for unit in state.unit_list:
            home = unit.home_node
            if home is not None:
                # Group-bound stages carry no compiled exec_nodes; their
                # queued tasks live on the per-request resolved member.
                node_state = self._nodes.get(home.name)
                if node_state is not None:
                    node_state.dirty = True
            for node in unit.exec_nodes:
                node_state = self._nodes.get(node.name)
                if node_state is not None:
                    node_state.dirty = True

    def _dispatch(self, node_state: _NodeState, time_s: float) -> None:
        """Ask the scheduler for the next dispatch if the node is idle.

        Tasks whose attempt was aborted are discarded here; a down node
        dispatches nothing until it recovers.  The scheduler may return a
        deferral instead of work (a batching hold), in which case a flush
        event re-asks at the hold's deadline.
        """
        if node_state.busy:
            return
        if self._down_live and node_state.node.name in self._down_live:
            return
        if node_state.dirty:
            self._prune_queue(node_state)
        queue = node_state.queue
        tombstones = node_state.tombstones
        if tombstones:
            # Lazily deleted batch members surface at the root eventually;
            # purge them here so the scheduler never sees consumed work.
            while queue and queue[0][1] in tombstones:
                tombstones.discard(heapq.heappop(queue)[1])
        if not queue:
            return
        if self._pop_select:
            # FIFO/EDF pop the heap root and never defer: dispatch directly,
            # skipping the select() indirection and flush bookkeeping.
            self._start_dispatch(node_state, [heapq.heappop(queue)[1]], time_s)
            return
        tasks, flush_at = self.scheduler.select(node_state, time_s)
        if not tasks:
            if flush_at is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"scheduler {self.scheduler.name!r} returned neither work "
                    f"nor a flush deadline for a non-empty queue"
                )
            # Deduplicate: every enqueue/task_end during a hold re-asks the
            # scheduler, but one pending flush per node deadline is enough.
            if node_state.flush_at is None or flush_at < node_state.flush_at - 1e-12:
                node_state.flush_at = flush_at
                self._push(flush_at, "flush", node_state)
            return
        node_state.flush_at = None
        self._start_dispatch(node_state, tasks, time_s)

    def _start_dispatch(
        self, node_state: _NodeState, tasks: List[_Task], time_s: float
    ) -> None:
        """Run one scheduler dispatch — a solo task or a micro-batch — on the
        node.  A batch occupies the node once, for the hardware's sublinear
        batch cost, and every member records a timeline event spanning it."""
        if len(tasks) == 1:
            # Solo dispatch — the engine's hottest code path by far.  Inlines
            # ``ComputeNode.schedule`` (same operations, same order).
            task = tasks[0]
            duration = task.duration_s
            if duration < 0:
                raise ValueError("duration cannot be negative")
            node = node_state.node
            available = node.available_at
            start = available if available > time_s else time_s
            end = start + duration
            node.available_at = end
            node.busy_seconds += duration
            node_state.busy = True
            if self._stats is None:
                state = task.unit.state
                events = state.report.events
                events.append(
                    TimelineEvent(
                        node=node.name,
                        tier=task.unit.tier,
                        label=task.label,
                        kind="compute",
                        start_s=start,
                        end_s=end,
                        request_id=state.request.request_id,
                    )
                )
                members = [(task, events, len(events) - 1)]
            else:
                members = [(task, None, 0)]
            run_id = node_state.run_id + 1
            node_state.run_id = run_id
            node_state.current = (members, end)
            occupancy = self.batch_occupancy
            occupancy[1] = occupancy.get(1, 0) + 1
            heapq.heappush(
                self._events,
                (end, next(self._sequence), "task_end", (node_state, tasks, run_id)),
            )
            return
        solo = [task.duration_s for task in tasks]
        duration = batch_cost_s(solo, node_state.node.hardware.batch_exponent)
        start, end = node_state.node.schedule(time_s, duration)
        node_state.busy = True
        members = []
        if self._stats is None:
            for task in tasks:
                state = task.unit.state
                label = (
                    task.label if len(tasks) == 1 else f"batch[{len(tasks)}]:{task.label}"
                )
                state.report.events.append(
                    TimelineEvent(
                        node=node_state.node.name,
                        tier=task.unit.tier,
                        label=label,
                        kind="compute",
                        start_s=start,
                        end_s=end,
                        request_id=state.request.request_id,
                    )
                )
                members.append((task, state.report.events, len(state.report.events) - 1))
        else:
            # Streaming mode materializes no timelines; members still carry
            # the tasks so a node death can flag their requests.
            for task in tasks:
                members.append((task, None, 0))
        node_state.run_id += 1
        node_state.current = (members, end)
        self.batch_occupancy[len(tasks)] = self.batch_occupancy.get(len(tasks), 0) + 1
        if len(tasks) > 1 and self._stats is None:
            self.batches.append(
                BatchRecord(
                    node=node_state.node.name,
                    label=tasks[0].label,
                    size=len(tasks),
                    start_s=start,
                    end_s=end,
                    longest_solo_s=max(solo),
                    total_solo_s=sum(solo),
                )
            )
        self._push(end, "task_end", (node_state, tasks, node_state.run_id))

    def _handle_task_end_direct(
        self, time_s: float, payload: Tuple[_NodeState, _Unit, int]
    ) -> None:
        """Completion of a direct dispatch (``task_end1``): exactly one task,
        started on an idle node of a fault-free pop-the-root run, so the
        epoch/failure screening of :meth:`_handle_task_end` is vacuous and
        the payload carries the unit itself rather than a task list."""
        node_state, unit, run_id = payload
        if run_id != node_state.run_id:  # pragma: no cover - defensive
            return
        node_state.busy = False
        unit.remaining_tasks -= 1
        if unit.remaining_tasks == 0:
            self._complete_unit(unit.state, unit, time_s)
        if node_state.queue:
            self._dispatch(node_state, time_s)
        elif self._draining and node_state.node.name in self._draining:
            self._maybe_complete_drain(node_state.node.name, time_s)

    def _handle_task_end(
        self, time_s: float, payload: Tuple[_NodeState, List[_Task], int]
    ) -> None:
        node_state, tasks, run_id = payload
        if run_id != node_state.run_id:
            # The node died while this dispatch was on it; the reservation
            # was rolled back and the owning requests already aborted.
            return
        node_state.busy = False
        node_state.current = None
        for task in tasks:
            unit = task.unit
            state = unit.state
            if task.epoch == state.epoch and not state.failed:
                unit.remaining_tasks -= 1
                if unit.remaining_tasks == 0:
                    self._complete_unit(state, unit, time_s)
        if node_state.queue:
            # An empty ready-queue needs no scheduler consult — the node
            # simply goes idle (completions above may have refilled it, in
            # which case their enqueue already saw ``busy`` and left the
            # dispatch to us).
            self._dispatch(node_state, time_s)
        elif self._draining and node_state.node.name in self._draining:
            self._maybe_complete_drain(node_state.node.name, time_s)

    def _complete_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        state.remaining_units -= 1
        unit.completed = True
        if time_s > state.completion_s:
            state.completion_s = time_s
        if state.report is not None and unit.run is not None:
            state.report.events.append(
                TimelineEvent(
                    node=unit.home_node.name,
                    tier=Tier.EDGE,
                    label=unit.gather_label,
                    kind="gather",
                    start_s=time_s,
                    end_s=time_s,
                    request_id=state.request.request_id,
                )
            )
        epoch = state.epoch
        unit_list = state.unit_list
        for producer, consumer, dst_pos, local in unit.out_edges:
            if local:
                # Same-node delivery is free and cannot abort the attempt
                # (no route, no reservation): hand the edge over directly.
                # Group-bound pairs compile as local too — the sticky
                # balancer choice puts both stages on one member — so the
                # started stage *can* abort (no live replica); check.
                dst_unit = unit_list[dst_pos]
                dst_unit.waiting -= 1
                if dst_unit.waiting == 0:
                    self._start_unit(state, dst_unit, time_s)
                    if state.epoch != epoch or state.failed:
                        return
                continue
            self._deliver_edge(state, producer, unit, consumer, unit_list[dst_pos], time_s)
            if state.epoch != epoch or state.failed:
                # A severed route aborted the attempt mid-delivery; the
                # remaining edges belong to a discarded plan.
                return
        if state.remaining_units == 0:
            state.done = True
            self._retire(state, "completed", state.completion_s)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def _deliver_edge(
        self,
        state: _RequestState,
        producer: Vertex,
        src_unit: _Unit,
        consumer: Vertex,
        dst_unit: _Unit,
        time_s: float,
    ) -> None:
        src_node = src_unit.home_node
        dst_node = dst_unit.home_node
        if dst_node is None:
            # Group-bound consumer not yet resolved: bind it now, so the
            # transfer addresses the member this request will run on (same
            # inlined steady-state hit as ``_start_unit``).
            node_state = state.group_node_state
            tasks = None
            if node_state is not None and state.group_rev == self._membership_rev:
                cache = dst_unit.compiled.group_cache
                if cache is not None:
                    tasks = cache.get(node_state.node.name)
            if tasks:
                dst_unit.tasks = tasks
                dst_unit.home_node = node_state.node
            elif self._resolve_group_unit(state, dst_unit, time_s) is None:
                self._abort(state, time_s)
                return
            dst_node = dst_unit.home_node
        if src_node is dst_node:
            # Same-node movement is free (the paper's intra-tier assumption).
            self._arrive(dst_unit, time_s)
            return
        request = state.request
        payload = producer.output_bytes
        # The transfer follows the topology's route — detouring around dark
        # wires and dead relays — and crosses every hop store-and-forward;
        # each hop is priced at the moment it starts and serialized on its
        # own link under FIFO contention.  A severed route aborts the attempt
        # and sends the request into failover.
        try:
            route = self.cluster.route(src_node.name, dst_node.name)
        except RouteUnavailableError:
            self._abort(state, time_s)
            return
        overall_start: Optional[float] = None
        clock = time_s
        hops: List[Tuple[SharedLink, float, float, int]] = []
        for link in route:
            if self.link_contention == "fifo":
                # Price the hop at the moment it actually starts: a transfer
                # queued behind a backlog on a traced wire pays the rate in
                # effect when the wire frees, not the rate at request time.
                starts_at = max(clock, link.available_at)
                duration = self.cluster.hop_seconds(
                    link, payload, request.condition, starts_at
                )
                start, end = link.reserve(clock, duration, payload)
                if self.faults:
                    hops.append((link, start, end, payload))
            else:
                duration = self.cluster.hop_seconds(link, payload, request.condition, clock)
                start, end = clock, clock + duration
                link.record(duration, payload)
            if overall_start is None:
                overall_start = start
            clock = end
            if self._calibrate:
                gate = self._cal_flow_gate
                gate.tick += 1
                if not gate.tick % gate.stride:
                    self.calibration.record_transfer(
                        link.link_id or "-".join(link.key), payload, duration
                    )
        if overall_start is None:  # pragma: no cover - routes are never empty here
            self._arrive(dst_unit, time_s)
            return
        if self._calibrate:
            gate = self._cal_flow_gate
            gate.tick += 1
            if not gate.tick % gate.stride:
                # Tier-pair effective rate over the whole route (queueing +
                # store-and-forward included) — the quantity the planner's
                # harmonic tier-pair view approximates.
                self.calibration.record_route(
                    getattr(src_unit.tier, "value", src_unit.tier),
                    getattr(dst_unit.tier, "value", dst_unit.tier),
                    payload,
                    clock - overall_start,
                )
        if state.report is not None:
            state.report.transfers.append(
                TensorTransfer(
                    producer=producer.name,
                    consumer=consumer.name,
                    source_tier=src_unit.tier,
                    destination_tier=dst_unit.tier,
                    payload_bytes=payload,
                    start_s=overall_start,
                    duration_s=clock - overall_start,
                    request_id=request.request_id,
                )
            )
        elif dst_unit.tier == Tier.CLOUD and src_unit.tier != Tier.CLOUD:
            # Streaming mode: account backbone traffic directly (the exact
            # predicate of ``TensorTransfer.crosses_backbone``).
            state.bytes_to_cloud += payload
        if self.faults:
            link_ids = frozenset(
                link.link_id or "-".join(link.key) for link in route
            )
            self._inflight.append(
                _Inflight(
                    end_s=clock,
                    link_ids=link_ids,
                    src=src_node.name,
                    dst=dst_node.name,
                    state=state,
                    epoch=state.epoch,
                    hops=hops,
                )
            )
        self._push(clock, "transfer_end", (dst_unit, state.epoch))

    def _handle_transfer_end(self, time_s: float, payload: Tuple[_Unit, int]) -> None:
        unit, epoch = payload
        state = unit.state
        if self._inflight and len(self._inflight) > 64:
            # Bound the in-flight registry during long healthy stretches of a
            # faulted run; drained rows are only otherwise pruned at faults.
            self._inflight = [t for t in self._inflight if t.end_s > time_s]
        if epoch != state.epoch or state.failed:
            return
        self._arrive(unit, time_s)

    def _arrive(self, unit: _Unit, time_s: float) -> None:
        unit.waiting -= 1
        if unit.waiting == 0:
            self._start_unit(unit.state, unit, time_s)

    # ------------------------------------------------------------------ #
    # Weight residency and cold starts (memory-constrained runs only)
    # ------------------------------------------------------------------ #
    def _cache_for(self, node: ComputeNode) -> WeightCache:
        cache = self._caches.get(node.name)
        if cache is None:
            cache = WeightCache(
                node.name, self.memory.capacity_bytes(node), self.memory.eviction
            )
            self._caches[node.name] = cache
        return cache

    def _ensure_resident(
        self, state: _RequestState, unit: _Unit, tasks: list, time_s: float
    ) -> bool:
        """True when every task node holds the request's model.

        A miss registers the unit as a waiter on the node's in-flight load —
        starting one if none is — and returns False; the ``coldstart``
        completion event re-enters :meth:`_start_unit` for every waiter.
        Verified nodes are claimed once per (request, node) on the request's
        ``memory_ready`` set; the claim keeps the model unevictable there
        for the request's lifetime (see :meth:`_sync_pins`), so the warm
        path is a set probe plus inline hit accounting — no per-dispatch
        pin refcounting.
        """
        model = state.request.graph.name
        ready_nodes = state.memory_ready
        if ready_nodes is None:
            ready_nodes = state.memory_ready = set()
        waiting_nodes = state.memory_waiting
        caches = self._caches
        compiled = state.compiled
        grouped_here = unit.compiled.group_tasks is not None
        ready = True
        for entry in tasks:
            node = entry[3].node
            name = node.name
            if name in ready_nodes:
                # Steady-state fast path: this request already verified (and
                # thereby claimed) its model here — the claim makes eviction
                # impossible until the request turns terminal.
                continue
            if waiting_nodes is not None and name in waiting_nodes:
                waiters = self._loading.get((name, model))
                if waiters is not None:
                    # An earlier stage of this request started (or joined)
                    # the load and it is still in flight: this unit must
                    # wait on it too (each waiter re-enters independently).
                    waiter = (state, unit, state.epoch)
                    if waiter not in waiters:
                        waiters.append(waiter)
                    ready = False
                    continue
                loaded = caches.get(name)
                if loaded is not None and model in loaded._entries:
                    # The load this request missed on has completed: claim
                    # the node without touching the hit counters — this is
                    # the tail of the original (already recorded) miss, not
                    # a fresh lookup.
                    ready_nodes.add(name)
                    continue
                # Not resident and no load in flight (the admission failed
                # for another waiter, or the entry was since evicted): this
                # is a fresh lookup — fall through to the miss path.
            cache = caches.get(name)
            if cache is None:
                cache = self._cache_for(node)
            centry = cache._entries.get(model)
            if centry is not None:
                # Inline ``WeightCache.record_hit``: refresh recency, bump
                # frequency — once per (request, node), on the path every
                # warm request crosses, where method dispatch is measurable.
                tick = cache._tick + 1
                cache._tick = tick
                centry.last_used = tick
                centry.hits += 1
                cache.hits += 1
                ready_nodes.add(name)
                continue
            cache.misses += 1
            if waiting_nodes is None:
                waiting_nodes = state.memory_waiting = set()
            waiting_nodes.add(name)
            key = (name, model)
            waiters = self._loading.get(key)
            if waiters is not None:
                waiters.append((state, unit, state.epoch))
                ready = False
                continue
            entry_bytes = compiled.node_entry_bytes.get(name, 0)
            weight_bytes = compiled.node_weight_bytes.get(name, 0)
            if grouped_here:
                entry_bytes += compiled.group_entry_bytes
                weight_bytes += compiled.group_weight_bytes
            if self.memory.warm:
                delay_s = 0.0
            else:
                delay_s = self._cold_start_delay(state, node, weight_bytes, time_s)
                if delay_s is None:
                    # No route from the artifact store: failover, exactly as
                    # a severed activation transfer would.
                    self._abort(state, time_s)
                    return False
            self._cold_starts += 1
            if delay_s <= 0.0:
                if not self._admit_entry(cache, model, entry_bytes, state, time_s):
                    return False
                ready_nodes.add(name)
                continue
            self._cold_start_s += delay_s
            self._loading[key] = [(state, unit, state.epoch)]
            if state.report is not None:
                state.report.events.append(
                    TimelineEvent(
                        node=name,
                        tier=unit.tier,
                        label=f"load:{model}",
                        kind="coldstart",
                        start_s=time_s,
                        end_s=time_s + delay_s,
                        request_id=state.request.request_id,
                    )
                )
            self._push(time_s + delay_s, "coldstart", (name, model, entry_bytes))
            ready = False
        if ready and not grouped_here and unit.compiled.task_nodes is None:
            # Statically bound unit fully verified: publish its node-name set
            # on the shared compiled structure so every later request (and
            # every later unit sharing these nodes) takes the fast path.
            unit.compiled.task_nodes = frozenset(
                entry[3].node.name for entry in tasks
            )
        return ready

    def _cold_start_delay(
        self, state: _RequestState, node: ComputeNode, weight_bytes: int, time_s: float
    ) -> Optional[float]:
        """Seconds to stage the model onto ``node``: the compressed weights
        cross the declared wires from the cloud artifact store (reserving
        them, store-and-forward, exactly like activation transfers), then
        decompress at the codec's read throughput.  ``None`` when no route
        exists.  Loads onto the store node itself skip the wires."""
        codec = self.memory.codec_spec
        store = self._store_node
        if store is None:
            store = self._store_node = self.cluster.primary_node(Tier.CLOUD)
        clock = time_s
        if weight_bytes > 0 and node.name != store.name:
            try:
                route = self.cluster.route(store.name, node.name)
            except RouteUnavailableError:
                return None
            payload = codec.compressed_bytes(weight_bytes)
            condition = state.request.condition
            if self.link_contention == "fifo":
                for link in route:
                    starts_at = max(clock, link.available_at)
                    duration = self.cluster.hop_seconds(
                        link, payload, condition, starts_at
                    )
                    _, end = link.reserve(clock, duration, payload)
                    clock = end
            else:
                for link in route:
                    duration = self.cluster.hop_seconds(link, payload, condition, clock)
                    link.record(duration, payload)
                    clock += duration
        clock += codec.decompress_seconds(weight_bytes)
        return clock - time_s

    def _sync_pins(self, cache: WeightCache) -> None:
        """Rebuild the cache's pin table from live-request claims.

        The hot path records residency claims on the requests themselves
        (``memory_ready``) instead of refcounting cache pins per dispatch.
        The pin table is only ever consulted when an admission actually has
        to evict, so it is reconstructed here — once per pressured
        admission, from the in-flight window plus the loads in flight —
        rather than maintained twice per request-node across a
        million-request stream.  Claim lifetime equals the old pin
        lifetime exactly: taken when a stage verifies (or starts loading)
        the model on the node, dropped when the request retires or the
        attempt aborts.
        """
        node_name = cache.node
        pins: Dict[str, int] = {}
        for state in self._live:
            ready_nodes = state.memory_ready
            if ready_nodes and node_name in ready_nodes:
                model = state.request.graph.name
                pins[model] = pins.get(model, 0) + 1
        for load_node, model in self._loading:
            if load_node == node_name:
                pins[model] = pins.get(model, 0) + 1
        cache._pins = pins

    def _admit_entry(
        self,
        cache: WeightCache,
        model: str,
        entry_bytes: int,
        state: _RequestState,
        time_s: float,
    ) -> bool:
        """Admit a loaded entry; an overflow the cache cannot evict its way
        out of (everything else pinned, or the entry alone exceeds capacity)
        fails the request — there is no node to fall back to."""
        if cache.resident_bytes + entry_bytes > cache.capacity_bytes:
            # Admission under pressure: eviction (and the immovable check)
            # will consult the pin table, so bring it up to date first.
            self._sync_pins(cache)
        try:
            cache.admit(model, entry_bytes)
        except CapacityError:
            self._fail(state, time_s)
            return False
        return True

    def _handle_cold_start(
        self, time_s: float, payload: Tuple[str, str, int]
    ) -> None:
        """A staged artifact finished transferring + decompressing: admit it
        and restart every waiter whose attempt is still the live one."""
        node_name, model, entry_bytes = payload
        cache = self._caches[node_name]
        waiters = self._loading.pop((node_name, model), [])
        survivors = [
            (state, unit, epoch)
            for state, unit, epoch in waiters
            if state.epoch == epoch and not state.terminal
        ]
        if cache.resident_bytes + entry_bytes > cache.capacity_bytes:
            self._sync_pins(cache)
        try:
            cache.admit(model, entry_bytes)
        except CapacityError:
            for state, _, _ in survivors:
                self._fail(state, time_s)
            return
        for state, unit, _ in survivors:
            if not state.terminal and not unit.completed:
                self._start_unit(state, unit, time_s)

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def _handle_fault(self, time_s: float, event: FaultEvent) -> None:
        if event.kind == "node_down":
            if not self.cluster.node_is_up(event.target):
                return  # already down; idempotent
            self.cluster.fail_node(event.target)
            self._membership_changed()
            self._open_interval(self._node_down_intervals, event.target, time_s)
            node_state = self._nodes.get(event.target)  # None for relays
            if node_state is not None:
                self._kill_running_task(node_state, time_s)
            self._abort_touching_node(event.target, time_s)
        elif event.kind == "node_up":
            if self.cluster.node_is_up(event.target):
                return
            self.cluster.recover_node(event.target)
            self._membership_changed()
            self._close_interval(self._node_down_intervals, event.target, time_s)
            node_state = self._nodes.get(event.target)
            if node_state is not None:
                self._dispatch(node_state, time_s)
        elif event.kind == "link_down":
            if not self.cluster.link_is_up(event.target):
                return
            self.cluster.fail_link(event.target)
            self._open_interval(self._link_down_intervals, event.target, time_s)
            self._abort_inflight_over({event.target}, time_s)
        elif event.kind == "link_up":
            if self.cluster.link_is_up(event.target):
                return
            self.cluster.recover_link(event.target)
            self._close_interval(self._link_down_intervals, event.target, time_s)
        else:  # pragma: no cover - schedule validation rejects unknown kinds
            raise RuntimeError(f"unknown fault kind {event.kind!r}")

    @staticmethod
    def _open_interval(
        intervals: Dict[str, List[List[Optional[float]]]], target: str, time_s: float
    ) -> None:
        intervals.setdefault(target, []).append([time_s, None])

    @staticmethod
    def _close_interval(
        intervals: Dict[str, List[List[Optional[float]]]], target: str, time_s: float
    ) -> None:
        spans = intervals.get(target)
        if spans and spans[-1][1] is None:
            spans[-1][1] = time_s

    def _kill_running_task(self, node_state: _NodeState, time_s: float) -> None:
        """Cut short the dispatch executing on a dying node.

        Every member's recorded timeline event is truncated at the moment of
        death (the work really did stop), the node's reservation and busy
        bookkeeping are rolled back to ``time_s``, and the pending
        ``task_end`` event is invalidated via the run id.  A micro-batch
        dies *as a unit* — all members abort together (their requests touch
        the dead node, so :meth:`_abort_touching_node` sweeps them up) — and
        each member is flagged to retry unbatched: the whole membership just
        shared one failure domain, and the failover attempt must not.
        """
        node_state.run_id += 1
        if not node_state.busy or node_state.current is None:
            return
        members, end_s = node_state.current
        if end_s > time_s:
            for _, events_list, event_index in members:
                if events_list is not None and events_list[event_index].end_s > time_s:
                    events_list[event_index] = replace(
                        events_list[event_index], end_s=time_s
                    )
            node_state.node.busy_seconds -= end_s - time_s
        if len(members) > 1:
            for task, _, _ in members:
                task.unit.state.no_batch = True
        node_state.node.available_at = time_s
        node_state.busy = False
        node_state.current = None

    def _abort_touching_node(self, node_name: str, time_s: float) -> None:
        """Abort every live request with unfinished work bound to a dead node
        or bytes in flight to, from, or through it.

        For in-flight transfers the match is endpoint-precise: a transfer is
        disrupted when the dead node is its source or destination, or when
        its route crosses a wire that names the node *directly* (a dead relay
        takes its point-to-point links with it).  A transfer between two
        healthy nodes merely sharing a tier-alias medium (the paper's LAN)
        with the dead node is untouched.
        """
        for state in list(self._live):
            if state.terminal:
                continue
            if any(
                not unit.completed and unit.touches(node_name) for unit in state.unit_list
            ):
                self._abort(state, time_s)
        direct = {
            name
            for name, link in self.cluster.topology.links.items()
            if link.a == node_name or link.b == node_name
        }
        victims = [
            t.state
            for t in self._live_inflight(time_s)
            if t.src == node_name or t.dst == node_name or (t.link_ids & direct)
        ]
        for state in victims:
            self._abort(state, time_s)

    def _abort_inflight_over(self, link_ids: set, time_s: float) -> None:
        """Abort requests whose in-flight transfers cross a severed wire."""
        victims = [t.state for t in self._live_inflight(time_s) if t.link_ids & link_ids]
        for state in victims:
            self._abort(state, time_s)

    def _live_inflight(self, time_s: float) -> List[_Inflight]:
        """Still-running transfers of still-live attempts (prunes the rest)."""
        self._inflight = [
            t
            for t in self._inflight
            if t.end_s > time_s and t.epoch == t.state.epoch and not t.state.terminal
        ]
        return self._inflight

    def _release_inflight(self, state: _RequestState, time_s: float) -> None:
        """Release the wire reservations of an aborted attempt's transfers.

        Store-and-forward books every hop of a route up-front; when the
        attempt dies, reservations that had not started by ``time_s`` are
        unwound (tail-first, while the reservation is still the last one
        booked on its wire) so phantom transfers stop serializing later
        traffic.  Wire time already started stays consumed — the bytes were
        on the medium when the failure hit.
        """
        remaining = []
        for t in self._inflight:
            if t.state is not state:
                remaining.append(t)
                continue
            if t.end_s > time_s and t.epoch == state.epoch:
                for link, start, end, payload in reversed(t.hops):
                    if start >= time_s and link.available_at == end:
                        link.available_at = start
                        link.busy_seconds -= end - start
                        link.bytes_carried -= payload
                        link.transfer_count -= 1
                    else:
                        break
        self._inflight = remaining

    def _abort(self, state: _RequestState, time_s: float) -> None:
        """Discard a request's current attempt and schedule a failover retry.

        Queued tasks and pending transfer completions of the attempt are
        invalidated by the epoch bump; tasks already executing on *healthy*
        nodes run to completion (no preemption) but their effects are
        ignored.  The retry fires at the same timestamp, after all same-time
        faults have been applied, so it replans against the full degraded
        state.
        """
        if state.terminal:
            return
        self._release_inflight(state, time_s)
        self._mark_queues_dirty(state)
        if state.memory_ready is not None:
            # The discarded attempt's residency claims are void: the retry
            # re-verifies against the degraded deployment, and a stale claim
            # here would let tasks dispatch on a node the model never
            # finished loading onto (and would keep it pinned for free).
            state.memory_ready = None
            state.memory_waiting = None
        state.epoch += 1
        if not state.retry_pending:
            state.retry_pending = True
            self._push(time_s, "retry", state)

    def _handle_retry(self, time_s: float, state: _RequestState) -> None:
        state.retry_pending = False
        if state.terminal:
            return
        if state.retries >= self.max_retries:
            self._fail(state, time_s)
            return
        state.retries += 1
        if not self.cluster.node_is_up(state.source_node.name):
            self._fail(state, time_s)
            return
        if self._replan is not None:
            new_request = self._replan(
                state.request, time_s, self.cluster.down_nodes, self.cluster.down_links
            )
            if new_request is None:
                self._fail(state, time_s)
                return
            self.failover_replans += 1
            state.request = new_request
        if not self._activate(state, time_s):
            self._fail(state, time_s)

    def _fail(self, state: _RequestState, time_s: float) -> None:
        state.failed = True
        state.failed_at_s = time_s
        state.epoch += 1
        state.completion_s = time_s
        self._mark_queues_dirty(state)
        self._retire(state, "failed", time_s)

    # ------------------------------------------------------------------ #
    # Elasticity: joins, drains, autoscaling, replica groups
    # ------------------------------------------------------------------ #
    def _membership_changed(self) -> None:
        """A node joined, drained, died or recovered: drop every cache
        derived from fleet membership (the compile re-key, the balancer's
        choice domain, and each request's verified sticky binding)."""
        self._membership_rev += 1
        self._membership_key = None
        self._members_cache = None

    def _park(self, name: str) -> None:
        """Take a node out of the fleet at t=0 (declared but not yet paid
        for); a later join brings it in after its provisioning delay."""
        if self.cluster.node_is_up(name):
            self.cluster.fail_node(name)
            self._open_interval(self._node_down_intervals, name, 0.0)
            self._membership_changed()
        self._elastic_down.add(name)

    def _setup_autoscaler(self) -> None:
        """Shape the edge replica group to the policy's initial size and
        schedule the first tick."""
        scaler = self.autoscaler
        scaler.start()
        group = [node.name for node in self.cluster.all_nodes if node.tier == Tier.EDGE]
        if not group:
            raise ValueError(
                "autoscaling needs at least one edge replica in the topology"
            )
        self._group_names = group
        active = scaler.initial_active(len(group))
        for name in group[active:]:
            if name not in self._elastic_down and self.cluster.node_is_up(name):
                self._park(name)
        self._push(scaler.interval_s, "autoscale", None)

    def _handle_elastic(self, time_s: float, event: ElasticityEvent) -> None:
        if event.is_join:
            self._begin_join(event.target, event.provision_s, time_s)
        else:
            self._begin_drain(event.target, time_s)

    def _begin_join(self, name: str, provision_s: float, time_s: float) -> None:
        """Start provisioning ``name``; it accepts work after ``provision_s``.

        Idempotent: joining an already-up or already-provisioning node is a
        no-op, and joining a *draining* node simply cancels the drain (the
        node never went down, so there is nothing to provision).
        """
        if name in self._provisioning:
            return
        if name in self._draining:
            self._draining.discard(name)
            self._membership_changed()
            self._scale_up_count += 1
            return
        if self.cluster.node_is_up(name):
            return
        self._provisioning.add(name)
        self._scale_up_count += 1
        self._push(time_s + max(0.0, provision_s), "provisioned", name)

    def _handle_provisioned(self, time_s: float, name: str) -> None:
        """Provisioning elapsed: the joined node enters the fleet."""
        if name not in self._provisioning:
            return  # the join was cancelled by a drain while provisioning
        self._provisioning.discard(name)
        if self.cluster.node_is_up(name):
            return
        self.cluster.recover_node(name)
        self._membership_changed()
        self._elastic_down.discard(name)
        self._close_interval(self._node_down_intervals, name, time_s)
        node_state = self._nodes.get(name)
        if node_state is not None:
            self._dispatch(node_state, time_s)

    def _begin_drain(self, name: str, time_s: float) -> None:
        """Start a graceful drain: stop admitting, finish in-flight work,
        then leave the fleet.  Refused (no-op) when it would leave the
        node's tier without an admitting replica."""
        if name in self._draining:
            return
        if name in self._provisioning:
            # Drain overtakes an in-flight join: cancel the provisioning (the
            # symmetric counterpart of a join cancelling a drain).  Dropping
            # the name here makes the pending "provisioned" event a no-op, so
            # the node cannot resurrect after its drain.
            self._provisioning.discard(name)
            self._scale_down_count += 1
            return
        if not self.cluster.node_is_up(name):
            return
        tier = self.cluster.node(name).tier
        remaining = [
            node
            for node in self.cluster.active_nodes(tier)
            if node.name != name and node.name not in self._draining
        ]
        if not remaining:
            return
        self._draining.add(name)
        self._membership_changed()
        self._scale_down_count += 1
        self._maybe_complete_drain(name, time_s)

    def _sweep_drains(self, time_s: float) -> None:
        for name in list(self._draining):
            self._maybe_complete_drain(name, time_s)

    def _maybe_complete_drain(self, name: str, time_s: float) -> None:
        """Complete a drain iff nothing references the node any more: it is
        idle, its ready-queue holds no live work, and no live request has
        unfinished work bound (or stuck) to it.  Never aborts anything —
        that is the entire difference between a drain and a crash."""
        node_state = self._nodes.get(name)
        if node_state is None:  # pragma: no cover - relays cannot drain
            self._draining.discard(name)
            self._membership_changed()
            return
        if node_state.busy:
            return
        if node_state.dirty:
            self._prune_queue(node_state)
        if node_state.queue:
            return
        for state in self._live:
            if state.terminal:
                continue
            for unit in state.unit_list:
                if not unit.completed and unit.touches(name):
                    return
        self._draining.discard(name)
        if self.cluster.node_is_up(name):
            self.cluster.fail_node(name)
            self._open_interval(self._node_down_intervals, name, time_s)
        self._elastic_down.add(name)
        self._membership_changed()

    def _handle_autoscale_tick(self, time_s: float) -> None:
        """One autoscaler heartbeat: sample the group, apply the decision,
        and schedule the next tick while work remains."""
        scaler = self.autoscaler
        active: List[str] = []
        spare: List[str] = []
        for name in self._group_names:
            if name in self._provisioning or name in self._draining:
                continue
            if self.cluster.node_is_up(name):
                active.append(name)
            elif name in self._elastic_down:
                spare.append(name)
        if active:
            interval = scaler.interval_s
            busy_total = 0.0
            depth_total = 0.0
            for name in active:
                node_state = self._nodes[name]
                busy_s = node_state.node.busy_seconds
                previous = self._util_prev.get(name, 0.0)
                busy_total += min(1.0, max(0.0, (busy_s - previous) / interval))
                self._util_prev[name] = busy_s
                depth_total += len(node_state.queue) + (1 if node_state.busy else 0)
            decision = scaler.decide(
                busy_total / len(active),
                depth_total / len(active),
                len(active),
                len(spare),
                time_s,
            )
            if decision == "up" and spare:
                self._begin_join(spare[0], scaler.provision_s, time_s)
            elif decision == "down" and len(active) > 1:
                self._begin_drain(active[-1], time_s)
        if self._open > 0 or self._pending_arrivals > 0:
            self._push(time_s + scaler.interval_s, "autoscale", None)

    def _eligible_group_members(self) -> List[_NodeState]:
        """Live, non-draining members of the edge replica group, in
        declaration order — the balancer's choice domain.  A pure function
        of fleet membership, so the list is rebuilt only after a
        membership change."""
        members = self._members_cache
        if members is not None:
            return members
        nodes = self._nodes
        members = [
            nodes[node.name]
            for node in self.cluster.active_nodes(Tier.EDGE)
            if node.name not in self._draining
        ]
        if not members:
            # Every live member is draining (faults downed the rest):
            # finishing on a draining replica beats failing the request.
            members = [nodes[node.name] for node in self.cluster.active_nodes(Tier.EDGE)]
        self._members_cache = members
        return members

    def _resolve_group_unit(
        self, state: _RequestState, unit: _Unit, time_s: float
    ) -> Optional[List[Tuple[ComputeNode, float, str, _NodeState]]]:
        """Bind one request's group-bound stage to a replica.

        The balancer chooses once per request and the choice sticks: every
        group stage of the inference lands on the same member, so
        intra-request edges stay node-local exactly as on a statically bound
        plan.  A sticky member that crash-died is re-chosen (a *draining*
        member keeps its in-flight requests — drains never abort work).
        Returns the priced task list, or ``None`` when no member is live.
        """
        node_state = state.group_node_state
        rev = self._membership_rev
        if node_state is not None and state.group_rev != rev:
            # Membership changed since the choice was made (or last
            # verified): the sticky member may have crash-died.
            if self._down_live and node_state.node.name in self._down_live:
                node_state = None
            else:
                state.group_rev = rev
        if node_state is None:
            members = self._eligible_group_members()
            if not members:
                return None
            node_state = self.balancer.choose(members, time_s)
            state.group_node_state = node_state
            state.group_rev = rev
        node = node_state.node
        unit.home_node = node
        compiled = unit.compiled
        cache = compiled.group_cache
        if cache is None:
            cache = compiled.group_cache = {}
        tasks = cache.get(node.name)
        if tasks is None:
            speed = node.speed_factor
            tasks = [
                (node, duration / speed, label, node_state)
                for duration, label in compiled.group_tasks
            ]
            cache[node.name] = tasks
        unit.tasks = tasks
        return tasks

    def _resolve_live_source(self, name: str) -> Optional[ComputeNode]:
        """A live stand-in for a source that drained out of the fleet.

        ``None`` when the source went down by *crashing* (the client is
        offline — the historical fault semantics) or when its tier has no
        live replacement.  Prefers non-draining siblings, in declaration
        order, so re-resolution is deterministic.
        """
        if name not in self._elastic_down and name not in self._draining:
            return None
        tier = self.cluster.node(name).tier
        candidates = [
            node
            for node in self.cluster.active_nodes(tier)
            if node.name not in self._draining
        ]
        if not candidates:
            candidates = [
                node for node in self.cluster.active_nodes(tier) if node.name != name
            ]
        return candidates[0] if candidates else None


def _clip_downtime(
    intervals: Dict[str, List[List[Optional[float]]]], start: float, end: float
) -> Dict[str, float]:
    """Seconds each target spent down within ``[start, end]`` (open intervals
    are still down at the end of the run)."""
    downtime: Dict[str, float] = {}
    for target, spans in intervals.items():
        total = 0.0
        for span_start, span_end in spans:
            closed_end = end if span_end is None else min(span_end, end)
            total += max(0.0, closed_end - max(span_start, start))
        if total > 0.0:
            downtime[target] = total
    return downtime
