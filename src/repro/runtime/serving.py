"""Discrete-event serving engine: many in-flight inferences on one cluster.

The one-shot :class:`~repro.runtime.executor.DistributedExecutor` walks a
single DNN DAG against idle nodes and uncontended links.  This module
generalises it into a true discrete-event simulator: a global event queue over
the cluster in which any number of partitioned inferences are in flight at
once, contending for

* **per-node compute** — every :class:`~repro.runtime.node.ComputeNode` runs
  one task at a time and keeps a FIFO ready-queue (ties broken by request
  arrival order, then DAG topological order, so the schedule is deterministic
  and the single-request case reproduces the one-shot timeline exactly), and
* **per-link bandwidth** — every cross-node transfer follows the topology's
  fewest-hop route and occupies each
  :class:`~repro.network.link.SharedLink` on it for that hop's transmission
  time (store-and-forward on multi-hop chains); with
  ``link_contention="fifo"`` concurrent transfers serialize per wire, with
  ``"none"`` links have infinite capacity (the paper's one-shot assumption,
  used by the degenerate single-request path so the seed figures are
  bit-identical).  Inherited links price transfers off the request's network
  condition; static and traced links price off their own rate at the moment
  the hop starts.

The engine also consumes a :class:`~repro.network.faults.FaultSchedule` as
first-class events.  When a node dies, the task it was executing is cut short
(its timeline event is truncated at the moment of death) and every request
with unfinished work bound to that node — or an in-flight transfer over a
severed wire — is *aborted and retried*: its pending work is discarded, a
fresh attempt is planned (through the ``replan`` callback when the serving
layer provides one, re-resolving onto surviving nodes otherwise) and execution
restarts from the input at the current time.  Retries are bounded by
``max_retries``; a request that exhausts its budget, loses its source device,
or cannot be replanned against the degraded deployment is recorded as
``failed``.  With no schedule the engine is bit-identical to its fault-free
behaviour.

Dispatch policy is pluggable through :mod:`repro.runtime.scheduler`: the
default :class:`~repro.runtime.scheduler.FifoScheduler` reproduces the
historical engine bit-for-bit (the golden traces pin it), while
:class:`~repro.runtime.scheduler.BatchingScheduler` coalesces same-layer
tasks on one node into micro-batches priced by the hardware's sublinear
batch-cost curve, and :class:`~repro.runtime.scheduler.DeadlineScheduler`
serves earliest-deadline-first over per-request SLOs with priority classes.
Schedulers with admission control shed arriving requests whose predicted
completion (idle critical path plus the current backlog on the nodes the
plan touches) already breaches their SLO; shed requests are recorded as
``rejected`` and surface as the report's shed count, goodput and
SLO-attainment metrics.  A batch whose node dies aborts as a unit — every
member request fails over together — and the retried attempts run
*unbatched*.

The engine consumes :class:`ServingRequest`s — a request plus its placement
plan, latency profile, optional VSM plan and the network condition its
transfers are charged under — and produces per-request
:class:`~repro.runtime.simulator.ExecutionReport`s plus the aggregate
:class:`ServingReport` (percentile latencies, throughput, goodput,
SLO attainment, batch occupancy, utilisation, backbone traffic,
availability).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import FusedRunPlan, VSMPlan
from repro.graph.dag import DnnGraph, Vertex
from repro.network.conditions import NetworkCondition
from repro.network.faults import FaultEvent, FaultSchedule
from repro.network.link import SharedLink
from repro.network.topology import RouteUnavailableError
from repro.profiling.hardware import batch_cost_s
from repro.profiling.profiler import LatencyProfile
from repro.runtime.cluster import Cluster
from repro.runtime.messages import TensorTransfer
from repro.runtime.node import ComputeNode
from repro.runtime.scheduler import Scheduler, resolve_scheduler
from repro.runtime.simulator import ExecutionReport, TimelineEvent

#: Link contention models understood by the engine.
LINK_CONTENTION_MODES = ("fifo", "none")

#: Terminal request outcomes (``rejected`` = shed by admission control).
REQUEST_STATUSES = ("completed", "failed", "rejected")

#: Default failover retry budget per request.
DEFAULT_MAX_RETRIES = 3

#: Signature of the failover replanning callback: ``(request, now_s,
#: down_nodes, down_links) -> replanned request or None`` (None = the request
#: cannot be served on the degraded deployment and fails).
ReplanCallback = Callable[
    ["ServingRequest", float, FrozenSet[str], FrozenSet[str]], Optional["ServingRequest"]
]


# --------------------------------------------------------------------------- #
# Inputs and outputs
# --------------------------------------------------------------------------- #
@dataclass
class ServingRequest:
    """One inference request, fully planned and ready to simulate."""

    index: int
    request_id: Optional[str]
    graph: DnnGraph
    plan: PlacementPlan
    profile: LatencyProfile
    condition: NetworkCondition
    arrival_s: float = 0.0
    vsm_plan: Optional[VSMPlan] = None
    #: Name of the device node the request originates at; ``None`` means the
    #: cluster's primary device (the pre-topology single-device behaviour).
    source: Optional[str] = None
    #: Latency SLO in milliseconds; ``None`` = best-effort (no deadline).
    slo_ms: Optional[float] = None
    #: Priority class (0 = most important); only the deadline scheduler and
    #: the per-class report metrics consult it.
    priority: int = 0
    #: Idle-cluster latency of the request's plan (from the plan cache);
    #: admission control predicts completion as this plus the live backlog.
    ideal_latency_s: Optional[float] = None


@dataclass
class RequestRecord:
    """Outcome of one request under the serving engine."""

    request_id: Optional[str]
    model: str
    arrival_s: float
    completion_s: float
    report: ExecutionReport
    #: Latency of the same plan on an idle cluster (filled by the serving
    #: layer from the plan cache); ``None`` when unknown.
    ideal_latency_s: Optional[float] = None
    #: Terminal outcome: ``"completed"``, ``"failed"`` (retry budget
    #: exhausted / source device lost / degraded deployment unservable) or
    #: ``"rejected"`` (shed at arrival by SLO admission control).
    status: str = "completed"
    #: Failover attempts this request consumed (0 on an undisturbed run).
    retries: int = 0
    #: The request's latency SLO in milliseconds (``None`` = best-effort).
    slo_ms: Optional[float] = None
    #: The request's priority class (0 = most important).
    priority: int = 0

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def met_slo(self) -> bool:
        """Completed within the SLO (best-effort requests count when served)."""
        if not self.completed:
            return False
        if self.slo_ms is None:
            return True
        return self.latency_s <= self.slo_ms / 1e3 + 1e-12

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion for completed requests; time-to-failure
        otherwise."""
        return self.completion_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Extra latency caused by contention, relative to an idle cluster."""
        if self.ideal_latency_s is None:
            return None
        return self.latency_s - self.ideal_latency_s


@dataclass(frozen=True)
class BatchRecord:
    """One micro-batch dispatch (size > 1) the engine executed."""

    node: str
    label: str
    size: int
    start_s: float
    end_s: float
    #: Longest member's solo duration — the lower bound on the batch's cost.
    longest_solo_s: float
    #: Sum of the members' solo durations — what FIFO would have paid.
    total_solo_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ServingReport:
    """Aggregate result of serving a workload on one cluster."""

    workload_name: str
    records: List[RequestRecord] = field(default_factory=list)
    makespan_s: float = 0.0
    node_busy_s: Dict[str, float] = field(default_factory=dict)
    link_busy_s: Dict[str, float] = field(default_factory=dict)
    #: Name of the dispatch policy the stream ran under.
    scheduler: str = "fifo"
    #: Dispatch-size histogram: ``{batch size: dispatches}``.  FIFO/EDF runs
    #: are all size 1; the batching scheduler's occupancy shows up here.
    batch_occupancy: Dict[int, int] = field(default_factory=dict)
    #: Every multi-member batch the engine executed (size > 1 only).
    batches: List[BatchRecord] = field(default_factory=list)
    #: Registry name of the partitioning method the stream was planned with
    #: (filled by :meth:`repro.core.d3.D3System.serve`; empty when the report
    #: was built directly from the simulator).
    method: str = ""
    #: Plan-cache statistics, filled by :meth:`repro.core.d3.D3System.serve`.
    plans_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    repartitions: int = 0
    #: Failover replans performed mid-stream (a fault aborted in-flight work
    #: and the strategy re-planned the request against the degraded topology).
    failover_replans: int = 0
    #: Seconds each node spent down within the report's makespan window
    #: (empty on fault-free runs); feeds downtime-weighted utilisation.
    node_down_s: Dict[str, float] = field(default_factory=dict)
    #: Seconds each link spent dark within the makespan window.
    link_down_s: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def num_completed(self) -> int:
        return sum(1 for record in self.records if record.completed)

    @property
    def num_failed(self) -> int:
        return sum(1 for record in self.records if record.status == "failed")

    @property
    def num_rejected(self) -> int:
        """Requests shed at arrival by SLO admission control."""
        return sum(1 for record in self.records if record.rejected)

    @property
    def num_retried(self) -> int:
        """Requests that consumed at least one failover retry."""
        return sum(1 for record in self.records if record.retries > 0)

    @property
    def availability(self) -> float:
        """Fraction of *admitted* requests that completed (1.0 when empty).

        Deliberately shed requests are an overload-policy outcome, not an
        availability incident, so they leave the denominator.
        """
        admitted = self.num_requests - self.num_rejected
        if admitted <= 0:
            return 1.0
        return self.num_completed / admitted

    @property
    def latencies_s(self) -> List[float]:
        """Latencies of *completed* requests (failures have no latency)."""
        return [record.latency_s for record in self.records if record.completed]

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated wall-clock."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_completed / self.makespan_s

    @property
    def num_met_slo(self) -> int:
        """Requests that completed within their SLO (best-effort = served)."""
        return sum(1 for record in self.records if record.met_slo)

    @property
    def goodput_rps(self) -> float:
        """SLO-meeting completions per second — the metric overload is
        judged on: shed and late requests contribute nothing."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_met_slo / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests that completed within their SLO.

        Shed requests count against attainment — admission control only pays
        off when the capacity it frees lets the survivors meet theirs.
        """
        if not self.records:
            return 1.0
        return self.num_met_slo / self.num_requests

    def class_percentiles(
        self, quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[int, Dict[str, float]]:
        """Latency percentiles per priority class (completed requests)."""
        from repro.experiments.reporting import latency_percentiles

        by_class: Dict[int, List[float]] = {}
        for record in self.records:
            if record.completed:
                by_class.setdefault(record.priority, []).append(record.latency_s)
        return {
            cls: latency_percentiles(values, quantiles)
            for cls, values in sorted(by_class.items())
        }

    @property
    def mean_batch_occupancy(self) -> float:
        """Average dispatch size (1.0 under FIFO/EDF; > 1 when batching bites)."""
        total = sum(self.batch_occupancy.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in self.batch_occupancy.items()) / total

    @property
    def bytes_to_cloud(self) -> int:
        """Total backbone traffic entering the cloud across all requests."""
        return sum(record.report.bytes_to_cloud for record in self.records)

    def latency_percentiles(
        self,
        quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0),
        retried_only: bool = False,
        interpolation: str = "linear",
    ) -> Dict[str, float]:
        """Latency percentiles (``{"p50": ..., "p95": ..., "p99": ...}``).

        Computed over completed requests; with ``retried_only`` the sample is
        restricted to requests that survived at least one failover retry (the
        tail a fault-tolerant deployment is judged on).  An empty sample —
        an all-failed run, or no retried requests — returns zeros instead of
        raising, so degenerate reports stay well-formed.

        ``interpolation`` selects the estimator: ``"linear"`` (the default,
        matching ``numpy.percentile``) interpolates neighbouring order
        statistics; ``"nearest"`` is the classic nearest-rank percentile (an
        actually observed latency, preferred by some SLO auditors).
        """
        from repro.experiments.reporting import latency_percentiles

        values = [
            record.latency_s
            for record in self.records
            if record.completed and (record.retries > 0 or not retried_only)
        ]
        if not values:
            return {f"p{q:g}": 0.0 for q in quantiles}
        return latency_percentiles(values, quantiles, interpolation=interpolation)

    @property
    def mean_latency_s(self) -> float:
        from repro.experiments.reporting import mean

        values = self.latencies_s
        return mean(values) if values else 0.0

    def mean_queueing_delay_s(self) -> Optional[float]:
        from repro.experiments.reporting import mean

        delays = [r.queueing_delay_s for r in self.records if r.queueing_delay_s is not None]
        return mean(delays) if delays else None

    def node_utilisation(self, downtime_weighted: bool = False) -> Dict[str, float]:
        """Busy fraction of every node over the workload's makespan.

        With ``downtime_weighted`` each node's denominator shrinks by the time
        it spent down, so a node that was dead half the run but saturated
        while alive reports ~100%, not ~50%.
        """
        if self.makespan_s <= 0:
            return {name: 0.0 for name in self.node_busy_s}
        result = {}
        for name, busy in self.node_busy_s.items():
            window = self.makespan_s
            if downtime_weighted:
                window = max(window - self.node_down_s.get(name, 0.0), 0.0)
            result[name] = min(1.0, busy / window) if window > 0 else 0.0
        return result

    def summary(self) -> str:
        """Multi-line human-readable serving report."""
        via = f" via {self.method}" if self.method else ""
        scheduled = f" [{self.scheduler}]" if self.scheduler != "fifo" else ""
        lines = [
            f"{self.workload_name}: {self.num_requests} requests in "
            f"{self.makespan_s:.2f} s ({self.throughput_rps:.2f} req/s){via}{scheduled}"
        ]
        has_slos = any(record.slo_ms is not None for record in self.records)
        if has_slos or self.num_rejected:
            lines.append(
                f"  goodput {self.goodput_rps:.2f} req/s, "
                f"SLO attainment {self.slo_attainment:.1%}, "
                f"{self.num_rejected} shed"
            )
            per_class = self.class_percentiles()
            if len(per_class) > 1:
                lines.append(
                    "  per-class p95 "
                    + ", ".join(
                        f"class {cls} {pct['p95'] * 1e3:.1f} ms"
                        for cls, pct in per_class.items()
                    )
                )
        if self.batches:
            lines.append(
                f"  batching: {len(self.batches)} batches, "
                f"mean occupancy {self.mean_batch_occupancy:.2f}, "
                f"largest {max(self.batch_occupancy)}"
            )
        if self.latencies_s:
            pct = self.latency_percentiles()
            lines.append(
                "  latency p50 {p50:.1f} ms, p95 {p95:.1f} ms, p99 {p99:.1f} ms, "
                "mean {mean:.1f} ms".format(
                    p50=pct["p50"] * 1e3,
                    p95=pct["p95"] * 1e3,
                    p99=pct["p99"] * 1e3,
                    mean=self.mean_latency_s * 1e3,
                )
            )
            queueing = self.mean_queueing_delay_s()
            if queueing is not None:
                # Clamp the float-epsilon negatives an idle stream produces.
                lines.append(f"  mean queueing delay {max(0.0, queueing) * 1e3:.1f} ms")
        faulted = (
            self.num_failed
            or self.num_retried
            or self.failover_replans
            or any(self.node_down_s.values())
            or any(self.link_down_s.values())
        )
        if faulted:
            lines.append(
                f"  availability {self.availability:.1%} "
                f"({self.num_failed}/{self.num_requests} failed, "
                f"{self.num_retried} retried, "
                f"{self.failover_replans} failover replans)"
            )
            retried = self.latency_percentiles(retried_only=True)
            if self.num_retried and any(retried.values()):
                lines.append(
                    f"  p99 over retried requests {retried['p99'] * 1e3:.1f} ms"
                )
        utilisation = self.node_utilisation(downtime_weighted=faulted)
        if utilisation:
            busiest = sorted(utilisation.items(), key=lambda kv: kv[1], reverse=True)
            lines.append(
                "  utilisation " + ", ".join(f"{name} {value:.0%}" for name, value in busiest)
            )
        lines.append(f"  backbone to cloud {self.bytes_to_cloud * 8.0 / 1e6:.3f} Mb")
        lines.append(
            f"  plans computed {self.plans_computed} "
            f"(cache hits {self.cache_hits}, misses {self.cache_misses}, "
            f"repartitions {self.repartitions})"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Internal simulation state
# --------------------------------------------------------------------------- #
class _NoNodeAvailable(RuntimeError):
    """A request needs a tier of which no node is currently up."""


class _Unit:
    """One schedulable stage of a request: a vertex or a whole fused run."""

    __slots__ = (
        "state",
        "tier",
        "vertices",
        "run",
        "waiting",
        "remaining_tasks",
        "topo_key",
        "exec_nodes",
        "home_node",
        "completed",
        "node_costs",
    )

    def __init__(
        self,
        state: "_RequestState",
        tier: Tier,
        vertices: List[Vertex],
        run: Optional[FusedRunPlan] = None,
    ) -> None:
        self.state = state
        self.tier = tier
        self.vertices = vertices
        self.run = run
        self.waiting = 0  # incoming cross-unit edges not yet arrived
        self.remaining_tasks = 0  # compute tasks in flight once started
        self.topo_key = 0  # topological rank of the first member vertex
        #: Nodes this unit's tasks run on, resolved against the nodes that
        #: were *up* when the attempt was built (one entry per tile stack for
        #: fused runs, a single entry otherwise).  Snapshotting at build time
        #: keeps the schedule deterministic and lets the engine detect which
        #: requests a dying node takes down.
        self.exec_nodes: List[ComputeNode] = []
        #: The node cross-unit transfers address (the gather node for fused
        #: runs, the executing node otherwise).
        self.home_node: Optional[ComputeNode] = None
        self.completed = False
        #: Memoized ``[(node name, solo seconds)]`` of this unit's tasks —
        #: computed once per attempt by the admission predictor (units are
        #: rebuilt on every failover retry, so the memo can never go stale).
        self.node_costs: Optional[List[Tuple[str, float]]] = None

    def touches(self, node_name: str) -> bool:
        """True when any of this unit's work is bound to ``node_name``."""
        if self.home_node is not None and self.home_node.name == node_name:
            return True
        return any(node.name == node_name for node in self.exec_nodes)


class _RequestState:
    """Everything the engine tracks for one in-flight request."""

    __slots__ = (
        "request",
        "report",
        "units",
        "unit_list",
        "remaining_units",
        "completion_s",
        "source_node",
        "epoch",
        "retries",
        "failed",
        "failed_at_s",
        "retry_pending",
        "rejected",
        "no_batch",
    )

    def __init__(self, request: ServingRequest, source_node: ComputeNode) -> None:
        self.request = request
        self.report = ExecutionReport(
            model_name=request.graph.name,
            end_to_end_latency_s=0.0,
            request_id=request.request_id,
        )
        self.units: Dict[int, _Unit] = {}
        self.unit_list: List[_Unit] = []
        self.remaining_units = 0
        self.completion_s = 0.0
        #: Device node all device-tier work of this request runs on.
        self.source_node = source_node
        #: Attempt counter: bumped on every abort, so stale task/transfer
        #: events from a discarded attempt are ignored when they fire.
        self.epoch = 0
        self.retries = 0
        self.failed = False
        self.failed_at_s = 0.0
        self.retry_pending = False
        #: Shed at arrival by admission control (terminal, never started).
        self.rejected = False
        #: Set when a batch died with its node: every retried attempt of this
        #: request dispatches unbatched from then on.
        self.no_batch = False

    @property
    def terminal(self) -> bool:
        """True once the request completed, failed or was shed."""
        return (
            self.failed
            or self.rejected
            or (bool(self.unit_list) and self.remaining_units == 0)
        )


@dataclass
class _Task:
    """One reservation-sized piece of work bound for a specific node."""

    unit: _Unit
    node: ComputeNode
    duration_s: float
    label: str
    #: The owning request's attempt the task belongs to; a mismatch at
    #: dispatch/completion time means the attempt was aborted.
    epoch: int = 0
    #: When the task entered its node's ready-queue; the batching
    #: scheduler's ``max_wait`` hold is anchored at the oldest member.
    enqueued_s: float = 0.0


@dataclass
class _Inflight:
    """One transfer currently on the wires, tracked for fault handling."""

    end_s: float
    link_ids: FrozenSet[str]
    src: str
    dst: str
    state: "_RequestState"
    epoch: int
    #: Per-hop ``(link, start, end, payload)`` reservations, kept so an abort
    #: can release wire time the bytes never actually used.
    hops: List[Tuple[SharedLink, float, float, int]]


class _NodeState:
    """Ready-queue (ordered by the scheduler's key) and busy flag of one node."""

    __slots__ = ("node", "queue", "busy", "run_id", "current", "flush_at", "dirty")

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.queue: List[Tuple[Tuple, _Task]] = []
        self.busy = False
        #: Deadline of the pending flush event during a batching hold;
        #: ``None`` when no flush is outstanding (deduplicates the events a
        #: busy hold window would otherwise pile up).
        self.flush_at: Optional[float] = None
        #: Set when an abort/failure may have left stale tasks in the queue;
        #: cleared by the next prune.  Keeps the fault-free fast path free of
        #: per-dispatch validation scans.
        self.dirty = False
        #: Monotone id of the dispatch occupying the node; a ``task_end``
        #: event carrying a stale id was cancelled by a node failure.
        self.run_id = 0
        #: ``(members, end_s)`` of the running dispatch, where ``members`` is
        #: one ``(task, events_list, event_index)`` per batch member, kept so
        #: a node death can truncate every member's timeline event.
        self.current: Optional[Tuple[List[Tuple[_Task, list, int]], float]] = None


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class ServingSimulator:
    """Simulate a stream of partitioned inferences on a shared cluster.

    Parameters
    ----------
    cluster:
        The deployment all requests run on.  Its node, link and failure state
        is reset at the start of every :meth:`run`.
    link_contention:
        ``"fifo"`` serializes concurrent transfers on each inter-tier link
        (the serving default); ``"none"`` gives links infinite capacity,
        reproducing the one-shot semantics of the original executor.
    faults:
        Optional :class:`~repro.network.faults.FaultSchedule` consumed as
        first-class simulation events.  ``None`` (or an empty schedule) is
        bit-identical to the fault-free engine.
    max_retries:
        Failover budget per request: how many aborted attempts may be retried
        before the request is recorded as failed.
    replan:
        Optional failover replanning callback ``(request, now_s, down_nodes,
        down_links) -> ServingRequest | None`` invoked on every retry;
        :meth:`repro.core.d3.D3System.serve` wires the plan cache in here.
        Without it, retries re-resolve the existing plan onto surviving
        nodes.
    scheduler:
        Dispatch policy: a :class:`~repro.runtime.scheduler.Scheduler`
        instance, a registry name (``"fifo"``, ``"batch"``, ``"edf"``) or
        ``None`` for the default FIFO, which is bit-identical to the
        pre-scheduler engine.
    """

    def __init__(
        self,
        cluster: Cluster,
        link_contention: str = "fifo",
        faults: Optional[FaultSchedule] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        replan: Optional[ReplanCallback] = None,
        scheduler: "Scheduler | str | None" = None,
    ) -> None:
        if link_contention not in LINK_CONTENTION_MODES:
            raise ValueError(
                f"unknown link contention mode {link_contention!r}; "
                f"expected one of {LINK_CONTENTION_MODES}"
            )
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.cluster = cluster
        self.link_contention = link_contention
        self.faults = faults
        self.max_retries = max_retries
        self._replan = replan
        self.scheduler = resolve_scheduler(scheduler)
        self.failover_replans = 0
        #: Dispatch-size histogram and multi-member batch log of the last run.
        self.batch_occupancy: Dict[int, int] = {}
        self.batches: List[BatchRecord] = []
        self._events: List[Tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._nodes: Dict[str, _NodeState] = {}
        self._states: List[_RequestState] = []
        #: Transfers currently on the wires, used to abort requests whose
        #: bytes a failure caught in flight (and to release their unused
        #: reservations).  Only populated when a fault schedule is active.
        self._inflight: List[_Inflight] = []
        self._node_down_intervals: Dict[str, List[List[Optional[float]]]] = {}
        self._link_down_intervals: Dict[str, List[List[Optional[float]]]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, requests: List[ServingRequest]) -> List[RequestRecord]:
        """Simulate all ``requests``; returns one record per request.

        Records come back in arrival order.  Event/transfer timestamps in the
        per-request reports are absolute simulation times; each report's
        ``end_to_end_latency_s`` is relative to its request's arrival.
        """
        self.cluster.reset()
        self._events = []
        self._sequence = itertools.count()
        self._nodes = {node.name: _NodeState(node) for node in self.cluster.all_nodes}
        self._states = []
        self._inflight = []
        self._node_down_intervals = {}
        self._link_down_intervals = {}
        self.failover_replans = 0
        self.batch_occupancy = {}
        self.batches = []

        # Fault events enter the queue first, so at equal timestamps a fault
        # precedes every arrival/task/transfer event: a node dying the instant
        # a task would finish kills the task (completion was never confirmed),
        # and a request arriving the instant a node dies sees it dead.
        if self.faults:
            self.faults.validate_against(self.cluster.topology)
            for fault in self.faults:
                self._push(fault.time_s, "fault", fault)

        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        for request in ordered:
            self._push(request.arrival_s, "arrival", request)

        while self._events:
            time_s, _, kind, payload = heapq.heappop(self._events)
            if kind == "arrival":
                self._handle_arrival(time_s, payload)  # type: ignore[arg-type]
            elif kind == "task_end":
                self._handle_task_end(time_s, payload)  # type: ignore[arg-type]
            elif kind == "transfer_end":
                self._handle_transfer_end(time_s, payload)  # type: ignore[arg-type]
            elif kind == "fault":
                self._handle_fault(time_s, payload)  # type: ignore[arg-type]
            elif kind == "retry":
                self._handle_retry(time_s, payload)  # type: ignore[arg-type]
            elif kind == "flush":
                # A batching hold expired: re-ask the scheduler (no-op when
                # the node went busy or the held work already dispatched).
                node_state = payload  # type: _NodeState
                if node_state.flush_at is not None and node_state.flush_at <= time_s + 1e-12:
                    node_state.flush_at = None
                self._dispatch(node_state, time_s)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")

        records = []
        for state in sorted(self._states, key=lambda s: s.request.index):
            request = state.request
            if state.rejected:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        model=request.graph.name,
                        arrival_s=request.arrival_s,
                        completion_s=request.arrival_s,
                        report=state.report,
                        status="rejected",
                        slo_ms=request.slo_ms,
                        priority=request.priority,
                    )
                )
                continue
            if state.failed:
                state.report.end_to_end_latency_s = state.failed_at_s - request.arrival_s
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        model=request.graph.name,
                        arrival_s=request.arrival_s,
                        completion_s=state.failed_at_s,
                        report=state.report,
                        status="failed",
                        retries=state.retries,
                        slo_ms=request.slo_ms,
                        priority=request.priority,
                    )
                )
                continue
            if state.remaining_units:
                raise RuntimeError(
                    f"request {request.request_id} finished the event loop "
                    f"with {state.remaining_units} unexecuted stages (dependency deadlock)"
                )
            state.report.end_to_end_latency_s = state.completion_s - request.arrival_s
            records.append(
                RequestRecord(
                    request_id=request.request_id,
                    model=request.graph.name,
                    arrival_s=request.arrival_s,
                    completion_s=state.completion_s,
                    report=state.report,
                    retries=state.retries,
                    slo_ms=request.slo_ms,
                    priority=request.priority,
                )
            )
        return records

    def build_report(self, workload_name: str, records: List[RequestRecord]) -> ServingReport:
        """Aggregate records plus the cluster's utilisation bookkeeping."""
        makespan = 0.0
        start = end = 0.0
        if records:
            start = min(record.arrival_s for record in records)
            end = max(record.completion_s for record in records)
            makespan = end - start
        return ServingReport(
            workload_name=workload_name,
            records=records,
            makespan_s=makespan,
            node_busy_s={node.name: node.busy_seconds for node in self.cluster.all_nodes},
            link_busy_s={
                # Key by link id: two parallel wires between the same endpoints
                # are distinct links and must report separately.
                link.link_id or "-".join(link.key): link.busy_seconds
                for link in self.cluster.shared_links.values()
            },
            failover_replans=self.failover_replans,
            node_down_s=_clip_downtime(self._node_down_intervals, start, end),
            link_down_s=_clip_downtime(self._link_down_intervals, start, end),
            scheduler=self.scheduler.name,
            batch_occupancy=dict(sorted(self.batch_occupancy.items())),
            batches=list(self.batches),
        )

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time_s, next(self._sequence), kind, payload))

    # ------------------------------------------------------------------ #
    # Request admission
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, time_s: float, request: ServingRequest) -> None:
        state = _RequestState(request, self._resolve_source(request))
        self._states.append(state)
        if not self.cluster.node_is_up(state.source_node.name):
            # The request's entry point is dead: there is nothing to fail
            # over to — the client itself is offline.
            self._fail(state, time_s)
            return
        if self.scheduler.admission_control and request.slo_ms is not None:
            if not self._build(state):
                self._fail(state, time_s)
                return
            predicted = self._predicted_latency_s(state, time_s)
            if predicted > request.slo_ms / 1e3 + 1e-12:
                # Shedding at the door: serving this request would blow its
                # SLO *and* push everyone queued behind it further out.
                state.rejected = True
                state.epoch += 1
                return
            self._start_ready_units(state, time_s)
            return
        if not self._activate(state, time_s):
            self._fail(state, time_s)

    def _predicted_latency_s(self, state: _RequestState, time_s: float) -> float:
        """Admission predictor: idle critical path + compute and wire backlog.

        The compute backlog of a node is the *committed, unfinished* solo
        work of every live request bound to it — not just what already sits
        in its ready-queue, since a chain enqueues one stage at a time and a
        queue-depth view would miss almost all of an admitted request's
        remaining work.  The backlog of a wire is its reservation watermark:
        store-and-forward booking pushes ``available_at`` out for every
        queued transfer, so a saturated uplink — the usual bottleneck of
        offloaded inference — is visible at the door.  Compute and wire
        backlogs are taken as one pessimistic maximum each and summed, since
        a request generally crosses its bottleneck wire *and* its bottleneck
        node in series.  Deliberately conservative: batching and parallelism
        can only beat the prediction, and under overload a conservative
        predictor sheds the borderline request that would have missed anyway.
        """
        ideal = state.request.ideal_latency_s or 0.0
        touched = {node.name for unit in state.unit_list for node in unit.exec_nodes}
        committed = self._committed_node_s(touched, exclude=state)
        node_backlog = max(committed.values(), default=0.0)
        link_backlog = 0.0
        if self.link_contention == "fifo":
            for link in self._touched_links(state):
                link_backlog = max(link_backlog, max(0.0, link.available_at - time_s))
        return ideal + node_backlog + link_backlog

    def _committed_node_s(
        self, touched: set, exclude: _RequestState
    ) -> Dict[str, float]:
        """Unfinished solo compute seconds bound to each node in ``touched``
        across every live request (the admitting request itself excluded)."""
        committed = {name: 0.0 for name in touched}
        for state in self._states:
            if state is exclude or state.terminal:
                continue
            for unit in state.unit_list:
                if unit.completed:
                    continue
                for name, duration in self._unit_node_costs(state, unit):
                    if name in committed:
                        committed[name] += duration
        return committed

    @staticmethod
    def _unit_node_costs(state: _RequestState, unit: _Unit) -> List[Tuple[str, float]]:
        """Per-node solo durations of one unit's tasks, memoized per attempt."""
        if unit.node_costs is not None:
            return unit.node_costs
        profile = state.request.profile
        costs: List[Tuple[str, float]] = []
        if unit.run is None:
            node = unit.exec_nodes[0]
            vertex = unit.vertices[0]
            costs.append(
                (node.name, profile.get(vertex.index, unit.tier) / node.speed_factor)
            )
        else:
            run = unit.run
            for stack_index, stack in enumerate(run.stacks):
                node = unit.exec_nodes[stack_index]
                duration = sum(
                    profile.get(vertex.index, Tier.EDGE)
                    * stack.work_fraction(position, run.layer_output_area(position))
                    for position, vertex in enumerate(run.vertices)
                )
                costs.append((node.name, duration / node.speed_factor))
        unit.node_costs = costs
        return costs

    def _touched_links(self, state: _RequestState) -> List[SharedLink]:
        """The wires the request's cross-unit edges will traverse."""
        links: Dict[int, SharedLink] = {}
        graph = state.request.graph
        for unit in state.unit_list:
            for vertex in unit.vertices:
                for successor in graph.successors(vertex.index):
                    successor_unit = state.units[successor.index]
                    if successor_unit is unit:
                        continue
                    src, dst = unit.home_node, successor_unit.home_node
                    if src is None or dst is None or src is dst:
                        continue
                    try:
                        route = self.cluster.route(src.name, dst.name)
                    except RouteUnavailableError:
                        continue
                    for link in route:
                        links[id(link)] = link
        return list(links.values())

    def _activate(self, state: _RequestState, time_s: float) -> bool:
        """(Re)build the request's stages against the live nodes and start
        every stage with no pending inputs; False when a needed tier is
        entirely down."""
        if not self._build(state):
            return False
        self._start_ready_units(state, time_s)
        return True

    def _build(self, state: _RequestState) -> bool:
        """(Re)build the request's stages; False when a needed tier is
        entirely down.  Admission control peeks between build and start."""
        try:
            self._build_units(state)
        except _NoNodeAvailable:
            return False
        return True

    def _start_ready_units(self, state: _RequestState, time_s: float) -> None:
        for unit in state.unit_list:
            if unit.waiting == 0:
                self._start_unit(state, unit, time_s)

    def _build_units(self, state: _RequestState) -> None:
        request = state.request
        graph = request.graph
        state.units = {}
        state.unit_list = []
        topo_rank = {v.index: rank for rank, v in enumerate(graph.topological_order())}

        fused_member: Dict[int, FusedRunPlan] = {}
        if request.vsm_plan is not None:
            for run in request.vsm_plan.runs:
                for vertex in run.vertices:
                    fused_member[vertex.index] = run

        run_units: Dict[int, _Unit] = {}
        for vertex in graph.topological_order():
            run = fused_member.get(vertex.index)
            if run is not None:
                unit = run_units.get(id(run))
                if unit is None:
                    unit = _Unit(state, Tier.EDGE, list(run.vertices), run)
                    unit.topo_key = topo_rank[run.vertices[0].index]
                    run_units[id(run)] = unit
                    state.unit_list.append(unit)
            else:
                tier = request.plan.tier_of(vertex.index)
                unit = _Unit(state, tier, [vertex])
                unit.topo_key = topo_rank[vertex.index]
                state.unit_list.append(unit)
            state.units[vertex.index] = unit

        self._resolve_unit_nodes(state)

        for vertex in graph.topological_order():
            unit = state.units[vertex.index]
            for pred in graph.predecessors(vertex.index):
                if state.units[pred.index] is not unit:
                    unit.waiting += 1
        state.remaining_units = len(state.unit_list)

    def _resolve_unit_nodes(self, state: _RequestState) -> None:
        """Bind every unit to the nodes that are up *now* (snapshot).

        On a healthy cluster this reproduces the original resolution exactly:
        non-tiled work on each tier's primary node, fused runs fanned
        round-robin over all edge nodes.  Under failures the first *live*
        node of the tier takes over and tile stacks spread over the surviving
        edge rack.  Raises :class:`_NoNodeAvailable` when a needed tier has
        no live member.
        """
        live: Dict[Tier, List[ComputeNode]] = {}

        def tier_nodes(tier: Tier) -> List[ComputeNode]:
            if tier not in live:
                nodes = self.cluster.active_nodes(tier)
                if not nodes:
                    raise _NoNodeAvailable(tier.value)
                live[tier] = nodes
            return live[tier]

        for unit in state.unit_list:
            if unit.run is not None:
                edge_nodes = tier_nodes(Tier.EDGE)
                unit.exec_nodes = [
                    edge_nodes[i % len(edge_nodes)] for i in range(len(unit.run.stacks))
                ]
                unit.home_node = edge_nodes[0]
            elif unit.tier == Tier.DEVICE:
                unit.exec_nodes = [state.source_node]
                unit.home_node = state.source_node
            else:
                node = tier_nodes(unit.tier)[0]
                unit.exec_nodes = [node]
                unit.home_node = node

    # ------------------------------------------------------------------ #
    # Stage execution
    # ------------------------------------------------------------------ #
    def _resolve_source(self, request: ServingRequest) -> ComputeNode:
        """The device node a request's device-tier work runs on."""
        if request.source is None:
            return self.cluster.primary_node(Tier.DEVICE)
        node = self.cluster.node(request.source)
        if node.tier != Tier.DEVICE:
            raise ValueError(
                f"request {request.request_id!r} pins source {request.source!r}, "
                f"which is a {node.tier.value} node, not a device"
            )
        return node

    def _start_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        request = state.request
        if unit.run is None:
            vertex = unit.vertices[0]
            duration = request.profile.get(vertex.index, unit.tier)
            node = unit.exec_nodes[0]
            unit.remaining_tasks = 1
            self._enqueue_task(
                time_s,
                _Task(unit, node, duration / node.speed_factor, vertex.name, state.epoch),
            )
            return

        # A fused run fans its tile stacks out over the live edge nodes,
        # exactly like the one-shot executor on a healthy rack (round-robin
        # assignment, same per-stack work fractions).  Heterogeneous edge
        # machines stretch their share by the inverse of their speed factor.
        run = unit.run
        unit.remaining_tasks = len(run.stacks)
        for stack_index, stack in enumerate(run.stacks):
            node = unit.exec_nodes[stack_index]
            duration = 0.0
            for position, vertex in enumerate(run.vertices):
                fraction = stack.work_fraction(position, run.layer_output_area(position))
                duration += request.profile.get(vertex.index, Tier.EDGE) * fraction
            label = f"tile{stack.grid_position}:{run.vertices[0].name}..{run.vertices[-1].name}"
            self._enqueue_task(
                time_s, _Task(unit, node, duration / node.speed_factor, label, state.epoch)
            )

    def _enqueue_task(self, time_s: float, task: _Task) -> None:
        node_state = self._nodes[task.node.name]
        task.enqueued_s = time_s
        key = self.scheduler.queue_key(task, next(self._sequence))
        heapq.heappush(node_state.queue, (key, task))
        self._dispatch(node_state, time_s)

    def _prune_queue(self, node_state: _NodeState) -> None:
        """Drop queued tasks of aborted or terminal attempts, so the
        scheduler only ever reasons over live work.

        Only runs when an abort flagged the node as dirty — on the fault-free
        path every queued task is live by construction and dispatch stays
        scan-free.
        """
        if not node_state.dirty:
            return
        node_state.dirty = False
        node_state.queue = [
            entry
            for entry in node_state.queue
            if entry[1].epoch == entry[1].unit.state.epoch
            and not entry[1].unit.state.failed
        ]
        heapq.heapify(node_state.queue)

    def _mark_queues_dirty(self, state: _RequestState) -> None:
        """Flag the nodes that may hold queued tasks of a dying attempt."""
        for unit in state.unit_list:
            for node in unit.exec_nodes:
                node_state = self._nodes.get(node.name)
                if node_state is not None:
                    node_state.dirty = True

    def _dispatch(self, node_state: _NodeState, time_s: float) -> None:
        """Ask the scheduler for the next dispatch if the node is idle.

        Tasks whose attempt was aborted are discarded here; a down node
        dispatches nothing until it recovers.  The scheduler may return a
        deferral instead of work (a batching hold), in which case a flush
        event re-asks at the hold's deadline.
        """
        if node_state.busy or not self.cluster.node_is_up(node_state.node.name):
            return
        self._prune_queue(node_state)
        if not node_state.queue:
            return
        tasks, flush_at = self.scheduler.select(node_state, time_s)
        if not tasks:
            if flush_at is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"scheduler {self.scheduler.name!r} returned neither work "
                    f"nor a flush deadline for a non-empty queue"
                )
            # Deduplicate: every enqueue/task_end during a hold re-asks the
            # scheduler, but one pending flush per node deadline is enough.
            if node_state.flush_at is None or flush_at < node_state.flush_at - 1e-12:
                node_state.flush_at = flush_at
                self._push(flush_at, "flush", node_state)
            return
        node_state.flush_at = None
        self._start_dispatch(node_state, tasks, time_s)

    def _start_dispatch(
        self, node_state: _NodeState, tasks: List[_Task], time_s: float
    ) -> None:
        """Run one scheduler dispatch — a solo task or a micro-batch — on the
        node.  A batch occupies the node once, for the hardware's sublinear
        batch cost, and every member records a timeline event spanning it."""
        solo = [task.duration_s for task in tasks]
        if len(tasks) == 1:
            duration = solo[0]
        else:
            duration = batch_cost_s(solo, node_state.node.hardware.batch_exponent)
        start, end = node_state.node.schedule(time_s, duration)
        node_state.busy = True
        members = []
        for task in tasks:
            state = task.unit.state
            label = task.label if len(tasks) == 1 else f"batch[{len(tasks)}]:{task.label}"
            state.report.events.append(
                TimelineEvent(
                    node=node_state.node.name,
                    tier=task.unit.tier,
                    label=label,
                    kind="compute",
                    start_s=start,
                    end_s=end,
                    request_id=state.request.request_id,
                )
            )
            members.append((task, state.report.events, len(state.report.events) - 1))
        node_state.run_id += 1
        node_state.current = (members, end)
        self.batch_occupancy[len(tasks)] = self.batch_occupancy.get(len(tasks), 0) + 1
        if len(tasks) > 1:
            self.batches.append(
                BatchRecord(
                    node=node_state.node.name,
                    label=tasks[0].label,
                    size=len(tasks),
                    start_s=start,
                    end_s=end,
                    longest_solo_s=max(solo),
                    total_solo_s=sum(solo),
                )
            )
        self._push(end, "task_end", (node_state, tasks, node_state.run_id))

    def _handle_task_end(
        self, time_s: float, payload: Tuple[_NodeState, List[_Task], int]
    ) -> None:
        node_state, tasks, run_id = payload
        if run_id != node_state.run_id:
            # The node died while this dispatch was on it; the reservation
            # was rolled back and the owning requests already aborted.
            return
        node_state.busy = False
        node_state.current = None
        for task in tasks:
            unit = task.unit
            state = unit.state
            if task.epoch == state.epoch and not state.failed:
                unit.remaining_tasks -= 1
                if unit.remaining_tasks == 0:
                    self._complete_unit(state, unit, time_s)
        self._dispatch(node_state, time_s)

    def _complete_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        state.remaining_units -= 1
        unit.completed = True
        state.completion_s = max(state.completion_s, time_s)
        if unit.run is not None:
            gather_node = unit.home_node
            state.report.events.append(
                TimelineEvent(
                    node=gather_node.name,
                    tier=Tier.EDGE,
                    label=f"gather:{unit.vertices[-1].name}",
                    kind="gather",
                    start_s=time_s,
                    end_s=time_s,
                    request_id=state.request.request_id,
                )
            )
        graph = state.request.graph
        epoch = state.epoch
        for vertex in unit.vertices:
            for successor in graph.successors(vertex.index):
                successor_unit = state.units[successor.index]
                if successor_unit is unit:
                    continue
                self._deliver_edge(state, vertex, unit, successor, successor_unit, time_s)
                if state.epoch != epoch or state.failed:
                    # A severed route aborted the attempt mid-delivery; the
                    # remaining edges belong to a discarded plan.
                    return

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def _deliver_edge(
        self,
        state: _RequestState,
        producer: Vertex,
        src_unit: _Unit,
        consumer: Vertex,
        dst_unit: _Unit,
        time_s: float,
    ) -> None:
        src_node = src_unit.home_node
        dst_node = dst_unit.home_node
        if src_node is dst_node:
            # Same-node movement is free (the paper's intra-tier assumption).
            self._arrive(dst_unit, time_s)
            return
        request = state.request
        payload = producer.output_bytes
        # The transfer follows the topology's route — detouring around dark
        # wires and dead relays — and crosses every hop store-and-forward;
        # each hop is priced at the moment it starts and serialized on its
        # own link under FIFO contention.  A severed route aborts the attempt
        # and sends the request into failover.
        try:
            route = self.cluster.route(src_node.name, dst_node.name)
        except RouteUnavailableError:
            self._abort(state, time_s)
            return
        overall_start: Optional[float] = None
        clock = time_s
        hops: List[Tuple[SharedLink, float, float, int]] = []
        for link in route:
            if self.link_contention == "fifo":
                # Price the hop at the moment it actually starts: a transfer
                # queued behind a backlog on a traced wire pays the rate in
                # effect when the wire frees, not the rate at request time.
                starts_at = max(clock, link.available_at)
                duration = self.cluster.hop_seconds(
                    link, payload, request.condition, starts_at
                )
                start, end = link.reserve(clock, duration, payload)
                if self.faults:
                    hops.append((link, start, end, payload))
            else:
                duration = self.cluster.hop_seconds(link, payload, request.condition, clock)
                start, end = clock, clock + duration
                link.record(duration, payload)
            if overall_start is None:
                overall_start = start
            clock = end
        if overall_start is None:  # pragma: no cover - routes are never empty here
            self._arrive(dst_unit, time_s)
            return
        state.report.transfers.append(
            TensorTransfer(
                producer=producer.name,
                consumer=consumer.name,
                source_tier=src_unit.tier,
                destination_tier=dst_unit.tier,
                payload_bytes=payload,
                start_s=overall_start,
                duration_s=clock - overall_start,
                request_id=request.request_id,
            )
        )
        if self.faults:
            link_ids = frozenset(
                link.link_id or "-".join(link.key) for link in route
            )
            self._inflight.append(
                _Inflight(
                    end_s=clock,
                    link_ids=link_ids,
                    src=src_node.name,
                    dst=dst_node.name,
                    state=state,
                    epoch=state.epoch,
                    hops=hops,
                )
            )
        self._push(clock, "transfer_end", (dst_unit, state.epoch))

    def _handle_transfer_end(self, time_s: float, payload: Tuple[_Unit, int]) -> None:
        unit, epoch = payload
        state = unit.state
        if self._inflight and len(self._inflight) > 64:
            # Bound the in-flight registry during long healthy stretches of a
            # faulted run; drained rows are only otherwise pruned at faults.
            self._inflight = [t for t in self._inflight if t.end_s > time_s]
        if epoch != state.epoch or state.failed:
            return
        self._arrive(unit, time_s)

    def _arrive(self, unit: _Unit, time_s: float) -> None:
        unit.waiting -= 1
        if unit.waiting == 0:
            self._start_unit(unit.state, unit, time_s)

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def _handle_fault(self, time_s: float, event: FaultEvent) -> None:
        if event.kind == "node_down":
            if not self.cluster.node_is_up(event.target):
                return  # already down; idempotent
            self.cluster.fail_node(event.target)
            self._open_interval(self._node_down_intervals, event.target, time_s)
            node_state = self._nodes.get(event.target)  # None for relays
            if node_state is not None:
                self._kill_running_task(node_state, time_s)
            self._abort_touching_node(event.target, time_s)
        elif event.kind == "node_up":
            if self.cluster.node_is_up(event.target):
                return
            self.cluster.recover_node(event.target)
            self._close_interval(self._node_down_intervals, event.target, time_s)
            node_state = self._nodes.get(event.target)
            if node_state is not None:
                self._dispatch(node_state, time_s)
        elif event.kind == "link_down":
            if not self.cluster.link_is_up(event.target):
                return
            self.cluster.fail_link(event.target)
            self._open_interval(self._link_down_intervals, event.target, time_s)
            self._abort_inflight_over({event.target}, time_s)
        elif event.kind == "link_up":
            if self.cluster.link_is_up(event.target):
                return
            self.cluster.recover_link(event.target)
            self._close_interval(self._link_down_intervals, event.target, time_s)
        else:  # pragma: no cover - schedule validation rejects unknown kinds
            raise RuntimeError(f"unknown fault kind {event.kind!r}")

    @staticmethod
    def _open_interval(
        intervals: Dict[str, List[List[Optional[float]]]], target: str, time_s: float
    ) -> None:
        intervals.setdefault(target, []).append([time_s, None])

    @staticmethod
    def _close_interval(
        intervals: Dict[str, List[List[Optional[float]]]], target: str, time_s: float
    ) -> None:
        spans = intervals.get(target)
        if spans and spans[-1][1] is None:
            spans[-1][1] = time_s

    def _kill_running_task(self, node_state: _NodeState, time_s: float) -> None:
        """Cut short the dispatch executing on a dying node.

        Every member's recorded timeline event is truncated at the moment of
        death (the work really did stop), the node's reservation and busy
        bookkeeping are rolled back to ``time_s``, and the pending
        ``task_end`` event is invalidated via the run id.  A micro-batch
        dies *as a unit* — all members abort together (their requests touch
        the dead node, so :meth:`_abort_touching_node` sweeps them up) — and
        each member is flagged to retry unbatched: the whole membership just
        shared one failure domain, and the failover attempt must not.
        """
        node_state.run_id += 1
        if not node_state.busy or node_state.current is None:
            return
        members, end_s = node_state.current
        if end_s > time_s:
            for _, events_list, event_index in members:
                if events_list[event_index].end_s > time_s:
                    events_list[event_index] = replace(
                        events_list[event_index], end_s=time_s
                    )
            node_state.node.busy_seconds -= end_s - time_s
        if len(members) > 1:
            for task, _, _ in members:
                task.unit.state.no_batch = True
        node_state.node.available_at = time_s
        node_state.busy = False
        node_state.current = None

    def _abort_touching_node(self, node_name: str, time_s: float) -> None:
        """Abort every live request with unfinished work bound to a dead node
        or bytes in flight to, from, or through it.

        For in-flight transfers the match is endpoint-precise: a transfer is
        disrupted when the dead node is its source or destination, or when
        its route crosses a wire that names the node *directly* (a dead relay
        takes its point-to-point links with it).  A transfer between two
        healthy nodes merely sharing a tier-alias medium (the paper's LAN)
        with the dead node is untouched.
        """
        for state in self._states:
            if state.terminal:
                continue
            if any(
                not unit.completed and unit.touches(node_name) for unit in state.unit_list
            ):
                self._abort(state, time_s)
        direct = {
            name
            for name, link in self.cluster.topology.links.items()
            if link.a == node_name or link.b == node_name
        }
        victims = [
            t.state
            for t in self._live_inflight(time_s)
            if t.src == node_name or t.dst == node_name or (t.link_ids & direct)
        ]
        for state in victims:
            self._abort(state, time_s)

    def _abort_inflight_over(self, link_ids: set, time_s: float) -> None:
        """Abort requests whose in-flight transfers cross a severed wire."""
        victims = [t.state for t in self._live_inflight(time_s) if t.link_ids & link_ids]
        for state in victims:
            self._abort(state, time_s)

    def _live_inflight(self, time_s: float) -> List[_Inflight]:
        """Still-running transfers of still-live attempts (prunes the rest)."""
        self._inflight = [
            t
            for t in self._inflight
            if t.end_s > time_s and t.epoch == t.state.epoch and not t.state.terminal
        ]
        return self._inflight

    def _release_inflight(self, state: _RequestState, time_s: float) -> None:
        """Release the wire reservations of an aborted attempt's transfers.

        Store-and-forward books every hop of a route up-front; when the
        attempt dies, reservations that had not started by ``time_s`` are
        unwound (tail-first, while the reservation is still the last one
        booked on its wire) so phantom transfers stop serializing later
        traffic.  Wire time already started stays consumed — the bytes were
        on the medium when the failure hit.
        """
        remaining = []
        for t in self._inflight:
            if t.state is not state:
                remaining.append(t)
                continue
            if t.end_s > time_s and t.epoch == state.epoch:
                for link, start, end, payload in reversed(t.hops):
                    if start >= time_s and link.available_at == end:
                        link.available_at = start
                        link.busy_seconds -= end - start
                        link.bytes_carried -= payload
                        link.transfer_count -= 1
                    else:
                        break
        self._inflight = remaining

    def _abort(self, state: _RequestState, time_s: float) -> None:
        """Discard a request's current attempt and schedule a failover retry.

        Queued tasks and pending transfer completions of the attempt are
        invalidated by the epoch bump; tasks already executing on *healthy*
        nodes run to completion (no preemption) but their effects are
        ignored.  The retry fires at the same timestamp, after all same-time
        faults have been applied, so it replans against the full degraded
        state.
        """
        if state.terminal:
            return
        self._release_inflight(state, time_s)
        self._mark_queues_dirty(state)
        state.epoch += 1
        if not state.retry_pending:
            state.retry_pending = True
            self._push(time_s, "retry", state)

    def _handle_retry(self, time_s: float, state: _RequestState) -> None:
        state.retry_pending = False
        if state.terminal:
            return
        if state.retries >= self.max_retries:
            self._fail(state, time_s)
            return
        state.retries += 1
        if not self.cluster.node_is_up(state.source_node.name):
            self._fail(state, time_s)
            return
        if self._replan is not None:
            new_request = self._replan(
                state.request, time_s, self.cluster.down_nodes, self.cluster.down_links
            )
            if new_request is None:
                self._fail(state, time_s)
                return
            self.failover_replans += 1
            state.request = new_request
        if not self._activate(state, time_s):
            self._fail(state, time_s)

    def _fail(self, state: _RequestState, time_s: float) -> None:
        state.failed = True
        state.failed_at_s = time_s
        state.epoch += 1
        state.completion_s = time_s
        self._mark_queues_dirty(state)


def _clip_downtime(
    intervals: Dict[str, List[List[Optional[float]]]], start: float, end: float
) -> Dict[str, float]:
    """Seconds each target spent down within ``[start, end]`` (open intervals
    are still down at the end of the run)."""
    downtime: Dict[str, float] = {}
    for target, spans in intervals.items():
        total = 0.0
        for span_start, span_end in spans:
            closed_end = end if span_end is None else min(span_end, end)
            total += max(0.0, closed_end - max(span_start, start))
        if total > 0.0:
            downtime[target] = total
    return downtime
