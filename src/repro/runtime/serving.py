"""Discrete-event serving engine: many in-flight inferences on one cluster.

The one-shot :class:`~repro.runtime.executor.DistributedExecutor` walks a
single DNN DAG against idle nodes and uncontended links.  This module
generalises it into a true discrete-event simulator: a global event queue over
the cluster in which any number of partitioned inferences are in flight at
once, contending for

* **per-node compute** — every :class:`~repro.runtime.node.ComputeNode` runs
  one task at a time and keeps a FIFO ready-queue (ties broken by request
  arrival order, then DAG topological order, so the schedule is deterministic
  and the single-request case reproduces the one-shot timeline exactly), and
* **per-link bandwidth** — every cross-node transfer follows the topology's
  fewest-hop route and occupies each
  :class:`~repro.network.link.SharedLink` on it for that hop's transmission
  time (store-and-forward on multi-hop chains); with
  ``link_contention="fifo"`` concurrent transfers serialize per wire, with
  ``"none"`` links have infinite capacity (the paper's one-shot assumption,
  used by the degenerate single-request path so the seed figures are
  bit-identical).  Inherited links price transfers off the request's network
  condition; static and traced links price off their own rate at the moment
  the hop starts.

The engine consumes :class:`ServingRequest`s — a request plus its placement
plan, latency profile, optional VSM plan and the network condition its
transfers are charged under — and produces per-request
:class:`~repro.runtime.simulator.ExecutionReport`s plus the aggregate
:class:`ServingReport` (percentile latencies, throughput, utilisation,
backbone traffic).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import FusedRunPlan, VSMPlan
from repro.graph.dag import DnnGraph, Vertex
from repro.network.conditions import NetworkCondition
from repro.profiling.profiler import LatencyProfile
from repro.runtime.cluster import Cluster
from repro.runtime.messages import TensorTransfer
from repro.runtime.node import ComputeNode
from repro.runtime.simulator import ExecutionReport, TimelineEvent

#: Link contention models understood by the engine.
LINK_CONTENTION_MODES = ("fifo", "none")


# --------------------------------------------------------------------------- #
# Inputs and outputs
# --------------------------------------------------------------------------- #
@dataclass
class ServingRequest:
    """One inference request, fully planned and ready to simulate."""

    index: int
    request_id: Optional[str]
    graph: DnnGraph
    plan: PlacementPlan
    profile: LatencyProfile
    condition: NetworkCondition
    arrival_s: float = 0.0
    vsm_plan: Optional[VSMPlan] = None
    #: Name of the device node the request originates at; ``None`` means the
    #: cluster's primary device (the pre-topology single-device behaviour).
    source: Optional[str] = None


@dataclass
class RequestRecord:
    """Outcome of one request under the serving engine."""

    request_id: Optional[str]
    model: str
    arrival_s: float
    completion_s: float
    report: ExecutionReport
    #: Latency of the same plan on an idle cluster (filled by the serving
    #: layer from the plan cache); ``None`` when unknown.
    ideal_latency_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Extra latency caused by contention, relative to an idle cluster."""
        if self.ideal_latency_s is None:
            return None
        return self.latency_s - self.ideal_latency_s


@dataclass
class ServingReport:
    """Aggregate result of serving a workload on one cluster."""

    workload_name: str
    records: List[RequestRecord] = field(default_factory=list)
    makespan_s: float = 0.0
    node_busy_s: Dict[str, float] = field(default_factory=dict)
    link_busy_s: Dict[str, float] = field(default_factory=dict)
    #: Registry name of the partitioning method the stream was planned with
    #: (filled by :meth:`repro.core.d3.D3System.serve`; empty when the report
    #: was built directly from the simulator).
    method: str = ""
    #: Plan-cache statistics, filled by :meth:`repro.core.d3.D3System.serve`.
    plans_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    repartitions: int = 0

    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def latencies_s(self) -> List[float]:
        return [record.latency_s for record in self.records]

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated wall-clock."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_requests / self.makespan_s

    @property
    def bytes_to_cloud(self) -> int:
        """Total backbone traffic entering the cloud across all requests."""
        return sum(record.report.bytes_to_cloud for record in self.records)

    def latency_percentiles(self, quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Latency percentiles (``{"p50": ..., "p95": ..., "p99": ...}``)."""
        from repro.experiments.reporting import latency_percentiles

        return latency_percentiles(self.latencies_s, quantiles)

    @property
    def mean_latency_s(self) -> float:
        from repro.experiments.reporting import mean

        values = self.latencies_s
        return mean(values) if values else 0.0

    def mean_queueing_delay_s(self) -> Optional[float]:
        from repro.experiments.reporting import mean

        delays = [r.queueing_delay_s for r in self.records if r.queueing_delay_s is not None]
        return mean(delays) if delays else None

    def node_utilisation(self) -> Dict[str, float]:
        """Busy fraction of every node over the workload's makespan."""
        if self.makespan_s <= 0:
            return {name: 0.0 for name in self.node_busy_s}
        return {name: min(1.0, busy / self.makespan_s) for name, busy in self.node_busy_s.items()}

    def summary(self) -> str:
        """Multi-line human-readable serving report."""
        via = f" via {self.method}" if self.method else ""
        lines = [
            f"{self.workload_name}: {self.num_requests} requests in "
            f"{self.makespan_s:.2f} s ({self.throughput_rps:.2f} req/s){via}"
        ]
        if self.records:
            pct = self.latency_percentiles()
            lines.append(
                "  latency p50 {p50:.1f} ms, p95 {p95:.1f} ms, p99 {p99:.1f} ms, "
                "mean {mean:.1f} ms".format(
                    p50=pct["p50"] * 1e3,
                    p95=pct["p95"] * 1e3,
                    p99=pct["p99"] * 1e3,
                    mean=self.mean_latency_s * 1e3,
                )
            )
            queueing = self.mean_queueing_delay_s()
            if queueing is not None:
                # Clamp the float-epsilon negatives an idle stream produces.
                lines.append(f"  mean queueing delay {max(0.0, queueing) * 1e3:.1f} ms")
        utilisation = self.node_utilisation()
        if utilisation:
            busiest = sorted(utilisation.items(), key=lambda kv: kv[1], reverse=True)
            lines.append(
                "  utilisation " + ", ".join(f"{name} {value:.0%}" for name, value in busiest)
            )
        lines.append(f"  backbone to cloud {self.bytes_to_cloud * 8.0 / 1e6:.3f} Mb")
        lines.append(
            f"  plans computed {self.plans_computed} "
            f"(cache hits {self.cache_hits}, misses {self.cache_misses}, "
            f"repartitions {self.repartitions})"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Internal simulation state
# --------------------------------------------------------------------------- #
class _Unit:
    """One schedulable stage of a request: a vertex or a whole fused run."""

    __slots__ = ("state", "tier", "vertices", "run", "waiting", "remaining_tasks", "topo_key")

    def __init__(
        self,
        state: "_RequestState",
        tier: Tier,
        vertices: List[Vertex],
        run: Optional[FusedRunPlan] = None,
    ) -> None:
        self.state = state
        self.tier = tier
        self.vertices = vertices
        self.run = run
        self.waiting = 0  # incoming cross-unit edges not yet arrived
        self.remaining_tasks = 0  # compute tasks in flight once started
        self.topo_key = 0  # topological rank of the first member vertex


class _RequestState:
    """Everything the engine tracks for one in-flight request."""

    __slots__ = (
        "request",
        "report",
        "units",
        "unit_list",
        "remaining_units",
        "completion_s",
        "source_node",
    )

    def __init__(self, request: ServingRequest, source_node: ComputeNode) -> None:
        self.request = request
        self.report = ExecutionReport(
            model_name=request.graph.name,
            end_to_end_latency_s=0.0,
            request_id=request.request_id,
        )
        self.units: Dict[int, _Unit] = {}
        self.unit_list: List[_Unit] = []
        self.remaining_units = 0
        self.completion_s = 0.0
        #: Device node all device-tier work of this request runs on.
        self.source_node = source_node


@dataclass
class _Task:
    """One reservation-sized piece of work bound for a specific node."""

    unit: _Unit
    node: ComputeNode
    duration_s: float
    label: str


class _NodeState:
    """FIFO ready-queue and busy flag of one node."""

    __slots__ = ("node", "queue", "busy")

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.queue: List[Tuple[Tuple[int, int, int], _Task]] = []
        self.busy = False


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class ServingSimulator:
    """Simulate a stream of partitioned inferences on a shared cluster.

    Parameters
    ----------
    cluster:
        The deployment all requests run on.  Its node and link state is reset
        at the start of every :meth:`run`.
    link_contention:
        ``"fifo"`` serializes concurrent transfers on each inter-tier link
        (the serving default); ``"none"`` gives links infinite capacity,
        reproducing the one-shot semantics of the original executor.
    """

    def __init__(self, cluster: Cluster, link_contention: str = "fifo") -> None:
        if link_contention not in LINK_CONTENTION_MODES:
            raise ValueError(
                f"unknown link contention mode {link_contention!r}; "
                f"expected one of {LINK_CONTENTION_MODES}"
            )
        self.cluster = cluster
        self.link_contention = link_contention
        self._events: List[Tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._nodes: Dict[str, _NodeState] = {}
        self._states: List[_RequestState] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, requests: List[ServingRequest]) -> List[RequestRecord]:
        """Simulate all ``requests``; returns one record per request.

        Records come back in arrival order.  Event/transfer timestamps in the
        per-request reports are absolute simulation times; each report's
        ``end_to_end_latency_s`` is relative to its request's arrival.
        """
        self.cluster.reset()
        self._events = []
        self._sequence = itertools.count()
        self._nodes = {node.name: _NodeState(node) for node in self.cluster.all_nodes}
        self._states = []

        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        for request in ordered:
            self._push(request.arrival_s, "arrival", request)

        while self._events:
            time_s, _, kind, payload = heapq.heappop(self._events)
            if kind == "arrival":
                self._handle_arrival(time_s, payload)  # type: ignore[arg-type]
            elif kind == "task_end":
                self._handle_task_end(time_s, payload)  # type: ignore[arg-type]
            elif kind == "transfer_end":
                self._handle_transfer_end(time_s, payload)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")

        records = []
        for state in sorted(self._states, key=lambda s: s.request.index):
            if state.remaining_units:
                raise RuntimeError(
                    f"request {state.request.request_id} finished the event loop "
                    f"with {state.remaining_units} unexecuted stages (dependency deadlock)"
                )
            state.report.end_to_end_latency_s = state.completion_s - state.request.arrival_s
            records.append(
                RequestRecord(
                    request_id=state.request.request_id,
                    model=state.request.graph.name,
                    arrival_s=state.request.arrival_s,
                    completion_s=state.completion_s,
                    report=state.report,
                )
            )
        return records

    def build_report(self, workload_name: str, records: List[RequestRecord]) -> ServingReport:
        """Aggregate records plus the cluster's utilisation bookkeeping."""
        makespan = 0.0
        if records:
            start = min(record.arrival_s for record in records)
            end = max(record.completion_s for record in records)
            makespan = end - start
        return ServingReport(
            workload_name=workload_name,
            records=records,
            makespan_s=makespan,
            node_busy_s={node.name: node.busy_seconds for node in self.cluster.all_nodes},
            link_busy_s={
                # Key by link id: two parallel wires between the same endpoints
                # are distinct links and must report separately.
                link.link_id or "-".join(link.key): link.busy_seconds
                for link in self.cluster.shared_links.values()
            },
        )

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time_s, next(self._sequence), kind, payload))

    # ------------------------------------------------------------------ #
    # Request admission
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, time_s: float, request: ServingRequest) -> None:
        state = _RequestState(request, self._resolve_source(request))
        self._states.append(state)
        self._build_units(state)
        # Stages with no cross-unit inputs (the virtual input vertex) are
        # ready the moment the request arrives.
        for unit in state.unit_list:
            if unit.waiting == 0:
                self._start_unit(state, unit, time_s)

    def _build_units(self, state: _RequestState) -> None:
        request = state.request
        graph = request.graph
        topo_rank = {v.index: rank for rank, v in enumerate(graph.topological_order())}

        fused_member: Dict[int, FusedRunPlan] = {}
        if request.vsm_plan is not None:
            for run in request.vsm_plan.runs:
                for vertex in run.vertices:
                    fused_member[vertex.index] = run

        run_units: Dict[int, _Unit] = {}
        for vertex in graph.topological_order():
            run = fused_member.get(vertex.index)
            if run is not None:
                unit = run_units.get(id(run))
                if unit is None:
                    unit = _Unit(state, Tier.EDGE, list(run.vertices), run)
                    unit.topo_key = topo_rank[run.vertices[0].index]
                    run_units[id(run)] = unit
                    state.unit_list.append(unit)
            else:
                tier = request.plan.tier_of(vertex.index)
                unit = _Unit(state, tier, [vertex])
                unit.topo_key = topo_rank[vertex.index]
                state.unit_list.append(unit)
            state.units[vertex.index] = unit

        for vertex in graph.topological_order():
            unit = state.units[vertex.index]
            for pred in graph.predecessors(vertex.index):
                if state.units[pred.index] is not unit:
                    unit.waiting += 1
        state.remaining_units = len(state.unit_list)

    # ------------------------------------------------------------------ #
    # Stage execution
    # ------------------------------------------------------------------ #
    def _resolve_source(self, request: ServingRequest) -> ComputeNode:
        """The device node a request's device-tier work runs on."""
        if request.source is None:
            return self.cluster.primary_node(Tier.DEVICE)
        node = self.cluster.node(request.source)
        if node.tier != Tier.DEVICE:
            raise ValueError(
                f"request {request.request_id!r} pins source {request.source!r}, "
                f"which is a {node.tier.value} node, not a device"
            )
        return node

    def _unit_node(self, state: _RequestState, unit: _Unit) -> ComputeNode:
        """The node a unit executes on (fused runs: their gather node)."""
        if unit.tier == Tier.DEVICE:
            return state.source_node
        return self.cluster.primary_node(unit.tier)

    def _start_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        request = state.request
        if unit.run is None:
            vertex = unit.vertices[0]
            duration = request.profile.get(vertex.index, unit.tier)
            node = self._unit_node(state, unit)
            unit.remaining_tasks = 1
            self._enqueue_task(
                time_s, _Task(unit, node, duration / node.speed_factor, vertex.name)
            )
            return

        # A fused run fans its tile stacks out over all edge nodes, exactly
        # like the one-shot executor (round-robin assignment, same per-stack
        # work fractions).  Heterogeneous edge machines stretch their share
        # by the inverse of their speed factor.
        run = unit.run
        edge_nodes = self.cluster.edge_nodes
        unit.remaining_tasks = len(run.stacks)
        for stack_index, stack in enumerate(run.stacks):
            node = edge_nodes[stack_index % len(edge_nodes)]
            duration = 0.0
            for position, vertex in enumerate(run.vertices):
                fraction = stack.work_fraction(position, run.layer_output_area(position))
                duration += request.profile.get(vertex.index, Tier.EDGE) * fraction
            label = f"tile{stack.grid_position}:{run.vertices[0].name}..{run.vertices[-1].name}"
            self._enqueue_task(
                time_s, _Task(unit, node, duration / node.speed_factor, label)
            )

    def _enqueue_task(self, time_s: float, task: _Task) -> None:
        node_state = self._nodes[task.node.name]
        priority = (task.unit.state.request.index, task.unit.topo_key, next(self._sequence))
        heapq.heappush(node_state.queue, (priority, task))
        self._dispatch(node_state, time_s)

    def _dispatch(self, node_state: _NodeState, time_s: float) -> None:
        """Start the next queued task if the node is idle (work-conserving)."""
        if node_state.busy or not node_state.queue:
            return
        _, task = heapq.heappop(node_state.queue)
        start, end = node_state.node.schedule(time_s, task.duration_s)
        node_state.busy = True
        state = task.unit.state
        state.report.events.append(
            TimelineEvent(
                node=node_state.node.name,
                tier=task.unit.tier,
                label=task.label,
                kind="compute",
                start_s=start,
                end_s=end,
                request_id=state.request.request_id,
            )
        )
        self._push(end, "task_end", (node_state, task))

    def _handle_task_end(self, time_s: float, payload: Tuple[_NodeState, _Task]) -> None:
        node_state, task = payload
        node_state.busy = False
        unit = task.unit
        unit.remaining_tasks -= 1
        if unit.remaining_tasks == 0:
            self._complete_unit(unit.state, unit, time_s)
        self._dispatch(node_state, time_s)

    def _complete_unit(self, state: _RequestState, unit: _Unit, time_s: float) -> None:
        state.remaining_units -= 1
        state.completion_s = max(state.completion_s, time_s)
        if unit.run is not None:
            gather_node = self.cluster.primary_node(Tier.EDGE)
            state.report.events.append(
                TimelineEvent(
                    node=gather_node.name,
                    tier=Tier.EDGE,
                    label=f"gather:{unit.vertices[-1].name}",
                    kind="gather",
                    start_s=time_s,
                    end_s=time_s,
                    request_id=state.request.request_id,
                )
            )
        graph = state.request.graph
        for vertex in unit.vertices:
            for successor in graph.successors(vertex.index):
                successor_unit = state.units[successor.index]
                if successor_unit is unit:
                    continue
                self._deliver_edge(state, vertex, unit, successor, successor_unit, time_s)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def _deliver_edge(
        self,
        state: _RequestState,
        producer: Vertex,
        src_unit: _Unit,
        consumer: Vertex,
        dst_unit: _Unit,
        time_s: float,
    ) -> None:
        src_node = self._unit_node(state, src_unit)
        dst_node = self._unit_node(state, dst_unit)
        if src_node is dst_node:
            # Same-node movement is free (the paper's intra-tier assumption).
            self._arrive(dst_unit, time_s)
            return
        request = state.request
        payload = producer.output_bytes
        # The transfer follows the topology's route and crosses every wire on
        # it (store-and-forward); each hop is priced at the moment it starts
        # and serialized on its own link under FIFO contention.
        overall_start: Optional[float] = None
        clock = time_s
        for link in self.cluster.route(src_node.name, dst_node.name):
            if self.link_contention == "fifo":
                # Price the hop at the moment it actually starts: a transfer
                # queued behind a backlog on a traced wire pays the rate in
                # effect when the wire frees, not the rate at request time.
                starts_at = max(clock, link.available_at)
                duration = self.cluster.hop_seconds(
                    link, payload, request.condition, starts_at
                )
                start, end = link.reserve(clock, duration, payload)
            else:
                duration = self.cluster.hop_seconds(link, payload, request.condition, clock)
                start, end = clock, clock + duration
                link.record(duration, payload)
            if overall_start is None:
                overall_start = start
            clock = end
        if overall_start is None:  # pragma: no cover - routes are never empty here
            self._arrive(dst_unit, time_s)
            return
        state.report.transfers.append(
            TensorTransfer(
                producer=producer.name,
                consumer=consumer.name,
                source_tier=src_unit.tier,
                destination_tier=dst_unit.tier,
                payload_bytes=payload,
                start_s=overall_start,
                duration_s=clock - overall_start,
                request_id=request.request_id,
            )
        )
        self._push(clock, "transfer_end", dst_unit)

    def _handle_transfer_end(self, time_s: float, unit: _Unit) -> None:
        self._arrive(unit, time_s)

    def _arrive(self, unit: _Unit, time_s: float) -> None:
        unit.waiting -= 1
        if unit.waiting == 0:
            self._start_unit(unit.state, unit, time_s)
