"""Model artifacts, compression codecs, and per-node weight caches.

Serving a model is not just compute: its weights must be *resident* on every
node that runs one of its stages.  This module gives the simulator a memory
subsystem:

``ModelArtifact``
    Per-vertex weight bytes and activation working sets derived from a
    :class:`~repro.graph.dag.DnnGraph` (float32, ``weight_count * 4``).

``CompressionCodec``
    How weights travel and unpack.  Artifacts are compressed **once** at
    publish time and decompressed on **every** cold load, so an asymmetric
    "write once, read many" codec (the ``zxc`` entry: slow compress, very
    fast decompress) beats a symmetric codec of equal ratio on cold-start
    latency — the compression choice becomes part of the partition objective.

``WeightCache``
    A per-node cache with a byte capacity (``HardwareSpec.memory_gb``,
    optionally capped by a serve-time budget) and pluggable eviction
    (``"lru"`` or ``"priority"``, an access-frequency policy).  Pinned
    entries — models with in-flight tasks — are never evicted.

``MemoryModel``
    The serve-time configuration bundle: budget, codec, eviction policy.
    ``resolve_memory`` maps user-facing knobs to a model (or ``None`` when
    every knob is inert, keeping the unconstrained path bit-identical).

The simulator surfaces cache misses as first-class **cold-start events**:
compressed bytes move over the declared wires from the cloud artifact store,
then decompress, before the first task of a non-resident model may dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "ArtifactError",
    "UnknownCodecError",
    "CapacityError",
    "BYTES_PER_WEIGHT",
    "ModelArtifact",
    "CompressionCodec",
    "CODECS",
    "get_codec",
    "register_codec",
    "WeightCache",
    "EVICTION_POLICIES",
    "MemoryModel",
    "resolve_memory",
]

#: Weights are stored and shipped as float32.
BYTES_PER_WEIGHT = 4

GIB = 1024 ** 3


class ArtifactError(ValueError):
    """Base class for artifact/memory subsystem errors."""


class UnknownCodecError(ArtifactError):
    """Raised when a codec name is not in the registry."""


class CapacityError(ArtifactError):
    """Raised when an entry cannot fit even after evicting every unpinned
    resident model."""


# --------------------------------------------------------------------- #
# Model artifacts
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModelArtifact:
    """Byte-level description of a model's weights and activations.

    Attributes
    ----------
    model:
        Graph name the artifact describes.
    vertex_weight_bytes:
        Weight bytes per vertex index (float32).
    vertex_activation_bytes:
        Output-tensor bytes per vertex index — the activation working set a
        node must hold while executing that vertex.
    """

    model: str
    vertex_weight_bytes: Mapping[int, int]
    vertex_activation_bytes: Mapping[int, int]

    @classmethod
    def from_graph(cls, graph) -> "ModelArtifact":
        """Derive an artifact from a :class:`~repro.graph.dag.DnnGraph`."""
        weights: Dict[int, int] = {}
        activations: Dict[int, int] = {}
        for vertex in graph.vertices:
            weights[vertex.index] = vertex.weight_count * BYTES_PER_WEIGHT
            activations[vertex.index] = vertex.output_bytes
        return cls(
            model=graph.name,
            vertex_weight_bytes=weights,
            vertex_activation_bytes=activations,
        )

    @property
    def total_weight_bytes(self) -> int:
        return sum(self.vertex_weight_bytes.values())

    @property
    def peak_activation_bytes(self) -> int:
        return max(self.vertex_activation_bytes.values(), default=0)

    def weight_bytes_for(self, vertices: Iterable[int]) -> int:
        """Weight bytes of a stage set (vertex indices)."""
        return sum(self.vertex_weight_bytes.get(index, 0) for index in vertices)

    def activation_bytes_for(self, vertices: Iterable[int]) -> int:
        """Peak activation working set of a stage set (vertex indices)."""
        return max(
            (self.vertex_activation_bytes.get(index, 0) for index in vertices),
            default=0,
        )

    def resident_bytes_for(self, vertices: Iterable[int]) -> int:
        """Bytes a node must keep resident to run a stage set: the stage
        weights plus the peak activation working set."""
        indices = list(vertices)
        return self.weight_bytes_for(indices) + self.activation_bytes_for(indices)


# --------------------------------------------------------------------- #
# Compression codecs
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompressionCodec:
    """A weight-compression scheme: ratio plus directional throughputs.

    ``ratio`` is raw/compressed (2.0 halves the wire bytes).  Throughputs
    are in MB/s of *raw* bytes processed; ``float("inf")`` means free.
    """

    name: str
    ratio: float
    compress_mb_s: float
    decompress_mb_s: float

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ArtifactError(f"codec ratio must be >= 1.0, got {self.ratio}")
        if self.compress_mb_s <= 0 or self.decompress_mb_s <= 0:
            raise ArtifactError("codec throughputs must be positive")

    def compressed_bytes(self, raw_bytes: int) -> int:
        return int(round(raw_bytes / self.ratio))

    def compress_seconds(self, raw_bytes: int) -> float:
        if self.compress_mb_s == float("inf"):
            return 0.0
        return raw_bytes / (self.compress_mb_s * 1e6)

    def decompress_seconds(self, raw_bytes: int) -> float:
        if self.decompress_mb_s == float("inf"):
            return 0.0
        return raw_bytes / (self.decompress_mb_s * 1e6)


#: Built-in codecs.  ``symmetric`` and ``zxc`` share the ratio on purpose —
#: at equal wire bytes, the asymmetric codec's fast decompress is the entire
#: cold-start advantage ("write once, read many").
CODECS: Dict[str, CompressionCodec] = {}


def register_codec(codec: CompressionCodec) -> CompressionCodec:
    """Add a codec to the registry (replacing any same-name entry)."""
    CODECS[codec.name] = codec
    return codec


register_codec(
    CompressionCodec(
        name="none", ratio=1.0, compress_mb_s=float("inf"), decompress_mb_s=float("inf")
    )
)
register_codec(
    CompressionCodec(name="symmetric", ratio=2.0, compress_mb_s=400.0, decompress_mb_s=400.0)
)
register_codec(
    CompressionCodec(name="zxc", ratio=2.0, compress_mb_s=80.0, decompress_mb_s=1600.0)
)


def get_codec(name: str) -> CompressionCodec:
    try:
        return CODECS[name]
    except KeyError:
        raise UnknownCodecError(
            f"unknown codec {name!r}; expected one of {sorted(CODECS)}"
        ) from None


# --------------------------------------------------------------------- #
# Per-node weight cache
# --------------------------------------------------------------------- #
EVICTION_POLICIES = ("lru", "priority")


class _CacheEntry:
    __slots__ = ("model", "size_bytes", "last_used", "hits")

    def __init__(self, model: str, size_bytes: int, tick: int) -> None:
        self.model = model
        self.size_bytes = size_bytes
        self.last_used = tick
        self.hits = 0


class WeightCache:
    """Byte-budgeted model cache for one compute node.

    Invariants (see the hypothesis suite in
    ``tests/runtime/test_artifacts_properties.py``):

    * ``resident_bytes <= capacity_bytes`` always;
    * a model cold-starts exactly once per eviction–reload cycle
      (``resident`` stays true until an eviction removes the entry);
    * eviction never removes a pinned model (pins track in-flight tasks).

    Eviction policies: ``"lru"`` removes the least-recently-used unpinned
    entry; ``"priority"`` removes the unpinned entry with the fewest
    recorded hits (ties broken LRU), keeping hot models resident under
    thrash.
    """

    __slots__ = (
        "node",
        "capacity_bytes",
        "eviction",
        "_entries",
        "_pins",
        "_tick",
        "resident_bytes",
        "peak_resident_bytes",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, node: str, capacity_bytes: int, eviction: str = "lru") -> None:
        if eviction not in EVICTION_POLICIES:
            raise ArtifactError(
                f"unknown eviction policy {eviction!r}; expected one of {EVICTION_POLICIES}"
            )
        if capacity_bytes < 0:
            raise ArtifactError("capacity must be non-negative")
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.eviction = eviction
        self._entries: Dict[str, _CacheEntry] = {}
        self._pins: Dict[str, int] = {}
        self._tick = 0
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries ------------------------------------------------------- #
    def resident(self, model: str) -> bool:
        return model in self._entries

    def resident_models(self) -> List[str]:
        return list(self._entries)

    def pin_count(self, model: str) -> int:
        return self._pins.get(model, 0)

    # -- pinning (in-flight tasks) ------------------------------------- #
    def pin(self, model: str) -> None:
        """Mark a model as having in-flight work; pinned models are never
        evicted.  Pins are independent of residency so a load in flight is
        protected before its entry is admitted."""
        self._pins[model] = self._pins.get(model, 0) + 1

    def unpin(self, model: str) -> None:
        count = self._pins.get(model, 0)
        if count <= 1:
            self._pins.pop(model, None)
        else:
            self._pins[model] = count - 1

    # -- accounting ---------------------------------------------------- #
    def record_hit(self, model: str) -> None:
        """A resident lookup: refresh recency, bump frequency."""
        entry = self._entries[model]
        self._tick += 1
        entry.last_used = self._tick
        entry.hits += 1
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    # -- admission / eviction ------------------------------------------ #
    def admit(self, model: str, size_bytes: int) -> List[str]:
        """Make ``model`` resident, evicting unpinned entries as needed.

        Returns the models evicted to make room.  Raises
        :class:`CapacityError` when the entry cannot fit even after every
        unpinned entry is gone.
        """
        if size_bytes < 0:
            raise ArtifactError("entry size must be non-negative")
        existing = self._entries.get(model)
        if existing is not None:
            # Re-admission with a (possibly) different footprint.
            self.resident_bytes -= existing.size_bytes
            del self._entries[model]
        # Admission is all-or-nothing: decide feasibility *before* evicting,
        # so a doomed admission never destroys resident entries on the way
        # to its CapacityError.
        immovable = sum(
            entry.size_bytes
            for entry in self._entries.values()
            if self._pins.get(entry.model, 0) > 0
        )
        if immovable + size_bytes > self.capacity_bytes:
            if existing is not None:
                self._entries[model] = existing
                self.resident_bytes += existing.size_bytes
            raise CapacityError(
                f"node {self.node!r}: cannot fit {size_bytes} bytes for "
                f"{model!r} within {self.capacity_bytes} bytes "
                f"({immovable} resident and pinned)"
            )
        evicted: List[str] = []
        while self.resident_bytes + size_bytes > self.capacity_bytes:
            victim = self._select_victim()
            assert victim is not None  # guaranteed by the feasibility check
            self._evict(victim)
            evicted.append(victim)
        self._tick += 1
        self._entries[model] = _CacheEntry(model, size_bytes, self._tick)
        self.resident_bytes += size_bytes
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes
        return evicted

    def _select_victim(self) -> Optional[str]:
        candidates = [
            entry
            for entry in self._entries.values()
            if self._pins.get(entry.model, 0) == 0
        ]
        if not candidates:
            return None
        if self.eviction == "priority":
            victim = min(candidates, key=lambda e: (e.hits, e.last_used))
        else:  # lru
            victim = min(candidates, key=lambda e: e.last_used)
        return victim.model

    def _evict(self, model: str) -> None:
        entry = self._entries.pop(model)
        self.resident_bytes -= entry.size_bytes
        self.evictions += 1


# --------------------------------------------------------------------- #
# Serve-time configuration
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MemoryModel:
    """Memory-constrained-serving configuration.

    Attributes
    ----------
    budget_gb:
        Per-node byte budget (GiB) capping device/edge capacity below the
        hardware's ``memory_gb``.  ``None`` leaves hardware capacity alone.
        The cloud tier is the artifact store and keeps its hardware
        capacity regardless of budget.
    codec:
        Registry name of the weight compression codec.
    eviction:
        Weight-cache eviction policy (``"lru"`` or ``"priority"``).
    warm:
        When true, first-touch loads are free (weights staged onto every
        node before traffic, as a deployment step): caches and counters run
        but no cold-start latency is charged.  Used by the engine benchmark
        to price the cache machinery alone.
    """

    budget_gb: Optional[float] = None
    codec: str = "none"
    eviction: str = "lru"
    warm: bool = False
    _artifacts: Dict[str, ModelArtifact] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        get_codec(self.codec)
        if self.eviction not in EVICTION_POLICIES:
            raise ArtifactError(
                f"unknown eviction policy {self.eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if self.budget_gb is not None and self.budget_gb <= 0:
            raise ArtifactError("memory budget must be positive")

    @property
    def codec_spec(self) -> CompressionCodec:
        return get_codec(self.codec)

    def key(self) -> Tuple:
        """Hashable token for plan-cache keys."""
        return (self.budget_gb, self.codec, self.eviction)

    def capacity_bytes(self, node) -> int:
        """Cache capacity of a compute node.

        Device/edge nodes are capped at ``min(hardware, budget)``; the
        cloud tier (the artifact store) keeps hardware capacity.
        """
        hardware_bytes = int(node.hardware.memory_gb * GIB)
        if self.budget_gb is None or node.tier.value == "cloud":
            return hardware_bytes
        return min(hardware_bytes, int(self.budget_gb * GIB))

    def artifact_for(self, graph) -> ModelArtifact:
        """Memoized :class:`ModelArtifact` for a graph."""
        key = f"{graph.name}#{id(graph)}"
        artifact = self._artifacts.get(key)
        if artifact is None:
            artifact = ModelArtifact.from_graph(graph)
            self._artifacts[key] = artifact
        return artifact

    def with_codec(self, codec: str) -> "MemoryModel":
        return replace(self, codec=codec, _artifacts={})


def resolve_memory(
    memory: Optional[MemoryModel] = None,
    codec: Optional[str] = None,
    eviction: Optional[str] = None,
) -> Optional[MemoryModel]:
    """Fold user-facing knobs into a :class:`MemoryModel`.

    Returns ``None`` when every knob is inert (no model, no codec, no
    eviction override) — the simulator then runs the exact unconstrained
    code path, keeping existing golden traces bit-identical.  A bare float
    is accepted for ``memory`` as a budget in GiB.
    """
    if isinstance(memory, (int, float)) and not isinstance(memory, bool):
        memory = MemoryModel(budget_gb=float(memory))
    if memory is None:
        if codec is None and eviction is None:
            return None
        memory = MemoryModel()
    updates = {}
    if codec is not None:
        updates["codec"] = codec
    if eviction is not None:
        updates["eviction"] = eviction
    if updates:
        memory = replace(memory, _artifacts={}, **updates)
    return memory
