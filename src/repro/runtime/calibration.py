"""Online cost calibration and bandwidth forecasting.

The planner prices compute with an analytic roofline and transfers with the
declared tier-pair rates, but the simulator disagrees with both in ways a
deployment would too: nodes carry heterogeneous ``speed_factor``s, multi-hop
routes store-and-forward, and traced links drift.  This module closes the
loop from *observed* timings back into planning, and looks ahead so the
repartitioner can move before — not after — a drift breaches the band:

``OnlineCostCalibrator``
    Exponentially smooths per-(node, layer) compute latencies, per-link and
    per-tier-pair throughput, and per-model end-to-end latency inflation from
    the simulator's task/transfer/request observations.  A monotonically
    increasing ``revision`` bumps only when an estimate actually moves
    (beyond ``rel_epsilon``), so :class:`~repro.core.placement.PlanEvaluator`
    can key its memo tables on it and admission control can scale its
    predicted latency cheaply.

``BandwidthForecaster``
    EWMA level + Holt linear trend over the ``BandwidthTrace`` samples seen
    so far, with irregular-interval (dt-aware) updates.  ``forecast(h)``
    extrapolates the backbone multiplier ``h`` seconds ahead; the
    repartitioner treats a *forecast* band breach as a trigger.

``AdaptationTracker``
    Bookkeeping for the serving report: proactive vs reactive repartitions,
    and mispredicts (a proactive trigger whose predicted breach never
    materialised within the horizon).

``CalibrationConfig`` / ``resolve_calibration``
    The user-facing knob bundle.  ``resolve_calibration(None)`` returns
    ``None`` and the engine takes the untouched hot path, keeping existing
    golden traces bit-identical.

Everything here is pure arithmetic over observed values: deterministic for a
fixed observation history, no randomness, no wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "CalibrationConfig",
    "EwmaEstimator",
    "OnlineCostCalibrator",
    "BandwidthForecaster",
    "AdaptationTracker",
    "resolve_calibration",
]


@dataclass(frozen=True)
class CalibrationConfig:
    """Serve-time calibration knobs.

    ``horizon_s`` is the forecast look-ahead for proactive repartitioning;
    ``0.0`` disables forecasting entirely (the calibrator still learns, and
    the threshold rule stays purely reactive — that is the "reactive"
    baseline of ``scenario adaptation``).
    """

    alpha: float = 0.3  # EWMA weight of the newest compute/throughput sample
    trend_beta: float = 0.2  # Holt trend smoothing for the forecaster
    horizon_s: float = 2.0  # forecast look-ahead; 0 disables proactive mode
    #: Relative change below which an estimate is not considered "updated".
    #: This is the significance floor for the whole adaptation loop: revision
    #: bumps (which invalidate the evaluator's memo tables) and the adaptive
    #: observation gates both key off it, so it must sit above per-request
    #: queueing jitter (~1e-4 relative) and far below real drift (>1e-1).
    rel_epsilon: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < self.trend_beta <= 1.0:
            raise ValueError("trend_beta must be in (0, 1]")
        if self.horizon_s < 0.0:
            raise ValueError("horizon_s must be non-negative")
        if self.rel_epsilon < 0.0:
            raise ValueError("rel_epsilon must be non-negative")


class EwmaEstimator:
    """One exponentially-weighted mean with observed-range tracking.

    The estimate is seeded at the first observation and thereafter moves by
    ``alpha`` toward each new sample, so it is a convex combination of
    observations and can never leave ``[minimum, maximum]`` — the property
    suite pins that invariant.
    """

    __slots__ = ("alpha", "mean", "minimum", "maximum", "count")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.mean = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.count = 0

    def observe(self, value: float, rel_epsilon: float = 0.0) -> bool:
        """Fold in a sample; True when the mean moved beyond ``rel_epsilon``."""
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.count == 1:
            self.mean = value
            return True
        previous = self.mean
        self.mean = previous + self.alpha * (value - previous)
        scale = max(abs(previous), abs(self.mean), 1e-12)
        return abs(self.mean - previous) > rel_epsilon * scale


class _AdaptiveGate:
    """Adaptive decimation for a high-rate observation stream.

    After ``QUIET_RUN`` consecutive admitted batches that moved no estimate,
    the sampling stride doubles (up to ``MAX_STRIDE``); any real update snaps
    it back to 1.  A stationary workload therefore pays for 1 batch in 64
    while a regime change is noticed within at most ``MAX_STRIDE - 1``
    skipped batches — bounded staleness, and what keeps the calibrated hot
    path inside the engine bench's <10% overhead budget.
    """

    __slots__ = ("tick", "stride", "quiet")

    QUIET_RUN = 32
    MAX_STRIDE = 64

    def __init__(self) -> None:
        self.tick = 0
        self.stride = 1
        self.quiet = 0

    def settle(self, updated: bool) -> None:
        """Record an admitted batch's outcome and adapt the stride."""
        if updated:
            self.stride = 1
            self.quiet = 0
        else:
            self.quiet += 1
            if self.quiet >= self.QUIET_RUN and self.stride < self.MAX_STRIDE:
                self.stride *= 2
                self.quiet = 0

    def decimate(self) -> None:
        """Grow the stride on a fixed admitted-count schedule, updates or not.

        For streams whose every sample is a genuine move — request latency
        under sustained overload climbs monotonically — ``settle`` would pin
        the stride at 1 forever.  An EWMA of a decimated monotone stream
        still tracks it (with bounded extra lag), so these streams trade
        per-sample fidelity for a hard cap on hot-path cost.
        """
        self.quiet += 1
        if self.quiet >= self.QUIET_RUN and self.stride < self.MAX_STRIDE:
            self.stride *= 2
            self.quiet = 0


class OnlineCostCalibrator:
    """Learns corrected cost estimates from simulator observations.

    Keys mirror what the simulator can actually see: compute tasks carry a
    ``(node, label)`` pair plus the plan's tier, transfers carry a physical
    link id and a payload size, and retired requests carry the ratio of
    achieved to planned latency.  Planning consumes the *tier-pooled* layer
    estimates (plans bind stages to tiers before nodes) while the per-node
    table stays queryable for diagnostics and admission control.
    """

    def __init__(self, config: Optional[CalibrationConfig] = None) -> None:
        self.config = config or CalibrationConfig()
        self.revision = 0
        self.updates = 0
        self._node_layer: Dict[Tuple[str, str], EwmaEstimator] = {}
        self._tier_layer: Dict[Tuple[str, str], EwmaEstimator] = {}
        self._link_mbps: Dict[str, EwmaEstimator] = {}
        self._pair_mbps: Dict[Tuple[str, str], EwmaEstimator] = {}
        self._latency_ratio: Dict[str, EwmaEstimator] = {}
        self.task_gate = _AdaptiveGate()
        self.flow_gate = _AdaptiveGate()
        # Request latencies get their own gate: under sustained overload the
        # achieved/planned ratio climbs monotonically (every sample is a real
        # update), and sharing a gate would pin the long-converged transfer
        # streams at stride 1 alongside it.
        self.request_gate = _AdaptiveGate()

    # ------------------------------------------------------------------ #
    # observation side (called from the simulator hot loop)
    def _observe(self, table: Dict, key, value: float) -> None:
        estimator = table.get(key)
        if estimator is None:
            estimator = table[key] = EwmaEstimator(self.config.alpha)
        if estimator.observe(value, self.config.rel_epsilon):
            self.revision += 1
            self.updates += 1

    # Each stream family is sampled behind an adaptive gate.  Hot-path
    # callers use the two-step form — ``if cal.admit_x(): cal.record_x(...)``
    # — so a closed gate costs two integer ops *before* any argument
    # preparation (name resolution, string joins, ratio math).  The
    # ``observe_*`` methods below compose the two steps for everyone else.
    def admit_tasks(self) -> bool:
        """Advance the task gate; True when this unit's batch should be
        recorded."""
        gate = self.task_gate
        gate.tick += 1
        return not gate.tick % gate.stride

    def admit_flow(self) -> bool:
        """Advance the transfer/route gate; True to record this flow event."""
        gate = self.flow_gate
        gate.tick += 1
        return not gate.tick % gate.stride

    def admit_request(self) -> bool:
        """Advance the request-latency gate; True to record this retirement."""
        gate = self.request_gate
        gate.tick += 1
        return not gate.tick % gate.stride

    def observe_tasks(self, tasks, tier: str) -> None:
        """One execution unit's compute tasks, as ``(node, duration_s, label,
        ...)`` tuples (``node`` may be a node object or its name).

        This is the highest-rate observation stream — one call per unit per
        request, several tasks each — so it is gated per *unit*: when the
        gate is closed the whole batch costs one increment and one modulo.
        """
        if self.admit_tasks():
            self.record_tasks(tasks, tier)

    def record_tasks(self, tasks, tier: str) -> None:
        """Record one admitted unit batch (caller already won ``admit_tasks``)."""
        gate = self.task_gate
        before = self.revision
        node_table, tier_table = self._node_layer, self._tier_layer
        for node, duration_s, label, *_ in tasks:
            if duration_s <= 0.0:
                continue
            self._observe(node_table, (getattr(node, "name", node), label), duration_s)
            self._observe(tier_table, (tier, label), duration_s)
        gate.settle(self.revision != before)

    def observe_task(self, node: str, label: str, tier: str, duration_s: float) -> None:
        """A single compute task of ``label`` ran for ``duration_s`` on ``node``."""
        self.observe_tasks(((node, duration_s, label),), tier)

    def _record(self, table: Dict, key, value: float, gate: _AdaptiveGate) -> None:
        """Record one admitted flow-side observation and settle its gate."""
        before = self.revision
        self._observe(table, key, value)
        gate.settle(self.revision != before)

    def observe_transfer(self, link_id: str, payload_bytes: int, duration_s: float) -> None:
        """A payload crossed one physical link in ``duration_s``."""
        if self.admit_flow():
            self.record_transfer(link_id, payload_bytes, duration_s)

    def record_transfer(self, link_id: str, payload_bytes: int, duration_s: float) -> None:
        if duration_s <= 0.0:
            return
        mbps = payload_bytes * 8.0 / (duration_s * 1e6)
        self._record(self._link_mbps, link_id, mbps, self.flow_gate)

    def observe_route(
        self, src_tier: str, dst_tier: str, payload_bytes: int, duration_s: float
    ) -> None:
        """A payload finished the whole (possibly multi-hop) tier-pair route."""
        if self.admit_flow():
            self.record_route(src_tier, dst_tier, payload_bytes, duration_s)

    def record_route(
        self, src_tier: str, dst_tier: str, payload_bytes: int, duration_s: float
    ) -> None:
        if duration_s <= 0.0 or src_tier == dst_tier:
            return
        mbps = payload_bytes * 8.0 / (duration_s * 1e6)
        self._record(self._pair_mbps, (src_tier, dst_tier), mbps, self.flow_gate)

    def observe_request(self, model: str, latency_s: float, ideal_s: float) -> None:
        """A request completed; learn achieved / planned latency inflation."""
        if self.admit_request():
            self.record_request(model, latency_s, ideal_s)

    def record_request(self, model: str, latency_s: float, ideal_s: float) -> None:
        if ideal_s <= 0.0 or latency_s <= 0.0:
            return
        self._observe(self._latency_ratio, model, latency_s / ideal_s)
        # Unconditional decimation: when the fleet is saturated every ratio
        # sample moves the estimate, so an update-driven stride would never
        # widen (see ``_AdaptiveGate.decimate``).
        self.request_gate.decimate()

    # ------------------------------------------------------------------ #
    # estimate side (consumed by the evaluator / admission control)
    def layer_seconds(self, label: str, tier: str, default: float) -> float:
        """Calibrated compute latency of ``label`` on ``tier`` (or ``default``)."""
        estimator = self._tier_layer.get((getattr(tier, "value", tier), label))
        return estimator.mean if estimator is not None else default

    def node_layer_seconds(self, node: str, label: str, default: float) -> float:
        estimator = self._node_layer.get((node, label))
        return estimator.mean if estimator is not None else default

    def link_mbps(self, link_id: str, default: float) -> float:
        estimator = self._link_mbps.get(link_id)
        return estimator.mean if estimator is not None else default

    def pair_transfer_seconds(
        self, payload_bytes: int, src_tier: str, dst_tier: str, default: float
    ) -> float:
        """Calibrated tier-pair transfer latency (or the analytic ``default``)."""
        src = getattr(src_tier, "value", src_tier)
        dst = getattr(dst_tier, "value", dst_tier)
        estimator = self._pair_mbps.get((src, dst)) or self._pair_mbps.get((dst, src))
        if estimator is None or estimator.mean <= 0.0:
            return default
        return payload_bytes * 8.0 / (estimator.mean * 1e6)

    def latency_factor(self, model: str) -> float:
        """Achieved / planned latency inflation for ``model`` (clamped).

        Admission control multiplies the plan's ideal latency by this, so a
        systematically optimistic plan sheds earlier.  Clamped to ``[0.5, 4]``
        so one pathological sample cannot blackhole or flood admission.
        """
        estimator = self._latency_ratio.get(model)
        if estimator is None or estimator.count == 0:
            return 1.0
        return min(4.0, max(0.5, estimator.mean))


class BandwidthForecaster:
    """Holt's linear-trend forecaster over irregularly-spaced trace samples.

    The classic recursion assumes unit-spaced samples; serving observes the
    trace at arrival times, so the update is dt-aware: the trend is an
    estimated *slope per second* and the one-step-ahead prior is
    ``level + trend * dt``.  A constant signal keeps the trend at exactly
    zero, so the forecast equals the level and proactive mode never fires —
    the "no churn on a flat trace" property.
    """

    __slots__ = ("alpha", "beta", "level", "trend", "last_time", "count")

    def __init__(self, alpha: float = 0.3, beta: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.level = 0.0
        self.trend = 0.0
        self.last_time = 0.0
        self.count = 0

    def observe(self, time_s: float, value: float) -> None:
        """Fold in the trace sample in effect at ``time_s``."""
        if self.count == 0:
            self.level = value
            self.trend = 0.0
            self.last_time = time_s
            self.count = 1
            return
        dt = time_s - self.last_time
        if dt <= 0.0:
            # Same-instant re-observation (several arrivals share a clock
            # tick): refresh the level only, a zero-dt slope is undefined.
            previous = self.level
            self.level = previous + self.alpha * (value - previous)
            self.count += 1
            return
        prior = self.level + self.trend * dt
        new_level = prior + self.alpha * (value - prior)
        new_slope = (new_level - self.level) / dt
        self.trend = self.trend + self.beta * (new_slope - self.trend)
        self.level = new_level
        self.last_time = time_s
        self.count += 1

    def forecast(self, horizon_s: float) -> float:
        """Predicted value ``horizon_s`` seconds past the last observation.

        Floored at a small positive value: a bandwidth multiplier of zero or
        below is physically meaningless and would crash condition scaling.
        """
        if self.count == 0:
            return 1.0
        return max(1e-3, self.level + self.trend * horizon_s)


@dataclass
class _PendingPrediction:
    predicted_at: float
    deadline: float  # predicted_at + horizon: breach must materialise by then
    reference: float  # the trace sample the band was anchored to


@dataclass
class AdaptationTracker:
    """Counts proactive/reactive repartitions and scores proactive calls.

    A proactive repartition records the trace sample it anchored on; if the
    *actual* sample leaves the reactive band relative to that anchor before
    the forecast horizon expires, the call is confirmed — otherwise it counts
    as a mispredict (churn the reactive rule would not have caused).
    """

    lower: float = 0.75
    upper: float = 1.25
    proactive: int = 0
    reactive: int = 0
    mispredicts: int = 0
    events: List[Tuple[float, str]] = field(default_factory=list)
    _pending: List[_PendingPrediction] = field(default_factory=list)

    def record_reactive(self, time_s: float) -> None:
        self.reactive += 1
        self.events.append((time_s, "reactive"))

    def record_proactive(self, time_s: float, horizon_s: float, reference: float) -> None:
        self.proactive += 1
        self.events.append((time_s, "proactive"))
        self._pending.append(
            _PendingPrediction(time_s, time_s + horizon_s, reference)
        )

    def observe_sample(self, time_s: float, sample: float) -> None:
        """Resolve pending predictions against the sample at ``time_s``."""
        if not self._pending:
            return
        survivors: List[_PendingPrediction] = []
        for pending in self._pending:
            ratio = sample / pending.reference if pending.reference > 0 else 1.0
            if ratio < self.lower or ratio > self.upper:
                continue  # breach materialised: confirmed, drop silently
            if time_s > pending.deadline:
                self.mispredicts += 1  # horizon expired without a breach
                continue
            survivors.append(pending)
        self._pending = survivors

    def finish(self, time_s: float) -> None:
        """End of run: expire predictions whose horizon is already past."""
        for pending in self._pending:
            if time_s > pending.deadline:
                self.mispredicts += 1
        self._pending = []


def resolve_calibration(
    calibration: Union[None, bool, CalibrationConfig, OnlineCostCalibrator],
) -> Optional[OnlineCostCalibrator]:
    """Fold the user-facing ``calibration=`` knob into a calibrator.

    ``None``/``False`` return ``None`` — the engine then takes the untouched
    hot path and existing golden traces stay bit-identical.  ``True`` means
    defaults; a config builds a fresh calibrator; a calibrator passes through
    (so tests can pre-warm one).
    """
    if calibration is None or calibration is False:
        return None
    if calibration is True:
        return OnlineCostCalibrator()
    if isinstance(calibration, CalibrationConfig):
        return OnlineCostCalibrator(calibration)
    if isinstance(calibration, OnlineCostCalibrator):
        return calibration
    raise TypeError(
        "calibration must be None, a bool, a CalibrationConfig, or an "
        f"OnlineCostCalibrator, not {type(calibration).__name__}"
    )
