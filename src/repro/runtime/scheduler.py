"""Pluggable per-node schedulers for the serving engine.

The serving engine keeps one ready-queue per compute node and, whenever the
node goes idle, asks its :class:`Scheduler` which queued work to run next.
Three policies ship:

:class:`FifoScheduler`
    The default: tasks run in request-arrival order (ties broken by DAG
    topological order, then enqueue order).  This is *bit-identical* to the
    pre-scheduler engine — the golden traces pin it — and is what every
    paper-figure path runs under.

:class:`BatchingScheduler`
    Dynamic micro-batching, the lever real inference servers (Triton,
    TF-Serving, Clipper) pull under load: queued tasks that execute the same
    layer of the same model on the same node coalesce into one batch whose
    compute time follows the node hardware's sublinear batch-cost curve
    (:func:`repro.profiling.hardware.batch_cost_s`), so a saturated node
    serves strictly more requests per second than FIFO.  A batch flushes when
    it reaches ``max_batch`` members or when the oldest member has waited
    ``max_wait_ms`` — until then an idle node may deliberately hold back,
    trading a bounded amount of latency for occupancy.  Requests whose batch
    died with its node are retried *unbatched* (the failure blast radius of a
    batch is its whole membership; the retry must not re-enter one).

:class:`DeadlineScheduler`
    Earliest-deadline-first over per-request SLOs with strict priority
    classes: class 0 always runs before class 1, and within a class the
    request whose ``arrival + SLO`` deadline expires soonest runs first.
    Requests without an SLO sort last within their class.  Admission control
    is on by default: an arriving request whose predicted completion already
    breaches its SLO is shed at the door, preserving goodput under overload.

Schedulers are deliberately stateless between ``select`` calls — all state
lives in the engine's per-node queues — so one scheduler instance can be
reused across runs and systems.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports us)
    from repro.runtime.serving import _NodeState, _Task

#: Registry names accepted by ``repro serve --scheduler``.
SCHEDULER_NAMES = ("fifo", "batch", "edf")


def batch_compatibility_key(task: "_Task") -> Tuple:
    """Tasks coalesce into one micro-batch iff this key matches.

    Same graph object (one per model in a serving system), same layer/stage
    label, same tier: the members are the *same* computation over different
    inputs, which is exactly what real batched kernels require.  The
    executing node is implied — candidates already share a ready-queue.
    """
    state = task.unit.state
    return (id(state.request.graph), task.label, task.unit.tier)


class Scheduler:
    """Policy protocol the serving engine consults at every dispatch.

    Subclasses override :meth:`queue_key` (how a node's ready-queue is
    ordered) and :meth:`select` (which queued task — or batch of tasks — an
    idle node runs next).  ``select`` is only called with a non-empty,
    pre-pruned queue (aborted attempts are already gone) and must either pop
    and return the chosen tasks, or return ``([], deadline)`` to hold the
    node idle until ``deadline`` (the engine schedules a flush event and
    re-asks then, or earlier if new work arrives).
    """

    name = "fifo"
    #: When True the engine sheds arriving requests whose predicted
    #: completion already breaches their SLO (recorded as ``rejected``).
    admission_control = False

    def queue_key(self, task: "_Task", seq: int) -> Tuple:
        """Heap ordering of one node's ready-queue (FIFO by request)."""
        state = task.unit.state
        return (state.request.index, task.unit.topo_key, seq)

    def select(
        self, node_state: "_NodeState", time_s: float
    ) -> Tuple[List["_Task"], Optional[float]]:
        """Pick the next dispatch: ``(tasks, None)`` or ``([], flush_at_s)``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FifoScheduler(Scheduler):
    """Arrival-order service, one task at a time (the engine's default)."""

    name = "fifo"

    def __init__(self, admission: bool = False) -> None:
        self.admission_control = admission

    def select(self, node_state, time_s):
        _, task = heapq.heappop(node_state.queue)
        return [task], None


class BatchingScheduler(Scheduler):
    """Dynamic micro-batching of same-layer tasks on one node.

    Parameters
    ----------
    max_batch:
        Hard cap on batch membership; reaching it flushes immediately.
    max_wait_ms:
        How long the oldest queued member may wait for company before the
        batch flushes regardless of size.  ``0`` batches only work that is
        already queued together (no deliberate idling).
    admission:
        Enable SLO admission control (off by default — batching is a
        throughput lever, shedding is a policy decision).
    """

    name = "batch"

    def __init__(
        self, max_batch: int = 8, max_wait_ms: float = 5.0, admission: bool = False
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms cannot be negative")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.admission_control = admission

    def select(self, node_state, time_s):
        _, head = node_state.queue[0]  # the heap root IS the scheduling head
        if head.unit.state.no_batch or self.max_batch == 1:
            # A failover retry of a request whose batch died with its node:
            # it must not re-enter a batch, so it dispatches alone.
            heapq.heappop(node_state.queue)
            return [head], None
        key = batch_compatibility_key(head)
        # One linear scan for membership, then sort only the (small)
        # compatible subset — not the whole queue — by scheduling key.
        # Entries already consumed by an earlier batch (tombstoned, awaiting
        # lazy deletion) are not real work and must not re-batch.
        tombstones = node_state.tombstones
        compatible = sorted(
            entry
            for entry in node_state.queue
            if entry[1] not in tombstones
            and not entry[1].unit.state.no_batch
            and batch_compatibility_key(entry[1]) == key
        )[: self.max_batch]
        tasks = [task for _, task in compatible]
        if len(tasks) < self.max_batch and self.max_wait_s > 0:
            flush_at = min(task.enqueued_s for task in tasks) + self.max_wait_s
            if flush_at > time_s + 1e-12:
                return [], flush_at
        self._remove(node_state, tasks)
        return tasks, None

    @staticmethod
    def _remove(node_state, tasks) -> None:
        """Lazily delete consumed batch members from the node's ready-queue.

        Historically this filtered and re-heapified the whole queue on every
        flush — O(queue) per batch.  Tombstoning is O(batch): members are
        marked consumed and physically dropped only when they surface at the
        heap root (the engine purges before every select).  The queue is
        compacted outright once tombstones outnumber the live half, keeping
        memory and scan costs bounded under sustained batching.
        """
        tombstones = node_state.tombstones
        tombstones.update(tasks)
        queue = node_state.queue
        while queue and queue[0][1] in tombstones:
            tombstones.discard(heapq.heappop(queue)[1])
        if len(tombstones) > (len(queue) >> 1):
            node_state.queue = [
                entry for entry in queue if entry[1] not in tombstones
            ]
            tombstones.clear()
            heapq.heapify(node_state.queue)


class DeadlineScheduler(Scheduler):
    """Earliest-deadline-first over SLOs, with strict priority classes."""

    name = "edf"

    def __init__(self, admission: bool = True) -> None:
        self.admission_control = admission

    def queue_key(self, task, seq):
        state = task.unit.state
        request = state.request
        deadline = (
            request.arrival_s + request.slo_ms / 1e3
            if request.slo_ms is not None
            else math.inf
        )
        return (request.priority, deadline, request.index, task.unit.topo_key, seq)

    def select(self, node_state, time_s):
        _, task = heapq.heappop(node_state.queue)
        return [task], None


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_SCHEDULER_FACTORIES = {
    "fifo": FifoScheduler,
    "batch": BatchingScheduler,
    "edf": DeadlineScheduler,
}


def get_scheduler(name: str, **kwargs) -> Scheduler:
    """Build a scheduler by registry name (``fifo``, ``batch``, ``edf``)."""
    try:
        factory = _SCHEDULER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_SCHEDULER_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def resolve_scheduler(spec: "Scheduler | str | None") -> Scheduler:
    """``None`` -> the default FIFO; a name -> registry; an instance -> itself."""
    if spec is None:
        return FifoScheduler()
    if isinstance(spec, str):
        return get_scheduler(spec)
    if not isinstance(spec, Scheduler):
        raise TypeError(f"expected a Scheduler, name or None, got {type(spec).__name__}")
    return spec
